//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal serialization framework with serde's *source-level* surface
//! (the `Serialize`/`Deserialize` traits and derive macros) over a much
//! simpler self-describing data model: every value serializes to a
//! [`Value`] tree, and `serde_json` (also vendored) renders/parses that
//! tree as JSON. Derive output follows serde's conventions where the
//! workspace observes them: newtype structs are transparent, enums are
//! externally tagged, struct fields become object keys in declaration
//! order.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// Self-describing intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also the parse target for negative literals).
    Int(i64),
    /// Unsigned integers (ids, timestamps, counters).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key order is preserved (declaration order on serialize), so the
    /// rendered JSON is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---- primitive impls ----

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::type_mismatch(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::type_mismatch(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::type_mismatch("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str().ok_or_else(|| Error::type_mismatch("string", v))?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::type_mismatch("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, got {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::type_mismatch("tuple array", v))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    other => render_key(&other),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

impl<K: DeserializeKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::type_mismatch("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // BTreeMap iterates in key order, so output is already
        // deterministic without an extra sort.
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => render_key(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::type_mismatch("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Map keys in the JSON model are strings; keys that serialize to a
/// non-string value (e.g. newtype ids over integers) round-trip through
/// the rendered key text.
pub trait DeserializeKey: Sized {
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl<T: Deserialize> DeserializeKey for T {
    fn from_key(key: &str) -> Result<Self, Error> {
        // Try the string form first (covers String keys), then the
        // numeric forms produced by `render_key`.
        if let Ok(v) = T::from_value(&Value::Str(key.to_string())) {
            return Ok(v);
        }
        if let Ok(u) = key.parse::<u64>() {
            if let Ok(v) = T::from_value(&Value::UInt(u)) {
                return Ok(v);
            }
        }
        if let Ok(i) = key.parse::<i64>() {
            if let Ok(v) = T::from_value(&Value::Int(i)) {
                return Ok(v);
            }
        }
        Err(Error::custom(format!("cannot parse map key `{key}`")))
    }
}

fn render_key(v: &Value) -> String {
    match v {
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(5)).unwrap(), Some(5));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert!(v.get("b").is_none());
    }
}
