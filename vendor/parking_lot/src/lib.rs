//! Offline stand-in for `parking_lot`.
//!
//! Exposes `Mutex`, `RwLock` and `Condvar` with `parking_lot`'s
//! poison-free API, implemented over `std::sync`. A poisoned std lock
//! means a panic already happened on another thread; propagating the
//! inner value (as parking_lot does by design) is the correct match for
//! the upstream semantics.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn const_new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
