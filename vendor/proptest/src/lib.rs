//! Offline stand-in for `proptest`.
//!
//! Provides the slice of proptest this workspace uses: the `proptest!`
//! macro over `pat in strategy` bindings, `prop_assert*!`, numeric
//! range strategies, a small regex-subset string strategy, and
//! `proptest::collection::vec`. Cases are generated from a
//! deterministic per-test RNG (seeded by the test's module path), so
//! every run explores the same inputs — there is no shrinking, which is
//! an acceptable trade for a hermetic build: a failing case always
//! reproduces exactly.

pub mod test_runner {
    /// Cases per property. Upstream defaults to 256; 64 keeps the
    /// whole-workspace test run fast while still exercising each
    /// property across a spread of inputs.
    pub const CASES: usize = 64;

    /// SplitMix64 generator, seeded from the test name so each property
    /// gets an independent deterministic stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Conversion from the expressions that appear after `in` inside
    /// `proptest!`: ranges, regex string literals, or ready strategies.
    pub trait IntoStrategy {
        type Out: Strategy;
        fn into_strategy(self) -> Self::Out;
    }

    impl<S: Strategy> IntoStrategy for S {
        type Out = S;
        fn into_strategy(self) -> S {
            self
        }
    }

    pub struct IntRange<T> {
        lo: T,
        hi: T, // inclusive
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl IntoStrategy for core::ops::Range<$t> {
                type Out = IntRange<$t>;
                fn into_strategy(self) -> IntRange<$t> {
                    assert!(self.start < self.end, "empty proptest range");
                    IntRange { lo: self.start, hi: self.end - 1 }
                }
            }
            impl IntoStrategy for core::ops::RangeInclusive<$t> {
                type Out = IntRange<$t>;
                fn into_strategy(self) -> IntRange<$t> {
                    assert!(self.start() <= self.end(), "empty proptest range");
                    IntRange { lo: *self.start(), hi: *self.end() }
                }
            }
            impl Strategy for IntRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.hi as i128 - self.lo as i128 + 1) as u128;
                    let x = rng.next_u64() as u128;
                    (self.lo as i128 + ((x * span) >> 64) as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct FloatRange {
        lo: f64,
        hi: f64,
    }

    impl IntoStrategy for core::ops::Range<f64> {
        type Out = FloatRange;
        fn into_strategy(self) -> FloatRange {
            assert!(self.start < self.end, "empty proptest range");
            FloatRange {
                lo: self.start,
                hi: self.end,
            }
        }
    }

    impl Strategy for FloatRange {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.lo + rng.unit_f64() * (self.hi - self.lo)
        }
    }

    /// Regex-subset string strategy: sequences of literal characters or
    /// `[a-z0-9_]`-style classes, each optionally quantified with
    /// `{m,n}`, `{n}`, `?`, `+` or `*`.
    pub struct RegexStrategy {
        atoms: Vec<(Vec<char>, usize, usize)>,
    }

    impl IntoStrategy for &str {
        type Out = RegexStrategy;
        fn into_strategy(self) -> RegexStrategy {
            RegexStrategy::parse(self)
        }
    }

    impl IntoStrategy for String {
        type Out = RegexStrategy;
        fn into_strategy(self) -> RegexStrategy {
            RegexStrategy::parse(&self)
        }
    }

    impl RegexStrategy {
        fn parse(pattern: &str) -> Self {
            let chars: Vec<char> = pattern.chars().collect();
            let mut atoms = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let set: Vec<char> = match chars[i] {
                    '[' => {
                        let close = chars[i..]
                            .iter()
                            .position(|c| *c == ']')
                            .unwrap_or_else(|| panic!("unclosed [ in regex `{pattern}`"))
                            + i;
                        let mut set = Vec::new();
                        let mut j = i + 1;
                        while j < close {
                            if j + 2 < close && chars[j + 1] == '-' {
                                let (a, b) = (chars[j], chars[j + 2]);
                                assert!(a <= b, "bad class range in regex `{pattern}`");
                                for c in a..=b {
                                    set.push(c);
                                }
                                j += 3;
                            } else {
                                set.push(chars[j]);
                                j += 1;
                            }
                        }
                        i = close + 1;
                        set
                    }
                    '\\' => {
                        let c = *chars
                            .get(i + 1)
                            .unwrap_or_else(|| panic!("dangling escape in regex `{pattern}`"));
                        i += 2;
                        vec![c]
                    }
                    c => {
                        assert!(
                            !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                            "unsupported regex syntax `{c}` in `{pattern}` (vendored proptest supports classes, literals and quantifiers)"
                        );
                        i += 1;
                        vec![c]
                    }
                };
                assert!(!set.is_empty(), "empty char class in regex `{pattern}`");
                // Optional quantifier.
                let (min, max) = match chars.get(i) {
                    Some('{') => {
                        let close = chars[i..]
                            .iter()
                            .position(|c| *c == '}')
                            .unwrap_or_else(|| panic!("unclosed {{ in regex `{pattern}`"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse().expect("bad quantifier"),
                                n.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n: usize = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    Some('?') => {
                        i += 1;
                        (0, 1)
                    }
                    Some('+') => {
                        i += 1;
                        (1, 8)
                    }
                    Some('*') => {
                        i += 1;
                        (0, 8)
                    }
                    _ => (1, 1),
                };
                assert!(min <= max, "inverted quantifier in regex `{pattern}`");
                atoms.push((set, min, max));
            }
            RegexStrategy { atoms }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (set, min, max) in &self.atoms {
                let n = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::{IntoStrategy, Strategy};
    use crate::test_runner::TestRng;

    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<E: IntoStrategy>(elem: E, size: impl Into<SizeRange>) -> VecStrategy<E::Out> {
        VecStrategy {
            elem: elem.into_strategy(),
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{IntoStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The property-test entry point. Each `fn name(pat in strategy, ..)`
/// becomes a plain `#[test]` running [`test_runner::CASES`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..$crate::test_runner::CASES {
                    let _ = __pt_case;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &$crate::strategy::IntoStrategy::into_strategy($strategy),
                            &mut __pt_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds across case generation.
        #[test]
        fn int_ranges_bounded(x in 3u64..10, y in -5i32..=5, z in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        /// The vec strategy honours its size range and element strategy.
        #[test]
        fn vec_sizes_bounded(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|b| *b < 4));
        }

        /// Regex-subset strings match their pattern shape.
        #[test]
        fn regex_shape(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        /// `mut` bindings work in the macro.
        #[test]
        fn mut_bindings(mut xs in crate::collection::vec(0u32..100, 1..10)) {
            xs.sort();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{IntoStrategy, Strategy};
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = (0u64..1000).into_strategy();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
