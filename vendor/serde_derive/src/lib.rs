//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stub by walking `proc_macro::TokenTree` directly —
//! the container has no `syn`/`quote`, so the item is parsed by hand and
//! the impl is generated as source text. Supported shapes are exactly
//! the ones this workspace derives on: non-generic structs (named,
//! tuple, unit) and non-generic enums (unit, newtype, tuple and struct
//! variants). Conventions match upstream serde defaults: newtype
//! structs are transparent, enums are externally tagged, named fields
//! become object keys in declaration order. Field types are never
//! parsed: generated deserialization code calls
//! `serde::Deserialize::from_value(..)` in positions where the field
//! type is inferred from the struct literal.

use proc_macro::{Delimiter, Group, Spacing, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Field names of a `{ .. }` body: an ident directly followed by a
/// single `:` (spacing Alone, so `::` path separators never match) at
/// angle-bracket depth zero. Types, attributes and visibility tokens
/// all fall through without matching.
fn named_field_names(body: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut depth = 0i32;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // attr group follows
            TokenTree::Ident(id) if depth == 0 => {
                if let Some(TokenTree::Punct(p)) = toks.get(i + 1) {
                    if p.as_char() == ':' && p.spacing() == Spacing::Alone {
                        out.push(id.to_string());
                        i += 2;
                        continue;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Arity of a `( .. )` body: count comma-separated segments at
/// angle-bracket depth zero, tolerating a trailing comma.
fn tuple_arity(body: &Group) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut pending = false;
    for t in body.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected enum variant name, found {other}"),
            None => break,
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(named_field_names(g))
            }
            _ => Fields::Unit,
        };
        // Skip a `= discriminant` (and anything else) up to the comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or off the end)
        out.push(Variant { name, fields });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive does not support generic type `{name}`");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_field_names(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    }
}

// ---- codegen ----

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n"
            ));
            match fields {
                Fields::Named(names) => {
                    s.push_str("    serde::Value::Object(vec![\n");
                    for f in names {
                        s.push_str(&format!(
                            "      (\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),\n"
                        ));
                    }
                    s.push_str("    ])\n");
                }
                Fields::Tuple(1) => {
                    // Newtype structs are transparent, like upstream serde.
                    s.push_str("    serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    s.push_str("    serde::Value::Array(vec![\n");
                    for idx in 0..*n {
                        s.push_str(&format!("      serde::Serialize::to_value(&self.{idx}),\n"));
                    }
                    s.push_str("    ])\n");
                }
                Fields::Unit => s.push_str("    serde::Value::Null\n"),
            }
            s.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n    match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "      {name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "      {name}::{vn}(f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "      {name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        s.push_str(&format!(
                            "      {name}::{vn} {{ {} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),\n",
                            fs.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            s.push_str("    }\n  }\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(names) => {
                    s.push_str(&format!("    Ok({name} {{\n"));
                    for f in names {
                        // Missing keys fall back to Null so Option fields
                        // deserialize to None, matching upstream defaults.
                        s.push_str(&format!(
                            "      {f}: serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                        ));
                    }
                    s.push_str("    })\n");
                }
                Fields::Tuple(1) => {
                    s.push_str(&format!(
                        "    Ok({name}(serde::Deserialize::from_value(v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    s.push_str(&format!(
                        "    let a = v.as_array().ok_or_else(|| serde::Error::type_mismatch(\"tuple struct {name}\", v))?;\n"
                    ));
                    let args: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "serde::Deserialize::from_value(a.get({i}).unwrap_or(&serde::Value::Null))?"
                            )
                        })
                        .collect();
                    s.push_str(&format!("    Ok({name}({}))\n", args.join(", ")));
                }
                Fields::Unit => s.push_str(&format!("    let _ = v;\n    Ok({name})\n")),
            }
            s.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n"
            ));
            // Unit variants arrive as bare strings.
            s.push_str("    if let Some(tag) = v.as_str() {\n      return match tag {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    s.push_str(&format!("        \"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            s.push_str(&format!(
                "        other => Err(serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n      }};\n    }}\n"
            ));
            // Data variants arrive externally tagged: { "Variant": payload }.
            s.push_str("    if let Some(obj) = v.as_object() {\n      if let Some((tag, inner)) = obj.first() {\n        match tag.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => s.push_str(&format!(
                        "          \"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let args: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(a.get({i}).unwrap_or(&serde::Value::Null))?"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "          \"{vn}\" => {{\n            let a = inner.as_array().ok_or_else(|| serde::Error::type_mismatch(\"{name}::{vn} payload\", inner))?;\n            return Ok({name}::{vn}({}));\n          }}\n",
                            args.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&serde::Value::Null))?"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "          \"{vn}\" => return Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            s.push_str("          _ => {}\n        }\n      }\n    }\n");
            s.push_str(&format!(
                "    Err(serde::Error::type_mismatch(\"{name}\", v))\n  }}\n}}\n"
            ));
        }
    }
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}
