//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark surface this workspace uses —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, and `Bencher::iter` /
//! `iter_batched` — as a plain wall-clock harness. There is no
//! statistical analysis or HTML report; each target prints its mean
//! time per iteration, which is enough to compare configurations (e.g.
//! 1-worker vs N-worker engine runs) on the same machine.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped. The stub times every routine call
/// individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!("{name:<50} {mean:>12.2?}/iter  ({} iters)", b.iters);
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size as u64, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size as u64, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert_eq!(count, 10);
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::PerIteration,
            )
        });
        group.finish();
        assert_eq!(setups, 3);
    }
}
