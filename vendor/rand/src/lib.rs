//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand` 0.8 it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngCore`], and [`Rng::gen`] /
//! [`Rng::gen_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the
//! simulator requires (no code depends on the exact ChaCha12 stream of
//! upstream `StdRng`, only on run-to-run reproducibility).

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (`Standard`
/// distribution equivalent for the primitives the workspace draws).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the same
    /// convention upstream `rand` uses).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling (Lemire); bias is
                // < 2^-64 per draw, far below anything observable here.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                if span == 0 {
                    // Full-width inclusive range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128;
                (self.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128;
                (lo as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
        // Silence unused-alias warnings while keeping the macro shape
        // parallel to the unsigned one.
        const _: fn() = || { let _ = core::mem::size_of::<$u>(); };
    )*};
}
signed_range_impls!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state. Together with [`StdRng::from_state`]
        /// this makes the stream position serializable, which the
        /// simulator's checkpoint/resume layer relies on. (Upstream `rand`
        /// exposes the same capability through `Serialize` on the rng.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild an rng at an exact stream position captured with
        /// [`StdRng::state`]. The all-zero state is forbidden by
        /// xoshiro256** and is mapped to the same fallback as
        /// `from_seed`, so a round trip never produces a stuck generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng { s: [1, 2, 3, 4] };
            }
            StdRng { s }
        }
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4]; // xoshiro forbids the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-3i32..=4);
            assert!((-3..=4).contains(&z));
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0u64..10) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
