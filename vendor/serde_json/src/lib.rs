//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Value`] model as JSON text and parses
//! JSON text back into it. Output is deterministic (struct fields keep
//! declaration order) and floats use Rust's shortest-roundtrip
//! formatting, so serialize→deserialize is lossless for every type the
//! workspace derives.

pub use serde::Value;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---- rendering ----

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest roundtrip form and always
                // includes a `.0` or exponent, which is valid JSON.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid int `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid uint `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        let j = to_string(&v).unwrap();
        assert_eq!(j, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&j).unwrap(), v);
        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn nested_parse() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": "x\"y"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\"y"
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }
}
