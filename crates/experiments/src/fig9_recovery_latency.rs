//! Figure 9 — hijacking recoveries by time.
//!
//! §6.2: "In 22% of the cases, the victim successfully reclaimed the
//! account within one hour after the hijacking, and in 50% of the
//! cases the account was returned in less than 13 hours", measured
//! from the instant the risk-analysis system flagged the account.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{ComparisonTable, Ecdf, Histogram};

/// Structured Figure 9 measurement: flag-to-reclaim latency per
/// recovered incident.
#[derive(Debug, Clone)]
pub struct Fig9Measurement {
    /// Latency in hours for each recovered incident, unsorted.
    pub latencies_hours: Vec<f64>,
}

impl Fig9Measurement {
    /// Fraction of recoveries completed within `hours` of the flag
    /// (0.0 when no incident recovered).
    pub fn fraction_within(&self, hours: f64) -> f64 {
        if self.latencies_hours.is_empty() {
            return 0.0;
        }
        Ecdf::new(self.latencies_hours.clone()).fraction_at_or_below(hours)
    }
}

/// Extract the Figure 9 measurement from a finished world.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Fig9Measurement {
    Fig9Measurement { latencies_hours: mhw_core::datasets::recovery_latency_hours(eco) }
}

/// Extract the Figure 9 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Fig9Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the Figure 9 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let latencies_hours = measure(ctx).latencies_hours;

    let mut table = ComparisonTable::new("Figure 9 — recovery latency");
    if latencies_hours.is_empty() {
        table.push(mhw_analysis::Comparison::new(
            "recoveries measured",
            "5000",
            "0",
            false,
            "no recovered incidents in this run",
        ));
        return ExperimentResult { table, rendering: String::new() };
    }
    let ecdf = Ecdf::new(latencies_hours.clone());
    let within_1h = ecdf.fraction_at_or_below(1.0);
    let within_13h = ecdf.fraction_at_or_below(13.0);
    table.push(crate::context::frac_row(
        "recovered within 1 h of flagging",
        0.22,
        within_1h,
        ctx.tol(0.10, 0.18),
    ));
    table.push(crate::context::frac_row(
        "recovered within 13 h of flagging",
        0.50,
        within_13h,
        ctx.tol(0.12, 0.20),
    ));

    // Histogram in hour bins up to 35 h, like the figure.
    let mut hist = Histogram::new(0.0, 1.0, 35);
    for l in &latencies_hours {
        hist.add(*l);
    }
    let mut rendering = format!(
        "{} recovered incidents; median {:.1} h\nRecoveries per hour bin:\n",
        latencies_hours.len(),
        ecdf.quantile(0.5)
    );
    let max = hist.counts.iter().copied().max().unwrap_or(1).max(1);
    for (h, c) in hist.counts.iter().enumerate() {
        if h % 5 == 0 || *c > 0 {
            rendering.push_str(&format!(
                "  {:>2}–{:<2}h {:<40} {}\n",
                h,
                h + 1,
                "#".repeat((*c as usize * 40) / max as usize),
                c
            ));
        }
    }
    rendering.push_str(&format!("  >35h: {}\n", hist.overflow));
    ExperimentResult { table, rendering }
}
