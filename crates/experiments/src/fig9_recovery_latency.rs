//! Figure 9 — hijacking recoveries by time.
//!
//! §6.2: "In 22% of the cases, the victim successfully reclaimed the
//! account within one hour after the hijacking, and in 50% of the
//! cases the account was returned in less than 13 hours", measured
//! from the instant the risk-analysis system flagged the account.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{ComparisonTable, Ecdf, Histogram};

pub fn run(ctx: &Context) -> ExperimentResult {
    let eco = &ctx.eco_2012;
    let latencies_hours: Vec<f64> = eco
        .real_incidents()
        .filter_map(|i| {
            let recovered = i.recovered_at?;
            let flagged = i.flagged_at?;
            Some(recovered.since(flagged).as_hours_f64())
        })
        .collect();

    let mut table = ComparisonTable::new("Figure 9 — recovery latency");
    if latencies_hours.is_empty() {
        table.push(mhw_analysis::Comparison::new(
            "recoveries measured",
            "5000",
            "0",
            false,
            "no recovered incidents in this run",
        ));
        return ExperimentResult { table, rendering: String::new() };
    }
    let ecdf = Ecdf::new(latencies_hours.clone());
    let within_1h = ecdf.fraction_at_or_below(1.0);
    let within_13h = ecdf.fraction_at_or_below(13.0);
    table.push(crate::context::frac_row(
        "recovered within 1 h of flagging",
        0.22,
        within_1h,
        ctx.tol(0.10, 0.18),
    ));
    table.push(crate::context::frac_row(
        "recovered within 13 h of flagging",
        0.50,
        within_13h,
        ctx.tol(0.12, 0.20),
    ));

    // Histogram in hour bins up to 35 h, like the figure.
    let mut hist = Histogram::new(0.0, 1.0, 35);
    for l in &latencies_hours {
        hist.add(*l);
    }
    let mut rendering = format!(
        "{} recovered incidents; median {:.1} h\nRecoveries per hour bin:\n",
        latencies_hours.len(),
        ecdf.quantile(0.5)
    );
    let max = hist.counts.iter().copied().max().unwrap_or(1).max(1);
    for (h, c) in hist.counts.iter().enumerate() {
        if h % 5 == 0 || *c > 0 {
            rendering.push_str(&format!(
                "  {:>2}–{:<2}h {:<40} {}\n",
                h,
                h + 1,
                "#".repeat((*c as usize * 40) / max as usize),
                c
            ));
        }
    }
    rendering.push_str(&format!("  >35h: {}\n", hist.overflow));
    ExperimentResult { table, rendering }
}
