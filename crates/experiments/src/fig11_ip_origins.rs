//! Figure 11 — countries of IPs involved in hijacking.
//!
//! §7: "most of the traffic comes from China and Malaysia … We don't
//! know if this traffic come from proxies or represent the true origin
//! of the hijackers", South America (Venezuela) consistent with Spanish
//! search terms, and South Africa ≈10% of the dataset. Small shares
//! also appear in victim-dense countries (US, FR, IN, BR) — in our
//! model those are the crews' geo-matched rented proxies, which is one
//! concrete mechanism for the paper's proxy caveat.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{bar_chart, Breakdown, Comparison, ComparisonTable};
use mhw_core::datasets::hijacker_logins;

/// Structured Figure 11 measurement: geolocated hijacker login IPs by
/// country code.
#[derive(Debug, Clone)]
pub struct Fig11Measurement {
    /// Country codes of geolocated hijacker login records, counted.
    pub countries: Breakdown,
}

/// Extract the Figure 11 measurement from a finished world.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Fig11Measurement {
    let mut countries = Breakdown::new();
    for r in hijacker_logins(eco) {
        if let Some(c) = eco.geo.locate(r.ip) {
            countries.add(c.code().to_string());
        }
    }
    Fig11Measurement { countries }
}

/// Extract the Figure 11 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Fig11Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the Figure 11 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let countries = measure(ctx).countries;

    let cn = countries.fraction_of("CN");
    let my = countries.fraction_of("MY");
    let za = countries.fraction_of("ZA");
    let rows = countries.rows();
    let top2: Vec<&str> = rows.iter().take(2).map(|(l, _, _)| l.as_str()).collect();

    let mut table = ComparisonTable::new("Figure 11 — hijacker IP origins");
    table.push(Comparison::new(
        "dominant IP origins",
        "China & Malaysia",
        top2.join(" & "),
        top2.contains(&"CN") && top2.contains(&"MY"),
        "crew homes + proxy exits",
    ));
    table.push(Comparison::new(
        "CN + MY combined share",
        "dominant (≈45%)",
        crate::context::pct(cn + my),
        cn + my > 0.25,
        "§7's headline",
    ));
    table.push(crate::context::frac_row(
        "South Africa share",
        0.10,
        za,
        ctx.tol(0.06, 0.10),
    ));
    let victim_noise = ["US", "FR", "IN", "BR", "GB"]
        .iter()
        .map(|c| countries.fraction_of(c))
        .sum::<f64>();
    table.push(Comparison::new(
        "victim-country shares (proxy caveat)",
        "small but present (US/FR/IN/BR…)",
        crate::context::pct(victim_noise),
        victim_noise > 0.0 && victim_noise < 0.5,
        "geo-matched rented proxies",
    ));

    let rendering = format!(
        "Geolocated hijacker login IPs ({} records):\n{}",
        countries.total(),
        bar_chart(&countries, 40)
    );
    ExperimentResult { table, rendering }
}
