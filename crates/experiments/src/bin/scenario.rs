//! `scenario` — run one configurable ecosystem scenario and print a
//! full situation report. The knobs cover everything DESIGN.md lists
//! as calibration parameters, so reviewers can probe the model without
//! writing code.
//!
//! ```text
//! scenario [--users N] [--days N] [--seed N] [--era 2011|2012]
//!          [--shards N] [--workers N]
//!          [--lures F] [--no-defense] [--no-classifier] [--no-monitor]
//!          [--no-challenge] [--twofactor F] [--report run-report.json]
//!          [--validate] [--fidelity-out FIDELITY.json]
//!          [--checkpoint-dir DIR] [--checkpoint-every N]
//!          [--resume FILE] [--fault-plan SPEC]
//!          [--snapshot-at DAY --snapshot-out FILE]
//!          [--fork-from FILE] [--fork-seed N]
//! ```
//!
//! With `--shards N` (N > 1) the run goes through the sharded parallel
//! engine; `--workers` caps its worker threads (default: all cores) and
//! is pure mechanics — the printed report is byte-identical at any
//! worker count. With `--report`, the run's deterministic
//! [`mhw_obs::RunReport`] is written as JSON to the given path.
//!
//! With `--validate`, the finished world is additionally scored
//! against the world-derivable subset of the calibration-target
//! registry (T3, F8–F11, §5 — the rest need `repro --validate`'s
//! companion runs) and the partial scorecard is printed and written to
//! `--fidelity-out` when given. Only single-world runs can be scored;
//! combining `--validate` with `--shards` > 1 is a usage error.
//!
//! The crash-safety flags (`--checkpoint-dir`, `--checkpoint-every`,
//! `--resume`, `--fault-plan`; see `docs/REPRODUCING.md`) force the
//! engine path even at `--shards 1`. Flag values that fail to parse are
//! fatal usage errors (exit 2); runtime failures exit 1.
//!
//! The world-forking flags (see `docs/REPRODUCING.md`): `--snapshot-at
//! DAY --snapshot-out FILE` runs the scenario through `DAY` complete
//! days and freezes the fork point as a verification record instead of
//! finishing the run. `--fork-from FILE` replays the recorded prefix
//! (the scenario flags must describe the original run — the rebuilt
//! fork point is digest-verified against the record, and any drift is
//! a fatal `CheckpointMismatch` naming the first divergent field),
//! then runs a continuation; `--fork-seed N` diverges the
//! continuation's RNG from the fork point onward.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mhw_adversary::Era;
use mhw_analysis::{bar_chart, Breakdown, Ecdf};
use mhw_core::{Ecosystem, FaultPlan, ScenarioConfig, ShardedRun};
use mhw_experiments::cli::{self, Failure, UsageError};
use mhw_types::Actor;
use std::path::PathBuf;

/// A finished run: the plain single-world path, or the sharded engine.
enum Run {
    Single(Box<Ecosystem>),
    Sharded(Box<ShardedRun>),
}

impl Run {
    fn worlds(&self) -> Vec<&Ecosystem> {
        match self {
            Run::Single(eco) => vec![eco],
            Run::Sharded(run) => run.shards().iter().collect(),
        }
    }

    fn report_json(&self) -> String {
        match self {
            Run::Single(eco) => eco.run_report().to_json(),
            Run::Sharded(run) => run.run_report().to_json(),
        }
    }
}

const USAGE: &str = "usage: scenario [--users N] [--days N] [--seed N] [--era 2011|2012]\n\
     \x20               [--shards N] [--workers N] [--lures F] [--twofactor F]\n\
     \x20               [--no-defense] [--no-classifier] [--no-monitor] [--no-challenge]\n\
     \x20               [--report FILE] [--validate] [--fidelity-out FILE]\n\
     \x20               [--checkpoint-dir DIR] [--checkpoint-every N]\n\
     \x20               [--resume FILE] [--fault-plan SPEC]\n\
     \x20               [--snapshot-at DAY --snapshot-out FILE]\n\
     \x20               [--fork-from FILE] [--fork-seed N]";

fn main() {
    cli::run_main(USAGE, run);
}

fn run(args: &[String]) -> Result<(), Failure> {
    let mut config = ScenarioConfig::measurement(cli::value(args, "--seed")?.unwrap_or(0x5C3A));
    if let Some(n) = cli::value::<usize>(args, "--users")? {
        config.population.n_users = n;
    }
    if let Some(d) = cli::value::<u64>(args, "--days")? {
        config.days = d;
    }
    if let Some(l) = cli::value::<f64>(args, "--lures")? {
        config.lures_per_user_day = l;
    }
    if let Some(t) = cli::value::<f64>(args, "--twofactor")? {
        config.population.twofactor_rate = t;
    }
    match cli::value::<u32>(args, "--era")? {
        None | Some(2012) => {}
        Some(2011) => config.era = Era::Y2011,
        Some(other) => {
            return Err(Failure::Usage(UsageError(format!(
                "invalid value for --era: {other} (expected 2011 or 2012)"
            ))));
        }
    }
    if cli::flag(args, "--no-defense") {
        config.defense = mhw_core::DefenseConfig::none();
    }
    if cli::flag(args, "--no-classifier") {
        config.defense.mail_classifier = false;
    }
    if cli::flag(args, "--no-monitor") {
        config.defense.activity_monitor = false;
    }
    if cli::flag(args, "--no-challenge") {
        config.defense.login_risk_analysis = false;
    }
    let shards = cli::value::<u16>(args, "--shards")?.unwrap_or(1).max(1);
    let workers =
        cli::value::<usize>(args, "--workers")?.unwrap_or_else(mhw_core::default_workers);
    let validate = cli::flag(args, "--validate");
    let fidelity_out = cli::value::<String>(args, "--fidelity-out")?;
    if validate && shards > 1 {
        return Err(Failure::Usage(UsageError(
            "--validate scores a single world; it cannot be combined with --shards > 1"
                .to_string(),
        )));
    }
    if fidelity_out.is_some() && !validate {
        return Err(Failure::Usage(UsageError(
            "--fidelity-out requires --validate".to_string(),
        )));
    }

    let checkpoint_dir = cli::value::<PathBuf>(args, "--checkpoint-dir")?;
    let checkpoint_every = cli::value::<u64>(args, "--checkpoint-every")?;
    if checkpoint_every.is_some() && checkpoint_dir.is_none() {
        return Err(Failure::Usage(UsageError(
            "--checkpoint-every requires --checkpoint-dir".to_string(),
        )));
    }
    let resume = cli::value::<PathBuf>(args, "--resume")?;
    let faults = match cli::value::<String>(args, "--fault-plan")? {
        None => None,
        Some(spec) => Some(
            FaultPlan::parse_spec(&spec, config.seed, config.days, shards)
                .map_err(|e| UsageError(format!("invalid value for --fault-plan: {e}")))?,
        ),
    };
    let snapshot_at = cli::value::<u64>(args, "--snapshot-at")?;
    let snapshot_out = cli::value::<PathBuf>(args, "--snapshot-out")?;
    if snapshot_at.is_some() != snapshot_out.is_some() {
        return Err(Failure::Usage(UsageError(
            "--snapshot-at and --snapshot-out must be given together".to_string(),
        )));
    }
    let fork_from = cli::value::<PathBuf>(args, "--fork-from")?;
    let fork_seed = cli::value::<u64>(args, "--fork-seed")?;
    if fork_seed.is_some() && fork_from.is_none() {
        return Err(Failure::Usage(UsageError("--fork-seed requires --fork-from".to_string())));
    }
    if snapshot_out.is_some() && (fork_from.is_some() || resume.is_some()) {
        return Err(Failure::Usage(UsageError(
            "--snapshot-out freezes a fresh run; it cannot be combined with \
             --fork-from or --resume"
                .to_string(),
        )));
    }
    if fork_from.is_some() && resume.is_some() {
        return Err(Failure::Usage(UsageError(
            "--fork-from and --resume are different continuation mechanisms; pick one"
                .to_string(),
        )));
    }
    if snapshot_out.is_some() && (validate || cli::value::<String>(args, "--report")?.is_some()) {
        return Err(Failure::Usage(UsageError(
            "--snapshot-out stops mid-run; --report/--validate need a finished run".to_string(),
        )));
    }

    // Freeze mode: run the prefix, write the fork-point record, stop.
    if let (Some(day), Some(out)) = (snapshot_at, &snapshot_out) {
        let engine = mhw_core::ScenarioBuilder::new(config).workers(workers).sharded(shards);
        let t0 = std::time::Instant::now();
        let snapshot = engine.snapshot_after(day).map_err(|e| Failure::Runtime(e.to_string()))?;
        snapshot.write_record(out).map_err(|e| Failure::Runtime(e.to_string()))?;
        eprintln!(
            "froze {} shard(s) after day {}/{} in {:.1}s; fork-point record -> {}",
            snapshot.n_shards(),
            snapshot.completed_days(),
            snapshot.days(),
            t0.elapsed().as_secs_f64(),
            out.display()
        );
        return Ok(());
    }

    // Crash-safety machinery lives in the engine, so any of its flags
    // forces the engine path even for a single shard (identical output;
    // the engine's determinism tests pin it).
    let engine_path =
        shards > 1 || checkpoint_dir.is_some() || resume.is_some() || faults.is_some();

    eprintln!(
        "running: {} users, {} days, era {:?}, lures/user/day {}, seed {:#x}, {} shard(s), {} worker(s)",
        config.population.n_users,
        config.days,
        config.era,
        config.lures_per_user_day,
        config.seed,
        shards,
        workers
    );
    let days = config.days;
    let seed = config.seed;
    let t0 = std::time::Instant::now();
    let run = if let Some(file) = fork_from {
        // Rebuild the recorded prefix, digest-verify the fork point
        // against the record, then run the (optionally divergent)
        // continuation.
        let record =
            mhw_core::Checkpoint::read(&file).map_err(|e| Failure::Runtime(e.to_string()))?;
        eprintln!(
            "forking from {} (fork point: day {}/{}, {} shard(s))",
            file.display(),
            record.completed_days,
            record.days,
            record.n_shards
        );
        let engine = mhw_core::ScenarioBuilder::new(config).workers(workers).sharded(shards);
        let snapshot = engine
            .snapshot_after(record.completed_days)
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        snapshot
            .verify_record(&record, &file.display().to_string())
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        let mut fork = mhw_core::ScenarioBuilder::fork_from(&snapshot).workers(workers);
        if let Some(seed) = fork_seed {
            fork = fork.seed(seed);
        }
        if let Some(dir) = checkpoint_dir {
            fork = fork.checkpoint_to(dir, checkpoint_every.unwrap_or(1));
        }
        if let Some(plan) = faults {
            fork = fork.fault_plan(plan);
        }
        Run::Sharded(Box::new(fork.run().map_err(|e| Failure::Runtime(e.to_string()))?))
    } else if engine_path {
        let mut engine =
            mhw_core::ScenarioBuilder::new(config).workers(workers).sharded(shards);
        if let Some(dir) = checkpoint_dir {
            engine = engine.checkpoint_to(dir, checkpoint_every.unwrap_or(1));
        }
        if let Some(file) = resume {
            engine = engine.resume_from(file);
        }
        if let Some(plan) = faults {
            engine = engine.fault_plan(plan);
        }
        Run::Sharded(Box::new(engine.run().map_err(|e| Failure::Runtime(e.to_string()))?))
    } else {
        Run::Single(Box::new(mhw_core::ScenarioBuilder::new(config).run()))
    };
    eprintln!("done in {:.1}s\n", t0.elapsed().as_secs_f64());

    let worlds = run.worlds();
    let s = match &run {
        Run::Single(eco) => eco.stats.clone(),
        Run::Sharded(sharded) => sharded.total_stats(),
    };
    println!("== traffic ==");
    println!("organic logins          {:>10}", s.organic_logins);
    println!("owner challenges        {:>10}  ({:.2}% FP rate)", s.organic_challenges, s.organic_challenges as f64 / s.organic_logins.max(1) as f64 * 100.0);
    println!("lures delivered         {:>10}  ({:.0}% spam-foldered)", s.lures_delivered, s.lures_spam_foldered as f64 / s.lures_delivered.max(1) as f64 * 100.0);
    println!("credentials captured    {:>10}  ({} via hijacked contacts)", s.credentials_captured, s.contact_lure_captures);

    println!("\n== hijacking ==");
    println!("sessions run            {:>10}", s.sessions_run);
    println!("successful hijacks      {:>10}", s.incidents);
    println!("exploited               {:>10}", s.exploited);
    println!("recovered               {:>10}", s.recovered);
    let population: usize = worlds.iter().map(|e| e.population.len()).sum();
    let real_incidents: usize = worlds.iter().map(|e| e.real_incidents().count()).sum();
    let rate = real_incidents as f64 / (population as f64 * days as f64) * 1e6;
    println!("rate                    {rate:>10.1}  per M active users per day");
    if let Run::Sharded(sharded) = &run {
        println!("\n== cross-shard ==");
        println!("market trades           {:>10}", sharded.market_trades);
        println!("cross-shard lures       {:>10}", sharded.cross_shard_lures);
        println!("dataset digest          {:>#18x}", sharded.dataset_digest());
    }

    // Session outcome mix.
    let mut outcomes = Breakdown::new();
    for sess in worlds.iter().flat_map(|e| e.sessions()) {
        outcomes.add(if sess.exploited {
            "exploited"
        } else if sess.logged_in {
            "abandoned after profiling"
        } else if sess.password_eventually_correct {
            "stopped at login defense"
        } else {
            "bad credentials"
        });
    }
    println!("\n== session outcomes ==");
    print!("{}", bar_chart(&outcomes, 36));

    // Hijacker IP origins (each shard resolves against its own geo).
    let mut countries = Breakdown::new();
    for eco in &worlds {
        for r in eco.login_log.records() {
            if matches!(r.actor, Actor::Hijacker(_)) {
                if let Some(c) = eco.geo.locate(r.ip) {
                    countries.add(c.code().to_string());
                }
            }
        }
    }
    println!("\n== hijacker login origins ==");
    print!("{}", bar_chart(&countries, 36));

    // Recovery latency.
    let latencies: Vec<f64> = worlds
        .iter()
        .flat_map(|e| e.real_incidents())
        .filter_map(|i| Some(i.recovered_at?.since(i.flagged_at?).as_hours_f64()))
        .collect();
    if !latencies.is_empty() {
        let e = Ecdf::new(latencies);
        println!("\n== recovery latency (hours from flagging) ==");
        println!(
            "n={}  p25 {:.1}  median {:.1}  p75 {:.1}  max {:.1}",
            e.len(),
            e.quantile(0.25),
            e.quantile(0.5),
            e.quantile(0.75),
            e.max().unwrap_or(0.0)
        );
    }

    if let Some(path) = cli::value::<String>(args, "--report")? {
        std::fs::write(&path, run.report_json())
            .map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))?;
        eprintln!("wrote {path}");
    }

    if validate {
        // Shards > 1 was rejected up front, so the run is single-world.
        if let Run::Single(eco) = &run {
            let report =
                mhw_experiments::fidelity::validate_world(eco, mhw_experiments::Scale::Full, seed);
            println!("\n{}", report.scorecard_markdown());
            println!(
                "(partial scorecard: world-derivable targets only — \
                 `repro --validate` covers all {}.)",
                mhw_experiments::fidelity::registry().len()
            );
            if let Some(path) = fidelity_out {
                std::fs::write(&path, report.to_json())
                    .map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))?;
                eprintln!("wrote {path}");
            }
        }
    }
    Ok(())
}
