//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [--seed N] [--workers N] [--out EXPERIMENTS.md]
//!       [--report run-report.json]
//!       [--validate] [--fidelity-out FIDELITY.json] [--scorecard FIDELITY.md]
//!       [--checkpoint-dir DIR] [--checkpoint-every N]
//!       [--resume FILE] [--fault-plan SPEC]
//!       [--snapshot-at DAY --snapshot-out FILE]
//!       [--fork-from FILE] [--fork-seed N]
//! ```
//!
//! Runs the full experiment battery against freshly simulated worlds,
//! prints each figure/table as text, and writes the paper-vs-measured
//! comparison to the output markdown file. With `--report`, also writes
//! the 2012-era world's deterministic [`mhw_obs::RunReport`] as JSON —
//! byte-identical for a fixed seed and scale. `--workers` caps how many
//! threads build the independent worlds (default: all cores); it is
//! pure mechanics and never changes any result.
//!
//! With `--validate`, the battery is skipped: the same worlds are
//! measured against the calibration-target registry
//! (`mhw_experiments::fidelity`) and the deterministic scorecard is
//! written to `--fidelity-out` (JSON, default `FIDELITY.json`) and
//! `--scorecard` (markdown, default `FIDELITY.md`). The process exits 1
//! when any target FAILs, so CI can gate on it directly.
//!
//! The crash-safety flags apply to the main 2012-era run:
//! `--checkpoint-dir DIR` writes day-barrier checkpoints there (every
//! `--checkpoint-every` days, default 1), `--resume FILE` restarts from
//! a checkpoint file, and `--fault-plan SPEC` injects deterministic
//! faults (see `docs/REPRODUCING.md`). Exit status: 0 on success, 2 on
//! a usage error, 1 on any runtime failure.
//!
//! The world-forking flags also apply to the main 2012-era run:
//! `--snapshot-at DAY --snapshot-out FILE` records the fork point after
//! `DAY` complete days (the battery still runs to completion —
//! finishing via a same-seed fork is byte-identical to never
//! snapshotting); `--fork-from FILE` rebuilds the recorded prefix,
//! digest-verifies the fork point against the record, and runs the main
//! world as a continuation, diverging its RNG from the fork point
//! onward when `--fork-seed N` is given. Both are mutually exclusive
//! with the crash-safety flags — they drive the same engine slot.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mhw_core::{FaultPlan, ScenarioConfig};
use mhw_experiments::cli::{self, Failure, UsageError};
use mhw_experiments::context::EngineOptions;
use mhw_experiments::{all_experiments, Context, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;

const USAGE: &str = "usage: repro [--quick] [--seed N] [--workers N] [--out FILE] [--report FILE]\n\
     \x20            [--validate] [--fidelity-out FILE] [--scorecard FILE]\n\
     \x20            [--checkpoint-dir DIR] [--checkpoint-every N] [--resume FILE]\n\
     \x20            [--fault-plan SPEC] [--snapshot-at DAY --snapshot-out FILE]\n\
     \x20            [--fork-from FILE] [--fork-seed N]";

fn main() {
    cli::run_main(USAGE, run);
}

fn run(args: &[String]) -> Result<(), Failure> {
    let quick = cli::flag(args, "--quick");
    let seed = cli::value::<u64>(args, "--seed")?.unwrap_or(0x1914_2014);
    let out_path =
        cli::value::<String>(args, "--out")?.unwrap_or_else(|| "EXPERIMENTS.md".to_string());
    let report_path = cli::value::<String>(args, "--report")?;
    let validate = cli::flag(args, "--validate");
    let fidelity_out =
        cli::value::<String>(args, "--fidelity-out")?.unwrap_or_else(|| "FIDELITY.json".to_string());
    let scorecard_out =
        cli::value::<String>(args, "--scorecard")?.unwrap_or_else(|| "FIDELITY.md".to_string());
    let workers =
        cli::value::<usize>(args, "--workers")?.unwrap_or_else(mhw_core::default_workers);
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let checkpoint_dir = cli::value::<PathBuf>(args, "--checkpoint-dir")?;
    let checkpoint_every = cli::value::<u64>(args, "--checkpoint-every")?;
    if checkpoint_every.is_some() && checkpoint_dir.is_none() {
        return Err(Failure::Usage(UsageError(
            "--checkpoint-every requires --checkpoint-dir".to_string(),
        )));
    }
    let resume = cli::value::<PathBuf>(args, "--resume")?;
    let fault_spec = cli::value::<String>(args, "--fault-plan")?;
    // The plan is validated against the main run's geometry: one
    // logical shard, the scale's configured day count.
    let main_days = match scale {
        Scale::Quick => ScenarioConfig::small_test(seed).days,
        Scale::Full => ScenarioConfig::measurement(seed).days,
    };
    let faults = match &fault_spec {
        None => None,
        Some(spec) => Some(FaultPlan::parse_spec(spec, seed, main_days, 1).map_err(|e| {
            UsageError(format!("invalid value for --fault-plan: {e}"))
        })?),
    };
    let snapshot_at = cli::value::<u64>(args, "--snapshot-at")?;
    let snapshot_out = cli::value::<PathBuf>(args, "--snapshot-out")?;
    if snapshot_at.is_some() != snapshot_out.is_some() {
        return Err(Failure::Usage(UsageError(
            "--snapshot-at and --snapshot-out must be given together".to_string(),
        )));
    }
    let fork_from = cli::value::<PathBuf>(args, "--fork-from")?;
    let fork_seed = cli::value::<u64>(args, "--fork-seed")?;
    if fork_seed.is_some() && fork_from.is_none() {
        return Err(Failure::Usage(UsageError("--fork-seed requires --fork-from".to_string())));
    }
    let forking = snapshot_out.is_some() || fork_from.is_some();
    if snapshot_out.is_some() && fork_from.is_some() {
        return Err(Failure::Usage(UsageError(
            "--snapshot-out and --fork-from cannot be combined".to_string(),
        )));
    }
    if forking && (checkpoint_dir.is_some() || resume.is_some() || faults.is_some()) {
        return Err(Failure::Usage(UsageError(
            "the forking flags and the crash-safety flags drive the same engine slot; \
             use one mechanism per run"
                .to_string(),
        )));
    }
    let opts = EngineOptions {
        checkpoint: checkpoint_dir.map(|dir| (dir, checkpoint_every.unwrap_or(1))),
        resume,
        faults,
        snapshot: snapshot_at.zip(snapshot_out),
        fork_from,
        fork_seed,
    };

    eprintln!("building context (scale {scale:?}, seed {seed:#x}, {workers} workers) …");
    let start = std::time::Instant::now();
    let ctx = Context::try_with_options(scale, seed, workers, &opts)
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    eprintln!("context ready in {:.1}s", start.elapsed().as_secs_f64());

    if validate {
        let report = mhw_experiments::fidelity::validate(&ctx);
        std::fs::write(&fidelity_out, report.to_json())
            .map_err(|e| Failure::Runtime(format!("writing {fidelity_out}: {e}")))?;
        std::fs::write(&scorecard_out, report.scorecard_markdown())
            .map_err(|e| Failure::Runtime(format!("writing {scorecard_out}: {e}")))?;
        println!(
            "fidelity: {} PASS, {} WARN, {} FAIL across {} targets (overall {})",
            report.count(mhw_obs::FidelityStatus::Pass),
            report.count(mhw_obs::FidelityStatus::Warn),
            report.count(mhw_obs::FidelityStatus::Fail),
            report.target_ids().len(),
            report.overall(),
        );
        println!("wrote {fidelity_out}\nwrote {scorecard_out}");
        if report.overall() == mhw_obs::FidelityStatus::Fail {
            let mut msg = String::from("fidelity targets FAILed:");
            for f in report.failures() {
                let _ = write!(msg, "\n  {} — {}: {} vs paper {}", f.target, f.component, f.measured, f.paper);
            }
            return Err(Failure::Runtime(msg));
        }
        return Ok(());
    }

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs measured\n\n\
         Reproduction of *Handcrafted Fraud and Extortion: Manual Account \
         Hijacking in the Wild* (IMC 2014).\n\n\
         Generated by `cargo run -p mhw-experiments --bin repro{}` \
         (seed `{seed:#x}`). Absolute sample sizes differ from the paper by \
         design (the attack-volume knob is cranked for statistical power; \
         see DESIGN.md §4); every row compares the paper's *published value \
         or shape* against the measured one, with the tolerance used.\n",
        if quick { " -- --quick" } else { "" }
    );

    let mut matched = 0usize;
    let mut total = 0usize;
    for (name, runner) in all_experiments() {
        eprintln!("running {name} …");
        let t = std::time::Instant::now();
        let result = runner(&ctx);
        println!("\n================================================================");
        println!("{name}   [{:.1}s]", t.elapsed().as_secs_f64());
        println!("================================================================");
        println!("{}", result.rendering);
        for row in &result.table.rows {
            println!(
                "  [{}] {}: paper {} | measured {}  ({})",
                if row.matches { "ok" } else { "MISS" },
                row.metric,
                row.paper,
                row.measured,
                row.note
            );
            matched += row.matches as usize;
            total += 1;
        }
        md.push_str(&result.table.to_markdown());
        md.push('\n');
    }

    let _ = writeln!(md, "---\n\n**{matched}/{total} comparison rows within tolerance.**");
    std::fs::write(&out_path, &md)
        .map_err(|e| Failure::Runtime(format!("writing {out_path}: {e}")))?;
    println!("\n{matched}/{total} comparison rows within tolerance.");
    println!("wrote {out_path}");

    if let Some(path) = report_path {
        let report = ctx.eco_2012.run_report();
        std::fs::write(&path, report.to_json())
            .map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}
