//! `sweep` — fan a defense × recovery posture grid from one snapshot.
//!
//! ```text
//! sweep [--quick] [--seed N] [--workers N] [--out BENCH_sweep.json]
//!       [--markdown FILE] [--smoke] [--validate]
//! ```
//!
//! Builds the expensive world prefix once, freezes it as a
//! [`mhw_core::WorldSnapshot`], then forks one copy-on-write
//! continuation per grid cell via [`mhw_bench::sweep::fork_sweep`] —
//! every cell pays only its divergent tail days. The grid crosses three
//! defense postures (`full`, `no-challenge`, `none`) with three
//! recovery policies (`legacy` unscored, `paper`, `strict`), and the
//! per-cell attack-success / legitimate-lockout counts are written to
//! `--out` as a [`mhw_obs::SweepReport`] (`BENCH_sweep.json`), with the
//! frontier table printed as markdown (and written to `--markdown` when
//! given). The baseline cell (`full/legacy`) applies no divergence at
//! all, so it reproduces the paper configuration byte for byte.
//!
//! `--smoke` is the CI gate: a tiny 2×2 grid run **twice**, erroring
//! unless both passes produce identical per-cell digests and the
//! artifact re-read from `--out` agrees — determinism of the whole
//! snapshot → fork → digest pipeline in a few seconds.
//!
//! `--validate` is the fidelity gate: the baseline cell's configuration
//! is re-run from scratch as a single world, digest-checked against the
//! forked baseline cell (proving the fork reproduced the paper world
//! exactly), then scored against the world-derivable calibration
//! targets (`mhw_experiments::fidelity::validate_world` — the same
//! registry subset `repro --validate` covers for the main world). Any
//! FAILing target or digest disagreement exits 1.
//!
//! Exit status: 0 on success, 2 on a usage error, 1 on any runtime
//! failure (including smoke/validate gate misses).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mhw_bench::sweep::{fork_sweep, CellOutcome, SweepCell};
use mhw_core::{DefenseConfig, RecoveryConfig, ScenarioBuilder, ScenarioConfig};
use mhw_experiments::cli::{self, Failure};
use mhw_experiments::Scale;
use mhw_obs::{FidelityStatus, SweepCellRow, SweepReport};
use std::fmt::Write as _;

const USAGE: &str = "usage: sweep [--quick] [--seed N] [--workers N] [--out FILE]\n\
     \x20           [--markdown FILE] [--smoke] [--validate]";

fn main() {
    cli::run_main(USAGE, run);
}

/// One axis value: a display label plus the divergence it applies
/// (`None` keeps the snapshot's own configuration).
struct Axis<T> {
    label: &'static str,
    value: Option<T>,
}

/// The defense axis: the §8 ablation surface, coarsened to the three
/// postures the frontier needs.
fn defense_axis() -> Vec<Axis<DefenseConfig>> {
    let no_challenge = DefenseConfig { login_risk_analysis: false, ..DefenseConfig::default() };
    vec![
        Axis { label: "full", value: None },
        Axis { label: "no-challenge", value: Some(no_challenge) },
        Axis { label: "none", value: Some(DefenseConfig::none()) },
    ]
}

/// The recovery axis: unscored legacy pipeline, then the scored
/// postures with the adversary pivot enabled.
fn recovery_axis() -> Vec<Axis<RecoveryConfig>> {
    vec![
        Axis { label: "legacy", value: None },
        Axis { label: "paper", value: Some(RecoveryConfig::paper()) },
        Axis { label: "strict", value: Some(RecoveryConfig::strict()) },
    ]
}

/// Cross the axes into grid cells, defense-major, labelled
/// `defense/recovery`. Returns the cells plus each cell's axis labels
/// in the same order.
fn cross(
    defenses: &[Axis<DefenseConfig>],
    recoveries: &[Axis<RecoveryConfig>],
) -> (Vec<SweepCell>, Vec<(String, String)>) {
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for d in defenses {
        for r in recoveries {
            let mut cell = SweepCell::baseline(format!("{}/{}", d.label, r.label));
            if let Some(defense) = d.value {
                cell = cell.defense(defense);
            }
            if let Some(recovery) = r.value {
                cell = cell.recovery(recovery);
            }
            cells.push(cell);
            labels.push((d.label.to_string(), r.label.to_string()));
        }
    }
    (cells, labels)
}

/// A tiny scenario for the `--smoke` double run: big enough that every
/// counter moves, small enough for CI.
fn smoke_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 8;
    config.population.n_users = 250;
    config
}

/// Freeze the prefix after `snapshot_day` and fork one continuation per
/// cell.
fn run_grid(
    config: ScenarioConfig,
    snapshot_day: u64,
    cells: &[SweepCell],
    workers: usize,
) -> Result<Vec<CellOutcome>, Failure> {
    let engine = ScenarioBuilder::new(config).workers(workers).sharded(1);
    let snapshot = engine.snapshot_after(snapshot_day).map_err(|e| Failure::Runtime(e.to_string()))?;
    fork_sweep(&snapshot, cells, workers).map_err(|e| Failure::Runtime(e.to_string()))
}

/// Assemble the report from one grid pass.
fn report_from(
    config: &ScenarioConfig,
    snapshot_day: u64,
    outcomes: &[CellOutcome],
    labels: &[(String, String)],
) -> SweepReport {
    let mut report = SweepReport::new(
        config.seed,
        config.population.n_users as u32,
        config.days as u32,
        snapshot_day,
    );
    for (outcome, (defense, recovery)) in outcomes.iter().zip(labels) {
        report.cells.push(SweepCellRow {
            label: outcome.label.clone(),
            defense: defense.clone(),
            recovery: recovery.clone(),
            seed: outcome.seed,
            digest: outcome.digest,
            incidents: outcome.incidents,
            exploited: outcome.exploited,
            pivot_attempts: outcome.pivot_attempts,
            pivot_takeovers: outcome.pivot_takeovers,
            recovery_lockouts: outcome.recovery_lockouts,
            recovery_step_ups: outcome.recovery_step_ups,
            run_s: outcome.run_s,
            digest_s: outcome.digest_s,
        });
    }
    report
}

fn write_file(path: &str, contents: &str) -> Result<(), Failure> {
    std::fs::write(path, contents).map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))
}

fn run(args: &[String]) -> Result<(), Failure> {
    let quick = cli::flag(args, "--quick");
    let smoke = cli::flag(args, "--smoke");
    let validate = cli::flag(args, "--validate");
    let seed = cli::value::<u64>(args, "--seed")?.unwrap_or(0x1914_2014);
    let out = cli::value::<String>(args, "--out")?.unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let markdown_out = cli::value::<String>(args, "--markdown")?;
    let workers =
        cli::value::<usize>(args, "--workers")?.unwrap_or_else(mhw_core::default_workers);

    // Scenario coordinates: the snapshot sits at ~2/3 of the run, so
    // the shared prefix dominates and each cell pays only the tail.
    let (config, scale) = if smoke {
        (smoke_config(seed), Scale::Quick)
    } else if quick {
        (ScenarioConfig::small_test(seed), Scale::Quick)
    } else {
        (ScenarioConfig::measurement(seed), Scale::Full)
    };
    let snapshot_day = (config.days * 2 / 3).max(1);

    // Smoke shrinks the grid to its 2×2 corners; the full grid crosses
    // all three postures on each axis.
    let (defenses, recoveries) = if smoke {
        (
            vec![defense_axis().remove(0), defense_axis().remove(2)],
            vec![recovery_axis().remove(0), recovery_axis().remove(2)],
        )
    } else {
        (defense_axis(), recovery_axis())
    };
    let (cells, labels) = cross(&defenses, &recoveries);

    eprintln!(
        "sweep: {} users × {} days, snapshot at day {}, {} cells ({}×{}), seed {seed:#x}, {workers} worker(s)",
        config.population.n_users,
        config.days,
        snapshot_day,
        cells.len(),
        defenses.len(),
        recoveries.len(),
    );
    let t0 = std::time::Instant::now();
    let outcomes = run_grid(config.clone(), snapshot_day, &cells, workers)?;
    eprintln!("grid done in {:.1}s", t0.elapsed().as_secs_f64());
    let report = report_from(&config, snapshot_day, &outcomes, &labels);

    if smoke {
        // Second pass from scratch: the whole snapshot → fork → digest
        // pipeline must reproduce byte-identically.
        let second = run_grid(config.clone(), snapshot_day, &cells, workers)?;
        let second_report = report_from(&config, snapshot_day, &second, &labels);
        if report.digests() != second_report.digests() {
            return Err(Failure::Runtime(format!(
                "smoke double run diverged: first {:x?}, second {:x?}",
                report.digests(),
                second_report.digests()
            )));
        }
        eprintln!("smoke: double run digests agree");
    }

    write_file(&out, &report.to_json())?;
    println!("wrote {out}");

    if smoke {
        // The artifact must survive its own round trip.
        let disk = std::fs::read_to_string(&out)
            .map_err(|e| Failure::Runtime(format!("re-reading {out}: {e}")))?;
        let back =
            SweepReport::from_json(&disk).map_err(|e| Failure::Runtime(format!("parsing {out}: {e}")))?;
        if back.digests() != report.digests() {
            return Err(Failure::Runtime(format!(
                "artifact round trip changed digests: wrote {:x?}, read {:x?}",
                report.digests(),
                back.digests()
            )));
        }
        eprintln!("smoke: artifact round trip agrees");
    }

    let frontier = report.frontier_markdown();
    println!("\n{frontier}");
    if let Some(path) = markdown_out {
        write_file(&path, &frontier)?;
    }

    if validate {
        // The baseline cell applies no divergence, so a from-scratch
        // run of the snapshot's own configuration must reproduce its
        // digest exactly — then the world it built is scored against
        // the paper's numbers.
        let baseline = report
            .cells
            .first()
            .ok_or_else(|| Failure::Runtime("empty grid".to_string()))?;
        let scratch = ScenarioBuilder::new(config.clone())
            .workers(workers)
            .sharded(1)
            .run()
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        if scratch.dataset_digest() != baseline.digest {
            return Err(Failure::Runtime(format!(
                "baseline cell {} (digest {:#x}) does not reproduce the from-scratch world \
                 (digest {:#x})",
                baseline.label,
                baseline.digest,
                scratch.dataset_digest()
            )));
        }
        let worlds = scratch.shards();
        let eco = worlds
            .first()
            .ok_or_else(|| Failure::Runtime("engine returned no shards".to_string()))?;
        let fidelity = mhw_experiments::fidelity::validate_world(eco, scale, seed);
        println!(
            "validate: baseline cell digest {:#x} confirmed; fidelity {} PASS, {} WARN, {} FAIL \
             (overall {})",
            baseline.digest,
            fidelity.count(FidelityStatus::Pass),
            fidelity.count(FidelityStatus::Warn),
            fidelity.count(FidelityStatus::Fail),
            fidelity.overall(),
        );
        if fidelity.overall() == FidelityStatus::Fail {
            let mut msg = String::from("baseline cell drifted off the paper's numbers:");
            for f in fidelity.failures() {
                let _ = write!(
                    msg,
                    "\n  {} — {}: {} vs paper {}",
                    f.target, f.component, f.measured, f.paper
                );
            }
            return Err(Failure::Runtime(msg));
        }
    }
    Ok(())
}
