//! `serve` — replay a login stream through streaming `RiskService`
//! instances at maximum throughput and measure scoring cost.
//!
//! ```text
//! serve [--users N] [--days N] [--logins-per-user-day N] [--attack-rate F]
//!       [--seed N] [--threads LIST] [--log-in FILE] [--log-out FILE]
//!       [--out BENCH_serve.json] [--smoke]
//! ```
//!
//! Where `repro`/`scenario` run the closed-loop simulation, `serve`
//! treats login scoring as the serving workload the paper's defense
//! actually was: a time-ordered stream of login events is sharded by
//! account across `--threads` worker threads (each owning one
//! [`StreamingRiskService`] with bounded state) and replayed as fast
//! as the hardware allows. Each
//! thread-count configuration in `--threads` (default `1,4,8`) is
//! measured separately; the results — logins/sec, p50/p99/mean scoring
//! latency from an `mhw-obs` histogram, peak bounded-state footprint,
//! and the chained verdict digest — are written to `--out` as a
//! [`ServeReport`].
//!
//! The stream is either generated deterministically from the workload
//! knobs (`--users`/`--days`/`--seed`…, optionally saved with
//! `--log-out`) or loaded from a previously saved file (`--log-in`).
//! `--smoke` runs the small default workload on 1 and 2 threads and
//! verifies the written report parses and shows nonzero throughput —
//! the CI hook. Timings measure the hardware and vary run to run; the
//! per-run verdict digests are deterministic for a fixed stream and
//! thread count. Usage errors exit 2, runtime failures exit 1.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use mhw_core::replay::{self, ReplayLog, ReplayLogin, WorkloadConfig};
use mhw_defense::{RiskEngine, RiskService, StateSize, StreamingRiskService};
use mhw_experiments::cli::{self, Failure, UsageError};
use mhw_netmodel::GeoDb;
use mhw_obs::{buckets, MetricId, MetricsSnapshot, Registry, ServeReport, ServeRun};
use std::time::Instant;

const USAGE: &str = "usage: serve [--users N] [--days N] [--logins-per-user-day N] [--attack-rate F]\n\
     \x20            [--seed N] [--threads LIST] [--log-in FILE] [--log-out FILE]\n\
     \x20            [--out FILE] [--smoke]";

/// Per-login scoring latency (assess + adjudicate + commit), wall ns.
const M_LATENCY: MetricId = MetricId("serve.latency_ns");

/// Events replayed between bounded-state size samples.
const CHUNK: usize = 65_536;

fn main() {
    cli::run_main(USAGE, run);
}

/// One worker's replay result: its digest, its latency histogram, and
/// the peak state footprint sampled between chunks.
struct ShardResult {
    digest: u64,
    snapshot: MetricsSnapshot,
    peak: StateSize,
}

fn max_state(a: StateSize, b: StateSize) -> StateSize {
    StateSize {
        accounts: a.accounts.max(b.accounts),
        ip_entries: a.ip_entries.max(b.ip_entries),
        tracked_devices: a.tracked_devices.max(b.tracked_devices),
        approx_bytes: a.approx_bytes.max(b.approx_bytes),
    }
}

/// Replay one shard through a fresh service, timing every login.
fn replay_shard(geo: &GeoDb, events: &[ReplayLogin]) -> ShardResult {
    let mut service = StreamingRiskService::new(RiskEngine::default());
    let registry = Registry::new().with_histogram(M_LATENCY, buckets::SERVE_LATENCY_NANOS);
    let mut request = replay::placeholder_request();
    let mut digest = replay::DIGEST_SEED;
    let mut peak = StateSize::default();
    for chunk in events.chunks(CHUNK) {
        for event in chunk {
            let t = Instant::now();
            let (verdict, outcome) = replay::score_event(&mut service, geo, event, &mut request);
            registry.observe(M_LATENCY, t.elapsed().as_nanos() as u64);
            digest = replay::mix_digest(digest, &verdict, outcome);
        }
        peak = max_state(peak, service.state_size());
    }
    ShardResult { digest, snapshot: registry.snapshot(), peak }
}

/// Measure one thread-count configuration: shard the stream by
/// account, replay every shard concurrently, merge the histograms.
fn measure(geo: &GeoDb, events: &[ReplayLogin], threads: usize) -> Result<ServeRun, Failure> {
    let shards = replay::shard_events(events, threads);
    let t0 = Instant::now();
    let results: Result<Vec<ShardResult>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || replay_shard(geo, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "replay worker panicked".to_string()))
            .collect()
    });
    let results = results.map_err(Failure::Runtime)?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    let merged = MetricsSnapshot::merge_all(results.iter().map(|r| r.snapshot.clone()));
    let latency = merged
        .histogram(M_LATENCY.0)
        .ok_or_else(|| Failure::Runtime("latency histogram missing from snapshot".to_string()))?;
    let digests: Vec<u64> = results.iter().map(|r| r.digest).collect();
    // Shards hold disjoint state, so the run's peak footprint is the
    // sum of the per-shard peaks (each a max over its chunk samples).
    let peak_bytes: u64 = results.iter().map(|r| r.peak.approx_bytes as u64).sum();
    let peak_accounts: u64 = results.iter().map(|r| r.peak.accounts as u64).sum();
    let peak_ips: u64 = results.iter().map(|r| r.peak.ip_entries as u64).sum();
    Ok(ServeRun::from_measurement(
        threads,
        events.len() as u64,
        wall_ms,
        latency,
        peak_bytes,
        peak_accounts,
        peak_ips,
        replay::fold_digests(&digests),
    ))
}

fn run(args: &[String]) -> Result<(), Failure> {
    let smoke = cli::flag(args, "--smoke");
    let seed = cli::value::<u64>(args, "--seed")?.unwrap_or(0x5E12_E014);
    let threads = match cli::value_list::<usize>(args, "--threads")? {
        Some(list) => list,
        None if smoke => vec![1, 2],
        None => vec![1, 4, 8],
    };
    if threads.contains(&0) {
        return Err(UsageError("--threads values must be >= 1".to_string()).into());
    }
    let out_path =
        cli::value::<String>(args, "--out")?.unwrap_or_else(|| "BENCH_serve.json".to_string());
    let log_in = cli::value::<String>(args, "--log-in")?;
    let log_out = cli::value::<String>(args, "--log-out")?;
    if log_in.is_some() && log_out.is_some() {
        return Err(UsageError(
            "--log-out would just copy --log-in back out; pick one".to_string(),
        )
        .into());
    }

    let geo = GeoDb::new();
    let (stream_seed, users, days, events) = if let Some(path) = log_in {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| Failure::Runtime(format!("reading {path}: {e}")))?;
        let log = ReplayLog::from_json(&json)
            .map_err(|e| Failure::Runtime(format!("parsing {path}: {e}")))?;
        eprintln!("loaded {} events from {path}", log.events.len());
        (log.seed, 0, 0, log.events)
    } else {
        let mut cfg = if smoke {
            WorkloadConfig::small(seed)
        } else {
            WorkloadConfig {
                users: 5_000,
                days: 10,
                logins_per_user_day: 2,
                wrong_password_rate: 0.03,
                travel_rate: 0.02,
                attack_rate: 0.01,
                seed,
            }
        };
        if let Some(u) = cli::value::<u32>(args, "--users")? {
            cfg.users = u;
        }
        if let Some(d) = cli::value::<u32>(args, "--days")? {
            cfg.days = d;
        }
        if let Some(l) = cli::value::<u32>(args, "--logins-per-user-day")? {
            cfg.logins_per_user_day = l;
        }
        if let Some(a) = cli::value::<f64>(args, "--attack-rate")? {
            cfg.attack_rate = a;
        }
        eprintln!(
            "generating workload: {} users x {} days x {} logins/day, seed {:#x} …",
            cfg.users, cfg.days, cfg.logins_per_user_day, cfg.seed
        );
        let events = replay::generate_workload(&cfg, &geo);
        if let Some(path) = log_out {
            std::fs::write(&path, ReplayLog::new(cfg.seed, events.clone()).to_json())
                .map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        (cfg.seed, cfg.users, cfg.days, events)
    };
    if events.is_empty() {
        return Err(Failure::Runtime("login stream is empty".to_string()));
    }

    let mut report = ServeReport::new(stream_seed, users, days, events.len() as u64);
    for &t in &threads {
        eprintln!("replaying {} events on {t} thread(s) …", events.len());
        let run = measure(&geo, &events, t)?;
        println!(
            "threads {t:>2}: {:>12.0} logins/s   p50 {:>6.0} ns   p99 {:>7.0} ns   \
             peak state {} B   digest {:#018x}",
            run.logins_per_sec, run.p50_ns, run.p99_ns, run.peak_state_bytes, run.verdict_digest
        );
        report.runs.push(run);
    }
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| Failure::Runtime(format!("writing {out_path}: {e}")))?;
    println!("wrote {out_path}");

    if smoke {
        // Re-read what was just written: the smoke gate checks the
        // artifact on disk, not the in-memory report.
        let json = std::fs::read_to_string(&out_path)
            .map_err(|e| Failure::Runtime(format!("re-reading {out_path}: {e}")))?;
        let back = ServeReport::from_json(&json)
            .map_err(|e| Failure::Runtime(format!("re-parsing {out_path}: {e}")))?;
        if back.runs.len() != threads.len() {
            return Err(Failure::Runtime(format!(
                "smoke: expected {} runs in {out_path}, found {}",
                threads.len(),
                back.runs.len()
            )));
        }
        for run in &back.runs {
            if !run.logins_per_sec.is_finite() || run.logins_per_sec <= 0.0 {
                return Err(Failure::Runtime(format!(
                    "smoke: zero throughput at {} thread(s)",
                    run.threads
                )));
            }
            if run.events != back.events {
                return Err(Failure::Runtime(format!(
                    "smoke: run at {} thread(s) replayed {} of {} events",
                    run.threads, run.events, back.events
                )));
            }
        }
        println!("serve smoke OK: {} events, {} thread configs", back.events, back.runs.len());
    }
    Ok(())
}
