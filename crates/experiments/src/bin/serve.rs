//! `serve` — replay a login stream through streaming `RiskService`
//! instances at maximum throughput and measure scoring cost, healthy
//! and under injected partial outages.
//!
//! ```text
//! serve [--users N] [--days N] [--logins-per-user-day N] [--attack-rate F]
//!       [--seed N] [--threads LIST] [--log-in FILE] [--log-out FILE]
//!       [--fault-plan SPEC[;SPEC...]] [--deadline-ns N] [--queue-cap N]
//!       [--shed-policy fifo|lowest-risk] [--out BENCH_serve.json] [--smoke]
//! ```
//!
//! Where `repro`/`scenario` run the closed-loop simulation, `serve`
//! treats login scoring as the serving workload the paper's defense
//! actually was: a time-ordered stream of login events is sharded by
//! account across `--threads` worker threads (each owning one
//! [`StreamingRiskService`] with bounded state) and replayed as fast
//! as the hardware allows. Each thread-count configuration in
//! `--threads` (default `1,4,8`) is measured separately; the results —
//! logins/sec, p50/p99/mean scoring latency from an `mhw-obs`
//! histogram, peak bounded-state footprint, and the chained verdict
//! digest — are written to `--out` as a [`ServeReport`].
//!
//! **Fault arms.** Each `;`-separated spec in `--fault-plan` (grammar:
//! `geo-down@A..B`, `slow-signal@SRC:NS`, `cache-wipe@E`,
//! `seeded:geo=N,slow=N,wipe=N`) adds one *fault arm* per thread
//! count, replayed through the overload-safe path: a bounded admission
//! queue (`--queue-cap`) shedding by `--shed-policy`, per-request
//! deadline budgets (`--deadline-ns`) that downgrade signals instead
//! of blocking, and per-source circuit breakers. Fault coordinates
//! address each worker's local substream. Fault-arm rows report
//! *virtual*-clock latency quantiles (queueing + modeled scoring
//! cost — deterministic, unlike the wall-clock clean rows) and a
//! [`ServeAvailability`] block: shed rate, per-source degradation
//! counts, breaker transitions, and decision divergence from the
//! clean arm at the same thread count.
//!
//! The stream is either generated deterministically from the workload
//! knobs (`--users`/`--days`/`--seed`…, optionally saved with
//! `--log-out`) or loaded from a previously saved file (`--log-in`).
//! `--smoke` runs the small default workload on 1 and 2 threads,
//! verifies the written report parses and shows nonzero throughput,
//! and — when fault arms are present — replays each arm twice to
//! assert a byte-identical digest and a shed rate ≤ 0.5: the CI chaos
//! hook. Timings measure the hardware and vary run to run; the per-run
//! verdict digests (and every fault-arm availability figure) are
//! deterministic for a fixed stream, plan and thread count. Usage
//! errors exit 2, runtime failures exit 1.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use mhw_core::replay::{self, ReplayLog, ReplayLogin, WorkloadConfig};
use mhw_core::resilience::{
    replay_stream_resilient, ReplayStats, ServeFaultPlan, ServeOptions, ShedPolicy,
    DEFAULT_DEADLINE_NS, DEFAULT_QUEUE_CAP,
};
use mhw_defense::{
    BreakerTransitions, ResilienceConfig, RiskDecision, RiskEngine, RiskService, ServiceLimits,
    StateSize, StreamingRiskService,
};
use mhw_experiments::cli::{self, Failure, UsageError};
use mhw_netmodel::GeoDb;
use mhw_obs::{
    buckets, MetricId, MetricsSnapshot, Registry, ServeAvailability, ServeReport, ServeRun,
    ARM_CLEAN,
};
use mhw_types::RetryPolicy;
use std::time::Instant;

const USAGE: &str = "usage: serve [--users N] [--days N] [--logins-per-user-day N] [--attack-rate F]\n\
     \x20            [--seed N] [--threads LIST] [--log-in FILE] [--log-out FILE]\n\
     \x20            [--fault-plan SPEC[;SPEC...]] [--deadline-ns N] [--queue-cap N]\n\
     \x20            [--shed-policy fifo|lowest-risk] [--out FILE] [--smoke]";

/// Per-login scoring latency: wall ns on the clean arm, virtual ns
/// (queueing + modeled scoring cost) on fault arms.
const M_LATENCY: MetricId = MetricId("serve.latency_ns");

/// Events replayed between bounded-state size samples (clean arm).
const CHUNK: usize = 65_536;

/// Fault arms in `--smoke` must shed no more than this fraction.
const SMOKE_MAX_SHED_RATE: f64 = 0.5;

fn main() {
    cli::run_main(USAGE, run);
}

/// One worker's replay result: its digest, its latency histogram, the
/// peak state footprint, its per-event decisions (for the divergence
/// comparison), and — on fault arms — the overload accounting.
struct ShardResult {
    digest: u64,
    snapshot: MetricsSnapshot,
    peak: StateSize,
    decisions: Vec<RiskDecision>,
    stats: ReplayStats,
    breakers: BreakerTransitions,
    deadline_downgrades: u64,
}

fn max_state(a: StateSize, b: StateSize) -> StateSize {
    StateSize {
        accounts: a.accounts.max(b.accounts),
        ip_entries: a.ip_entries.max(b.ip_entries),
        tracked_devices: a.tracked_devices.max(b.tracked_devices),
        approx_bytes: a.approx_bytes.max(b.approx_bytes),
    }
}

/// Replay one shard through a fresh service, timing every login on the
/// wall clock (the clean arm).
fn replay_shard(geo: &GeoDb, events: &[ReplayLogin]) -> ShardResult {
    let mut service = StreamingRiskService::new(RiskEngine::default());
    let registry = Registry::new().with_histogram(M_LATENCY, buckets::SERVE_LATENCY_NANOS);
    let mut request = replay::placeholder_request();
    let mut digest = replay::DIGEST_SEED;
    let mut peak = StateSize::default();
    let mut decisions = Vec::with_capacity(events.len());
    for chunk in events.chunks(CHUNK) {
        for event in chunk {
            let t = Instant::now();
            let (verdict, outcome) = replay::score_event(&mut service, geo, event, &mut request);
            registry.observe(M_LATENCY, t.elapsed().as_nanos() as u64);
            digest = replay::mix_digest(digest, &verdict, outcome);
            decisions.push(verdict.decision);
        }
        peak = max_state(peak, service.state_size());
    }
    ShardResult {
        digest,
        snapshot: registry.snapshot(),
        peak,
        decisions,
        stats: ReplayStats::default(),
        breakers: BreakerTransitions::default(),
        deadline_downgrades: 0,
    }
}

/// Replay one shard through the overload-safe path under `opts`,
/// recording *virtual* per-login latency (a fault arm).
fn replay_shard_resilient(geo: &GeoDb, events: &[ReplayLogin], opts: &ServeOptions) -> ShardResult {
    let mut service = StreamingRiskService::with_resilience(
        RiskEngine::default(),
        ServiceLimits::default(),
        ResilienceConfig::with_deadline(opts.deadline_ns),
    );
    let registry = Registry::new().with_histogram(M_LATENCY, buckets::SERVE_LATENCY_NANOS);
    let mut stats = ReplayStats::default();
    let mut decisions = vec![RiskDecision::Allow; events.len()];
    let digest = replay_stream_resilient(
        &mut service,
        geo,
        events,
        replay::DIGEST_SEED,
        opts,
        &mut stats,
        |index, _event, verdict, _outcome, virtual_ns| {
            registry.observe(M_LATENCY, virtual_ns);
            decisions[index] = verdict.decision;
        },
    );
    let resilience = service.resilience_snapshot();
    ShardResult {
        digest,
        snapshot: registry.snapshot(),
        peak: service.state_size(),
        decisions,
        stats,
        breakers: resilience.breakers,
        deadline_downgrades: resilience.deadline_downgrades,
    }
}

/// Shard the stream by account, replay every shard concurrently with
/// `replay`, merge the histograms into one [`ServeRun`] row.
fn measure(
    geo: &GeoDb,
    events: &[ReplayLogin],
    threads: usize,
    arm: &str,
    replay: impl Fn(&GeoDb, &[ReplayLogin]) -> ShardResult + Sync,
) -> Result<(ServeRun, Vec<ShardResult>), Failure> {
    let shards = replay::shard_events(events, threads);
    let t0 = Instant::now();
    let results: Result<Vec<ShardResult>, String> = std::thread::scope(|scope| {
        let replay = &replay;
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || replay(geo, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| "replay worker panicked".to_string()))
            .collect()
    });
    let results = results.map_err(Failure::Runtime)?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    let merged = MetricsSnapshot::merge_all(results.iter().map(|r| r.snapshot.clone()));
    let latency = merged
        .histogram(M_LATENCY.0)
        .ok_or_else(|| Failure::Runtime("latency histogram missing from snapshot".to_string()))?;
    let digests: Vec<u64> = results.iter().map(|r| r.digest).collect();
    // Shards hold disjoint state, so the run's peak footprint is the
    // sum of the per-shard peaks (each a max over its chunk samples).
    let peak_bytes: u64 = results.iter().map(|r| r.peak.approx_bytes as u64).sum();
    let peak_accounts: u64 = results.iter().map(|r| r.peak.accounts as u64).sum();
    let peak_ips: u64 = results.iter().map(|r| r.peak.ip_entries as u64).sum();
    let run = ServeRun::from_measurement(
        arm,
        threads,
        events.len() as u64,
        wall_ms,
        latency,
        peak_bytes,
        peak_accounts,
        peak_ips,
        replay::fold_digests(&digests),
    );
    Ok((run, results))
}

/// Measure one fault arm at one thread count and fill in its
/// availability block, comparing decisions against the clean arm's.
fn measure_fault_arm(
    geo: &GeoDb,
    events: &[ReplayLogin],
    threads: usize,
    arm: &str,
    opts: &ServeOptions,
    clean: &[ShardResult],
) -> Result<ServeRun, Failure> {
    let (mut run, results) =
        measure(geo, events, threads, arm, |geo, shard| replay_shard_resilient(geo, shard, opts))?;
    let mut stats = ReplayStats::default();
    let mut breakers = BreakerTransitions::default();
    let mut deadline_downgrades = 0u64;
    let mut diverged = 0u64;
    for (shard, result) in results.iter().enumerate() {
        stats.merge(&result.stats);
        breakers.merge(&result.breakers);
        deadline_downgrades += result.deadline_downgrades;
        diverged += result
            .decisions
            .iter()
            .zip(&clean[shard].decisions)
            .filter(|(faulted, clean)| faulted != clean)
            .count() as u64;
    }
    run.availability = Some(ServeAvailability {
        fault_plan: opts.faults.to_string(),
        shed_policy: opts.shed_policy.name().to_string(),
        deadline_ns: opts.deadline_ns,
        queue_cap: opts.queue_cap as u64,
        events_scored: stats.scored,
        events_shed: stats.shed,
        shed_rate: stats.shed_rate(),
        degraded_events: stats.degraded_events,
        degraded_geo: stats.degraded_by_source[2],
        degraded_ip_cache: stats.degraded_by_source[1],
        degraded_history: stats.degraded_by_source[0],
        deadline_downgrades,
        cache_wipes: stats.cache_wipes,
        breaker_opened: breakers.opened,
        breaker_half_opened: breakers.half_opened,
        breaker_closed: breakers.closed,
        peak_queue_depth: stats.peak_queue_depth,
        divergence_from_clean: if events.is_empty() {
            0.0
        } else {
            diverged as f64 / events.len() as f64
        },
        diverged_events: diverged,
    });
    Ok(run)
}

/// Write `contents` to `path`, absorbing transient I/O errors with the
/// workspace's bounded-backoff retry policy.
fn write_artifact(path: &str, contents: &str) -> Result<(), Failure> {
    RetryPolicy::default()
        .run(|| std::fs::write(path, contents.as_bytes()))
        .map_err(|e| Failure::Runtime(format!("writing {path}: {e}")))
}

fn usage(message: String) -> Failure {
    UsageError(message).into()
}

fn run(args: &[String]) -> Result<(), Failure> {
    let smoke = cli::flag(args, "--smoke");
    let seed = cli::value::<u64>(args, "--seed")?.unwrap_or(0x5E12_E014);
    let threads = match cli::value_list::<usize>(args, "--threads")? {
        Some(list) => list,
        None if smoke => vec![1, 2],
        None => vec![1, 4, 8],
    };
    if threads.contains(&0) {
        return Err(usage("--threads values must be >= 1".to_string()));
    }
    let out_path =
        cli::value::<String>(args, "--out")?.unwrap_or_else(|| "BENCH_serve.json".to_string());
    let log_in = cli::value::<String>(args, "--log-in")?;
    let log_out = cli::value::<String>(args, "--log-out")?;
    if log_in.is_some() && log_out.is_some() {
        return Err(usage("--log-out would just copy --log-in back out; pick one".to_string()));
    }
    let deadline_ns = cli::value::<u64>(args, "--deadline-ns")?.unwrap_or(DEFAULT_DEADLINE_NS);
    if deadline_ns == 0 {
        return Err(usage("--deadline-ns must be >= 1".to_string()));
    }
    let queue_cap = cli::value::<usize>(args, "--queue-cap")?.unwrap_or(DEFAULT_QUEUE_CAP);
    if queue_cap == 0 {
        return Err(usage("--queue-cap must be >= 1".to_string()));
    }
    let shed_policy = match cli::value::<String>(args, "--shed-policy")? {
        Some(name) => name.parse::<ShedPolicy>().map_err(usage)?,
        None => ShedPolicy::default(),
    };
    let fault_spec = cli::value::<String>(args, "--fault-plan")?;

    let geo = GeoDb::new();
    let (stream_seed, users, days, events) = if let Some(path) = log_in {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| Failure::Runtime(format!("reading {path}: {e}")))?;
        let log = ReplayLog::from_json(&json)
            .map_err(|e| Failure::Runtime(format!("parsing {path}: {e}")))?;
        eprintln!("loaded {} events from {path}", log.events.len());
        (log.seed, 0, 0, log.events)
    } else {
        let mut cfg = if smoke {
            WorkloadConfig::small(seed)
        } else {
            WorkloadConfig {
                users: 5_000,
                days: 10,
                logins_per_user_day: 2,
                wrong_password_rate: 0.03,
                travel_rate: 0.02,
                attack_rate: 0.01,
                seed,
            }
        };
        if let Some(u) = cli::value::<u32>(args, "--users")? {
            cfg.users = u;
        }
        if let Some(d) = cli::value::<u32>(args, "--days")? {
            cfg.days = d;
        }
        if let Some(l) = cli::value::<u32>(args, "--logins-per-user-day")? {
            cfg.logins_per_user_day = l;
        }
        if let Some(a) = cli::value::<f64>(args, "--attack-rate")? {
            cfg.attack_rate = a;
        }
        eprintln!(
            "generating workload: {} users x {} days x {} logins/day, seed {:#x} …",
            cfg.users, cfg.days, cfg.logins_per_user_day, cfg.seed
        );
        let events = replay::generate_workload(&cfg, &geo);
        if let Some(path) = log_out {
            write_artifact(&path, &ReplayLog::new(cfg.seed, events.clone()).to_json())?;
            eprintln!("wrote {path}");
        }
        (cfg.seed, cfg.users, cfg.days, events)
    };
    if events.is_empty() {
        return Err(Failure::Runtime("login stream is empty".to_string()));
    }

    // Parse fault arms against the stream we now know the length of;
    // coordinates apply to each worker's local substream, so ranges
    // past a short shard simply never fire there.
    let mut arms: Vec<ServeFaultPlan> = Vec::new();
    if let Some(spec) = &fault_spec {
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let plan = ServeFaultPlan::parse_spec(part, stream_seed, events.len() as u64)
                .map_err(usage)?;
            plan.validate(events.len() as u64).map_err(usage)?;
            arms.push(plan);
        }
    }

    let mut report = ServeReport::new(stream_seed, users, days, events.len() as u64);
    for &t in &threads {
        eprintln!("replaying {} events on {t} thread(s) [clean] …", events.len());
        let (clean_run, clean_shards) = measure(&geo, &events, t, ARM_CLEAN, replay_shard)?;
        println!(
            "threads {t:>2} [clean]: {:>12.0} logins/s   p50 {:>6.0} ns   p99 {:>7.0} ns   \
             peak state {} B   digest {:#018x}",
            clean_run.logins_per_sec,
            clean_run.p50_ns,
            clean_run.p99_ns,
            clean_run.peak_state_bytes,
            clean_run.verdict_digest
        );
        report.runs.push(clean_run);
        for plan in &arms {
            let arm = plan.to_string();
            let opts = ServeOptions { deadline_ns, queue_cap, shed_policy, faults: plan.clone() };
            eprintln!("replaying {} events on {t} thread(s) [{arm}] …", events.len());
            let run = measure_fault_arm(&geo, &events, t, &arm, &opts, &clean_shards)?;
            if smoke {
                // The chaos gate: a second replay of the same arm must
                // produce a byte-identical digest.
                let again = measure_fault_arm(&geo, &events, t, &arm, &opts, &clean_shards)?;
                if again.verdict_digest != run.verdict_digest {
                    return Err(Failure::Runtime(format!(
                        "smoke: fault arm `{arm}` at {t} thread(s) is nondeterministic: \
                         {:#018x} then {:#018x}",
                        run.verdict_digest, again.verdict_digest
                    )));
                }
            }
            #[allow(clippy::expect_used)] // fault arms always carry availability
            let avail = run.availability.as_ref().expect("fault arm availability");
            println!(
                "threads {t:>2} [{arm}]: virtual p50 {:>6.0} ns   p99 {:>7.0} ns   \
                 shed {:>5.3}   degraded {}   breakers {}/{}/{}   digest {:#018x}",
                run.p50_ns,
                run.p99_ns,
                avail.shed_rate,
                avail.degraded_events,
                avail.breaker_opened,
                avail.breaker_half_opened,
                avail.breaker_closed,
                run.verdict_digest
            );
            report.runs.push(run);
        }
    }
    write_artifact(&out_path, &report.to_json())?;
    println!("wrote {out_path}");

    if smoke {
        // Re-read what was just written: the smoke gate checks the
        // artifact on disk, not the in-memory report.
        let json = std::fs::read_to_string(&out_path)
            .map_err(|e| Failure::Runtime(format!("re-reading {out_path}: {e}")))?;
        let back = ServeReport::from_json(&json)
            .map_err(|e| Failure::Runtime(format!("re-parsing {out_path}: {e}")))?;
        let expected = threads.len() * (1 + arms.len());
        if back.runs.len() != expected {
            return Err(Failure::Runtime(format!(
                "smoke: expected {expected} runs in {out_path}, found {}",
                back.runs.len()
            )));
        }
        for run in &back.runs {
            if run.events != back.events {
                return Err(Failure::Runtime(format!(
                    "smoke: run `{}` at {} thread(s) replayed {} of {} events",
                    run.arm, run.threads, run.events, back.events
                )));
            }
            if run.arm == ARM_CLEAN {
                if !run.logins_per_sec.is_finite() || run.logins_per_sec <= 0.0 {
                    return Err(Failure::Runtime(format!(
                        "smoke: zero throughput at {} thread(s)",
                        run.threads
                    )));
                }
                continue;
            }
            let Some(avail) = &run.availability else {
                return Err(Failure::Runtime(format!(
                    "smoke: fault arm `{}` is missing its availability block",
                    run.arm
                )));
            };
            if avail.events_scored + avail.events_shed != run.events {
                return Err(Failure::Runtime(format!(
                    "smoke: fault arm `{}` lost events: {} scored + {} shed != {}",
                    run.arm, avail.events_scored, avail.events_shed, run.events
                )));
            }
            if avail.shed_rate > SMOKE_MAX_SHED_RATE {
                return Err(Failure::Runtime(format!(
                    "smoke: fault arm `{}` shed {:.3} of the stream (cap {SMOKE_MAX_SHED_RATE})",
                    run.arm, avail.shed_rate
                )));
            }
        }
        println!(
            "serve smoke OK: {} events, {} thread configs, {} fault arm(s)",
            back.events,
            threads.len(),
            arms.len()
        );
    }
    Ok(())
}
