//! Figure 4 — TLDs of phished addresses.
//!
//! §4.2: "the vast majority (> 99%) of the emails address phished come
//! from .edu domains", explained by commodity spam filtering on
//! self-hosted (university) domains letting ~10× more lure mail
//! through. In our generative model the skew *emerges* from directory
//! harvesting × delivery thinning (see `mhw_phishkit::campaign`).

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{bar_chart, Breakdown, Comparison, ComparisonTable};

/// Structured Figure 4 measurement: TLD mix of submitted (phished)
/// addresses.
#[derive(Debug, Clone)]
pub struct Fig4Measurement {
    /// Phished-address TLDs, counted.
    pub tlds: Breakdown,
}

impl Fig4Measurement {
    /// `.edu`'s share of phished addresses (the paper's ">99%").
    pub fn edu_fraction(&self) -> f64 {
        self.tlds.fraction_of("edu")
    }
}

/// Extract the Figure 4 measurement from the form submissions.
pub fn measure(ctx: &Context) -> Fig4Measurement {
    let mut tlds = Breakdown::new();
    for subs in &ctx.forms.submissions {
        for s in subs {
            tlds.add(s.victim.address.tld().to_string());
        }
    }
    Fig4Measurement { tlds }
}

/// Run the Figure 4 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let tlds = &m.tlds;
    let edu_frac = m.edu_fraction();

    let mut table = ComparisonTable::new("Figure 4 — phished-address TLDs");
    table.push(Comparison::new(
        ".edu share of phished addresses",
        ">99%",
        crate::context::pct(edu_frac),
        edu_frac > 0.98,
        "directory harvesting × spam-filter asymmetry",
    ));
    table.push(Comparison::new(
        "non-.edu tail exists",
        "com, net, org, country codes…",
        format!("{} other TLDs", tlds.distinct().saturating_sub(1)),
        tlds.distinct() > 1,
        "Figure 4's log-scale tail",
    ));

    let rendering = format!(
        "Phished addresses by TLD ({} submissions):\n{}",
        tlds.total(),
        bar_chart(tlds, 40)
    );
    ExperimentResult { table, rendering }
}
