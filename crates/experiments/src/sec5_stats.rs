//! §5 headline statistics: the manual-hijacking rate, profiling
//! behaviour, exploitation volume and the contact-risk multiplier.

use crate::context::{Context, ExperimentResult, Scale};
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_core::{Ecosystem, ScenarioBuilder};
use mhw_mailsys::MailEventKind;
use mhw_mailsys::Folder;
use mhw_types::{SimDuration, DAY};
use std::collections::HashSet;

/// The §3 rate experiment: a *realistic-volume* scenario (the main runs
/// crank attack volume for sample size; this one does not).
fn hijack_rate_per_million_user_days(ctx: &Context) -> f64 {
    let (users, days, lures) = match ctx.scale {
        Scale::Quick => (4000, 10, 0.006),
        Scale::Full => (40_000, 30, 0.002),
    };
    let eco = ScenarioBuilder::measurement(ctx.seed ^ 0x9a7e)
        .days(days)
        .lures_per_user_day(lures)
        .population(users)
        .configure(|c| c.population.seed_mailboxes = false) // rate needs logins only
        .run();
    let incidents = eco.real_incidents().count() as f64;
    incidents / (users as f64 * days as f64) * 1.0e6
}

/// Structured §5 measurement: exploitation statistics derivable from
/// the main world alone. The hijack-rate and contact-cohort numbers
/// need their own realistic-volume worlds and stay in [`run`].
#[derive(Debug, Clone)]
pub struct Sec5Measurement {
    /// Mean minutes from login to the exploit/abandon decision (the
    /// paper's 3 minutes).
    pub mean_profiling_min: f64,
    /// Fraction of logged-in sessions opening Starred (paper: 0.16).
    pub starred_frac: f64,
    /// Fraction of logged-in sessions opening Drafts (paper: 0.11).
    pub drafts_frac: f64,
    /// Fraction of logged-in sessions opening Sent (paper: 0.05).
    pub sent_frac: f64,
    /// Fraction of completed exploitations sending ≤5 messages (paper:
    /// 0.65).
    pub small_batch_frac: f64,
    /// Fraction of exploitations that were customized scams (paper:
    /// ≈0.06).
    pub custom_frac: f64,
    /// Phishing's share of hijack-sent messages (paper: 0.35).
    pub phishing_share: f64,
}

/// Extract the §5 measurement from a finished world.
pub fn measure_world(eco: &Ecosystem) -> Sec5Measurement {
    let logged_in: Vec<_> = eco.sessions().iter().filter(|s| s.logged_in).collect();
    let n = logged_in.len().max(1) as f64;
    let mean_profiling_min =
        logged_in.iter().map(|s| s.profiling_seconds as f64 / 60.0).sum::<f64>() / n;
    let folder_frac = |folder: Folder| {
        logged_in.iter().filter(|s| s.folders_opened.contains(&folder)).count() as f64 / n
    };
    let exploited: Vec<_> = eco.sessions().iter().filter(|s| s.exploited).collect();
    let completed: Vec<_> = exploited.iter().filter(|s| !s.interrupted).collect();
    let small_batch_frac = completed.iter().filter(|s| s.messages_sent <= 5).count() as f64
        / completed.len().max(1) as f64;
    let custom_frac = exploited
        .iter()
        .filter(|s| s.exploit_kind == Some(mhw_adversary::ExploitKind::CustomScam))
        .count() as f64
        / exploited.len().max(1) as f64;
    let (phish, scam) = exploited.iter().fold((0u32, 0u32), |(p, s), r| {
        (p + r.phishing_messages, s + r.scam_messages)
    });
    Sec5Measurement {
        mean_profiling_min,
        starred_frac: folder_frac(Folder::Starred),
        drafts_frac: folder_frac(Folder::Drafts),
        sent_frac: folder_frac(Folder::Sent),
        small_batch_frac,
        custom_frac,
        phishing_share: phish as f64 / (phish + scam).max(1) as f64,
    }
}

/// Extract the §5 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Sec5Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the §5 experiment: measurement, companion-world rate/cohort
/// scenarios, and paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let eco = &ctx.eco_2012;
    let m = measure(ctx);
    let mut table = ComparisonTable::new("§5 — exploitation statistics");

    // §3: ~9 manual hijackings per million active users per day.
    let rate = hijack_rate_per_million_user_days(ctx);
    let rate_ok = match ctx.scale {
        // Quick runs cover too few user-days for a stable estimate of a
        // ~1e-5 event rate; accept the right order of magnitude.
        Scale::Quick => rate <= 150.0,
        Scale::Full => (1.0..=30.0).contains(&rate),
    };
    table.push(Comparison::new(
        "manual hijackings / M active users / day",
        "≈9",
        format!("{rate:.1}"),
        rate_ok,
        "realistic-volume scenario; order-of-magnitude match",
    ));

    // §5.2: 3-minute value assessment.
    let logged_in: Vec<_> = eco.sessions().iter().filter(|s| s.logged_in).collect();
    let mean_profiling_min = m.mean_profiling_min;
    table.push(Comparison::new(
        "mean account value assessment",
        "3 min",
        format!("{mean_profiling_min:.1} min"),
        (2.0..=5.0).contains(&mean_profiling_min),
        "time from login to exploit/abandon decision",
    ));

    // §5.2: folder-view probabilities.
    for (folder, paper, frac) in [
        (Folder::Starred, 0.16, m.starred_frac),
        (Folder::Drafts, 0.11, m.drafts_frac),
        (Folder::Sent, 0.05, m.sent_frac),
    ] {
        table.push(crate::context::frac_row(
            &format!("sessions opening {folder:?}"),
            paper,
            frac,
            ctx.tol(0.06, 0.12),
        ));
    }

    // §5.2: some accounts are deemed not valuable and abandoned.
    let abandoned = logged_in.iter().filter(|s| !s.exploited && !s.interrupted).count();
    table.push(Comparison::new(
        "hijackers abandon low-value accounts",
        "a meaningful fraction",
        crate::context::pct(abandoned as f64 / logged_in.len().max(1) as f64),
        abandoned > 0,
        "value threshold after profiling",
    ));

    // §5.3: 65% of victims receive ≤5 messages (measured on sessions
    // the defender did not interrupt, like the paper's 575 completed
    // exploitation cases).
    let exploited: Vec<_> = eco.sessions().iter().filter(|s| s.exploited).collect();
    table.push(crate::context::frac_row(
        "exploited accounts sending ≤5 messages",
        0.65,
        m.small_batch_frac,
        ctx.tol(0.10, 0.18),
    ));

    // §5.3: ~6% customized scams with <10 recipients.
    table.push(crate::context::frac_row(
        "customized (<10 recipient) exploitation",
        0.06,
        m.custom_frac,
        ctx.tol(0.05, 0.08),
    ));

    // §5.3: 35% of hijack-sent messages are phishing, 65% scams.
    table.push(crate::context::frac_row(
        "phishing share of hijack-sent messages",
        0.35,
        m.phishing_share,
        ctx.tol(0.10, 0.18),
    ));

    // §5.3: day-of-hijack traffic deltas.
    let (volume_ratio, recipient_ratio) = hijack_day_deltas(eco);
    table.push(Comparison::new(
        "day-of-hijack outgoing volume",
        "+25% vs previous day",
        format!("{volume_ratio:+.0}%"),
        volume_ratio > 0.0,
        "modest volume rise (shape; our organic baseline is lighter than Gmail's)",
    ));
    table.push(Comparison::new(
        "day-of-hijack distinct recipients",
        "+630% vs previous day",
        format!("{recipient_ratio:+.0}%"),
        recipient_ratio > 200.0 && recipient_ratio > 4.0 * volume_ratio.max(1.0),
        "recipients explode while volume only rises — the paper's signature",
    ));

    // §5.3: hijacked-contact cohort vs random cohort. The paper's 36×
    // rides on a tiny broadcast baseline (9 hijacks/M users/day); the
    // main runs crank broadcast volume for sample size, which floods
    // the baseline, so the cohort experiment runs its own
    // realistic-baseline world.
    let multiplier = {
        let (users, days, lures) = match ctx.scale {
            Scale::Quick => (6000, 20, 0.04),
            Scale::Full => (12_000, 25, 0.03),
        };
        let cohort_eco = ScenarioBuilder::measurement(ctx.seed ^ 0xc0137)
            .days(days)
            .lures_per_user_day(lures)
            .population(users)
            .run();
        contact_risk_multiplier(&cohort_eco)
    };
    table.push(Comparison::new(
        "hijack risk of victims' contacts vs random users",
        "36×",
        format!("{multiplier:.0}×"),
        multiplier >= 4.0,
        "contact phishing concentrates risk; realistic-baseline scenario",
    ));

    let rendering = format!(
        "{} sessions ({} logged in, {} exploited); measured rate {rate:.1}/M/day\n",
        eco.sessions().len(),
        logged_in.len(),
        exploited.len(),
    );
    ExperimentResult { table, rendering }
}

/// Outgoing volume and recipient deltas, day-of-hijack vs the previous
/// day, aggregated over exploited victims (§5.3's 25% / 630%).
fn hijack_day_deltas(eco: &Ecosystem) -> (f64, f64) {
    let mut vol_before = 0u64;
    let mut vol_day = 0u64;
    let mut rcpt_before = 0u64;
    let mut rcpt_day = 0u64;
    for inc in eco.real_incidents() {
        let report = &eco.sessions()[inc.session];
        if !report.exploited {
            continue;
        }
        let day = inc.hijack_start.day_index();
        for e in eco.provider.log() {
            if e.account != inc.account {
                continue;
            }
            if let MailEventKind::Sent { recipients, .. } = &e.kind {
                if e.at.day_index() == day {
                    vol_day += 1;
                    rcpt_day += *recipients as u64;
                } else if day > 0 && e.at.day_index() == day - 1 {
                    vol_before += 1;
                    rcpt_before += *recipients as u64;
                }
            }
        }
    }
    let volume_ratio = (vol_day as f64 / vol_before.max(1) as f64 - 1.0) * 100.0;
    let recipient_ratio = (rcpt_day as f64 / rcpt_before.max(1) as f64 - 1.0) * 100.0;
    (volume_ratio, recipient_ratio)
}

/// The §5.3 cohort experiment: for each hijacked account, follow its
/// contacts for a window after the hijack and compare their hijack
/// incidence against the population baseline — the paper sampled
/// contacts of hijacked accounts and random 7-day-active users and
/// measured manual hijackings "over the next 60 days" (36× ratio).
fn contact_risk_multiplier(eco: &Ecosystem) -> f64 {
    let window_days = 7u64.min(eco.config.days / 3).max(2);
    let window = SimDuration::from_days(window_days);
    let run_end = mhw_types::SimTime::from_secs(eco.config.days * DAY);

    // All hijack events sorted by time, deduped per account.
    let mut events: Vec<(mhw_types::SimTime, mhw_types::AccountId)> = eco
        .real_incidents()
        .map(|i| (i.hijack_start, i.account))
        .collect();
    events.sort();
    let mut first_hijack: std::collections::HashMap<mhw_types::AccountId, mhw_types::SimTime> =
        Default::default();
    for (t, a) in &events {
        first_hijack.entry(*a).or_insert(*t);
    }

    let mut member_days = 0.0f64;
    let mut hits = 0.0f64;
    let mut seeds = 0usize;
    for inc in eco.real_incidents() {
        let t0 = inc.hijack_start;
        if t0.plus(window) > run_end {
            continue; // window would be truncated
        }
        seeds += 1;
        let mut cohort: HashSet<mhw_types::AccountId> = HashSet::new();
        for c in eco.population.graph.contacts_of(inc.account) {
            // Only contacts not already hijacked by t0.
            if first_hijack.get(c).map(|t| *t > t0).unwrap_or(true) {
                cohort.insert(*c);
            }
        }
        for member in cohort {
            member_days += window_days as f64;
            if let Some(t) = first_hijack.get(&member) {
                if *t > t0 && *t <= t0.plus(window) {
                    hits += 1.0;
                }
            }
        }
    }
    if seeds == 0 || member_days == 0.0 {
        return 0.0;
    }
    let contact_rate = hits / member_days; // per member-day
    let baseline_rate =
        first_hijack.len() as f64 / (eco.population.len() as f64 * eco.config.days as f64);
    if baseline_rate == 0.0 {
        return 0.0;
    }
    contact_rate / baseline_rate
}
