//! Figure 7 — speed of compromised-account access.
//!
//! "We found that 20% of the decoy accounts were accessed within 30
//! minutes of credential submission, and 50% within 7 hours … not all
//! of the decoy accounts were accessed, possibly due to the suspension
//! of either the phishing website or the email account used by the
//! hijacker to collect credentials."

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, Ecdf};
use mhw_types::SimDuration;

/// Structured Figure 7 measurement: how fast decoy accounts were
/// accessed after their credentials were phished.
#[derive(Debug, Clone)]
pub struct Fig7Measurement {
    /// Fraction of all decoys accessed within 30 minutes.
    pub within_30m: f64,
    /// Fraction of all decoys accessed within 7 hours.
    pub within_7h: f64,
    /// Fraction of decoys never accessed at all.
    pub never: f64,
    /// Access delay in hours for each accessed decoy, unsorted.
    pub delays_hours: Vec<f64>,
}

/// Extract the Figure 7 measurement from the decoy-injection report.
pub fn measure(ctx: &Context) -> Fig7Measurement {
    let report = &ctx.decoys;
    Fig7Measurement {
        within_30m: report.fraction_accessed_within(SimDuration::from_mins(30)),
        within_7h: report.fraction_accessed_within(SimDuration::from_hours(7)),
        never: report.fraction_never_accessed(),
        delays_hours: report.delays_hours(),
    }
}

/// Run the Figure 7 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let report = &ctx.decoys;
    let m = measure(ctx);
    let (within_30m, within_7h, never) = (m.within_30m, m.within_7h, m.never);

    let mut table = ComparisonTable::new("Figure 7 — decoy access speed");
    table.push(crate::context::frac_row(
        "decoys accessed within 30 min",
        0.20,
        within_30m,
        ctx.tol(0.08, 0.15),
    ));
    table.push(crate::context::frac_row(
        "decoys accessed within 7 h",
        0.50,
        within_7h,
        ctx.tol(0.12, 0.20),
    ));
    table.push(Comparison::new(
        "some decoys never accessed",
        "a fraction (suspensions)",
        crate::context::pct(never),
        never > 0.0 && never < 0.6,
        "dropbox suspension / takedown losses",
    ));

    // CDF rendering at the paper's figure resolution.
    let delays = m.delays_hours;
    let mut rendering = format!(
        "{} decoys; {} accessed ({:.0}% never accessed)\nCDF of access delay:\n",
        report.outcomes.len(),
        delays.len(),
        never * 100.0
    );
    if !delays.is_empty() {
        let ecdf = Ecdf::new(delays);
        for (x, label) in [
            (0.5, "30 min"),
            (1.0, "1 h"),
            (3.0, "3 h"),
            (7.0, "7 h"),
            (12.0, "12 h"),
            (24.0, "24 h"),
            (48.0, "48 h"),
        ] {
            // Express as fraction of *all* decoys, like the figure.
            let frac = ecdf.fraction_at_or_below(x) * (1.0 - never);
            rendering.push_str(&format!(
                "  ≤ {label:<7} {:<50} {:5.1}%\n",
                "#".repeat((frac * 50.0) as usize),
                frac * 100.0
            ));
        }
    }
    ExperimentResult { table, rendering }
}
