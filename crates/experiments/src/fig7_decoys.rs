//! Figure 7 — speed of compromised-account access.
//!
//! "We found that 20% of the decoy accounts were accessed within 30
//! minutes of credential submission, and 50% within 7 hours … not all
//! of the decoy accounts were accessed, possibly due to the suspension
//! of either the phishing website or the email account used by the
//! hijacker to collect credentials."

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, Ecdf};
use mhw_types::SimDuration;

pub fn run(ctx: &Context) -> ExperimentResult {
    let report = &ctx.decoys;
    let within_30m = report.fraction_accessed_within(SimDuration::from_mins(30));
    let within_7h = report.fraction_accessed_within(SimDuration::from_hours(7));
    let never = report.fraction_never_accessed();

    let mut table = ComparisonTable::new("Figure 7 — decoy access speed");
    table.push(crate::context::frac_row(
        "decoys accessed within 30 min",
        0.20,
        within_30m,
        ctx.tol(0.08, 0.15),
    ));
    table.push(crate::context::frac_row(
        "decoys accessed within 7 h",
        0.50,
        within_7h,
        ctx.tol(0.12, 0.20),
    ));
    table.push(Comparison::new(
        "some decoys never accessed",
        "a fraction (suspensions)",
        crate::context::pct(never),
        never > 0.0 && never < 0.6,
        "dropbox suspension / takedown losses",
    ));

    // CDF rendering at the paper's figure resolution.
    let delays = report.delays_hours();
    let mut rendering = format!(
        "{} decoys; {} accessed ({:.0}% never accessed)\nCDF of access delay:\n",
        report.outcomes.len(),
        delays.len(),
        never * 100.0
    );
    if !delays.is_empty() {
        let ecdf = Ecdf::new(delays);
        for (x, label) in [
            (0.5, "30 min"),
            (1.0, "1 h"),
            (3.0, "3 h"),
            (7.0, "7 h"),
            (12.0, "12 h"),
            (24.0, "24 h"),
            (48.0, "48 h"),
        ] {
            // Express as fraction of *all* decoys, like the figure.
            let frac = ecdf.fraction_at_or_below(x) * (1.0 - never);
            rendering.push_str(&format!(
                "  ≤ {label:<7} {:<50} {:5.1}%\n",
                "#".repeat((frac * 50.0) as usize),
                frac * 100.0
            ));
        }
    }
    ExperimentResult { table, rendering }
}
