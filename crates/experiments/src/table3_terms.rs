//! Table 3 — hijacker search terms.
//!
//! Extracted from the provider activity log restricted to hijack
//! sessions (Dataset 6): the queries crews typed while assessing
//! account value. The paper's headline structure: finance terms
//! dominate overwhelmingly, `wire transfer` on top; Spanish and Chinese
//! terms appear; account-credential and content terms trail far behind.

use crate::context::{Context, ExperimentResult};
use mhw_adversary::{SearchTermModel, TermCategory};
use mhw_analysis::{bar_chart, Breakdown, Comparison, ComparisonTable};
use mhw_core::datasets::hijacker_search_queries;

/// Structured Table 3 measurement: hijacker search queries tabulated by
/// verbatim term and by category.
#[derive(Debug, Clone)]
pub struct Table3Measurement {
    /// Verbatim query strings, counted.
    pub terms: Breakdown,
    /// Queries grouped into Finance/Account/Content/Other.
    pub by_category: Breakdown,
}

impl Table3Measurement {
    /// Finance's share of all hijacker searches (the paper's ≈93%).
    pub fn finance_share(&self) -> f64 {
        self.by_category.fraction_of("Finance")
    }

    /// The single most frequent query, empty when no searches ran.
    pub fn top_term(&self) -> String {
        self.terms.top(1).first().map(|(t, _, _)| t.clone()).unwrap_or_default()
    }
}

/// Extract the Table 3 measurement from a finished world.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Table3Measurement {
    let model = SearchTermModel::new();
    let queries = hijacker_search_queries(eco);
    let mut terms = Breakdown::new();
    let mut by_category = Breakdown::new();
    for q in &queries {
        terms.add(q.clone());
        match model.category_of(q) {
            Some(TermCategory::Finance) => by_category.add("Finance"),
            Some(TermCategory::Account) => by_category.add("Account"),
            Some(TermCategory::Content) => by_category.add("Content"),
            None => by_category.add("Other"),
        }
    }
    Table3Measurement { terms, by_category }
}

/// Extract the Table 3 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Table3Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the Table 3 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let (terms, by_category) = (&m.terms, &m.by_category);

    let mut table = ComparisonTable::new("Table 3 — hijacker search terms");
    let finance_share = m.finance_share();
    table.push(crate::context::frac_row(
        "finance share of hijacker searches",
        0.93, // Table 3 column mass: finance ≈ 55.3 of 59.5 total
        finance_share,
        ctx.tol(0.06, 0.12),
    ));
    let top = terms.top(1);
    let top_term = top.first().map(|(t, _, _)| t.clone()).unwrap_or_default();
    table.push(Comparison::new(
        "most frequent term",
        "wire transfer",
        &top_term,
        top_term == "wire transfer",
        "Table 3 top row (14.4%)",
    ));
    let has_spanish = terms.count_of("transferencia") + terms.count_of("banco") > 0;
    let has_chinese = terms.count_of("账单") > 0;
    table.push(Comparison::new(
        "non-English terms present",
        "Spanish + Chinese",
        format!(
            "Spanish: {}, Chinese: {}",
            if has_spanish { "yes" } else { "no" },
            if has_chinese { "yes" } else { "no" }
        ),
        has_spanish && has_chinese,
        "§5.2/§7 language consistency",
    ));
    // The paper's operator queries appear verbatim.
    let operators_seen = terms.count_of("is:starred") + terms.count_of("filename:(jpg or jpeg or png)");
    table.push(Comparison::new(
        "search operators used",
        "is:starred, filename:(…)",
        format!("{operators_seen} occurrences"),
        ctx.scale == crate::context::Scale::Quick || operators_seen > 0,
        "content-column operators",
    ));

    let rendering = format!(
        "Top hijacker search terms ({} searches total):\n{}\nBy category:\n{}",
        terms.total(),
        bar_chart(&{
            let mut top10 = Breakdown::new();
            for (t, c, _) in terms.top(10) {
                top10.add_n(t, c);
            }
            top10
        }, 40),
        bar_chart(by_category, 40)
    );
    ExperimentResult { table, rendering }
}
