//! Table 2 — what phishing emails and pages target.
//!
//! The paper manually curated 100 phishing emails out of 5,000
//! user-reported messages (most reports are bulk spam, not phishing)
//! and reviewed 100 SafeBrowsing-detected pages, categorizing each by
//! the credential type it asks for. We reproduce the *pipeline*: build
//! the reported-message corpus (spam + phishing mixture), curate it
//! down to actual phishing by manual-review simulation, sample 100, and
//! tabulate; pages come from the form-campaign batch.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{bar_chart, Breakdown, ComparisonTable};
use mhw_phishkit::targets::{sample_structure, LureStructure, TargetMix};
use mhw_simclock::SimRng;
use mhw_types::AccountCategory;

/// One reported email in the synthetic corpus.
struct ReportedEmail {
    is_phishing: bool,
    category: AccountCategory,
    structure: LureStructure,
}

/// Build the Dataset-1 corpus: 5000 user-reported messages of which a
/// minority are actual phishing (the paper stresses that "computers and
/// humans alike are imprecise at distinguishing phishing … from scams
/// and other bulk spam").
fn reported_corpus(n: usize, rng: &mut SimRng) -> Vec<ReportedEmail> {
    let mix = TargetMix::email_lures();
    (0..n)
        .map(|_| {
            let is_phishing = rng.chance(0.04); // most reports are spam
            ReportedEmail {
                is_phishing,
                category: mix.sample(rng),
                structure: sample_structure(rng),
            }
        })
        .collect()
}

/// Structured Table 2 measurement: target-category mixes of the curated
/// email sample and the reviewed page sample.
#[derive(Debug, Clone)]
pub struct Table2Measurement {
    /// Curated phishing emails by target category.
    pub emails: Breakdown,
    /// Reviewed phishing pages by target category.
    pub pages: Breakdown,
    /// Fraction of curated emails carrying a URL (the paper's 62%).
    pub url_fraction: f64,
}

/// Extract the Table 2 measurement: build the 5000-message reported
/// corpus, curate it down to 100 phishing emails, and tabulate
/// alongside 100 reviewed pages from the form-campaign batch.
pub fn measure(ctx: &Context) -> Table2Measurement {
    let mut rng = SimRng::stream(ctx.seed, "table2");
    // Curate: manual review keeps only true phishing; take 100.
    let corpus = reported_corpus(5000, &mut rng);
    let curated: Vec<&ReportedEmail> =
        corpus.iter().filter(|e| e.is_phishing).take(100).collect();

    let mut emails = Breakdown::new();
    let mut with_url = 0usize;
    for e in &curated {
        emails.add(e.category.label());
        if e.structure == LureStructure::LinkToPage {
            with_url += 1;
        }
    }

    // Pages: the reviewed sample from the form-campaign batch.
    let mut pages = Breakdown::new();
    for p in ctx.forms.pages.iter().take(100) {
        pages.add(p.category.label());
    }
    Table2Measurement {
        emails,
        pages,
        url_fraction: with_url as f64 / curated.len().max(1) as f64,
    }
}

/// Run the Table 2 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let (emails, pages) = (&m.emails, &m.pages);

    let mut table = ComparisonTable::new("Table 2 — phishing targets");
    // n=100 curated samples ⇒ binomial sd ≈ 3.5pp; ±8pp ≈ a 95% band,
    // the same sampling noise the paper's own 100-email sample carries.
    let tol = ctx.tol(0.08, 0.12);
    let paper_emails = [
        (AccountCategory::Mail, 0.35),
        (AccountCategory::Bank, 0.21),
        (AccountCategory::AppStore, 0.16),
        (AccountCategory::SocialNetwork, 0.14),
        (AccountCategory::Other, 0.14),
    ];
    for (cat, paper) in paper_emails {
        table.push(crate::context::frac_row(
            &format!("emails targeting {}", cat.label()),
            paper,
            emails.fraction_of(cat.label()),
            tol,
        ));
    }
    let paper_pages = [
        (AccountCategory::Mail, 27.0 / 99.0),
        (AccountCategory::Bank, 25.0 / 99.0),
        (AccountCategory::AppStore, 17.0 / 99.0),
        (AccountCategory::SocialNetwork, 15.0 / 99.0),
        (AccountCategory::Other, 15.0 / 99.0),
    ];
    for (cat, paper) in paper_pages {
        table.push(crate::context::frac_row(
            &format!("pages targeting {}", cat.label()),
            paper,
            pages.fraction_of(cat.label()),
            tol,
        ));
    }
    // §4.1: 62/100 curated emails carried URLs.
    table.push(crate::context::frac_row(
        "curated emails containing a URL",
        0.62,
        m.url_fraction,
        ctx.tol(0.10, 0.15),
    ));

    let rendering = format!(
        "Curated phishing emails by target:\n{}\nReviewed phishing pages by target:\n{}",
        bar_chart(emails, 40),
        bar_chart(pages, 40)
    );
    ExperimentResult { table, rendering }
}
