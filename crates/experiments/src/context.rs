//! Shared experiment context: the finished simulation runs every
//! experiment reads from.

use mhw_adversary::Era;
use mhw_analysis::ComparisonTable;
use mhw_core::{
    run_decoy_experiment, run_form_campaigns, DecoyReport, Ecosystem, EngineError, FaultPlan,
    FormCampaignOutput, ScenarioBuilder, ScenarioConfig, ShardedEngine, WorkerPool,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// Run scale: `Quick` for tests (seconds), `Full` for the repro binary
/// (paper-scale sample sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small worlds, wide tolerance bands — the test battery.
    Quick,
    /// Paper-scale sample sizes — the default `repro` run.
    Full,
}

/// The output of one experiment.
pub struct ExperimentResult {
    /// Paper-vs-measured rows (EXPERIMENTS.md).
    pub table: ComparisonTable,
    /// Plain-text rendering of the figure/table itself.
    pub rendering: String,
}

/// All the simulation runs the experiments share.
pub struct Context {
    /// Scale the runs were built at (drives tolerance bands).
    pub scale: Scale,
    /// RNG seed every run derives from.
    pub seed: u64,
    /// The main 2012-era measurement run.
    pub eco_2012: Ecosystem,
    /// The 2011-era run for the §5.4 longitudinal comparison.
    pub eco_2011: Ecosystem,
    /// A 2012 run during the brief period crews experimented with the
    /// 2FA-lockout tactic at full intensity (Figure 12's dataset was
    /// collected exactly then).
    pub eco_lockout: Ecosystem,
    /// The §4.2 hosted-form campaign batch (Figures 3–6).
    pub forms: FormCampaignOutput,
    /// The §5.1 decoy experiment (Figure 7) and its world.
    pub decoy_eco: Ecosystem,
    /// The decoy-injection outcomes measured on [`Context::decoy_eco`].
    pub decoys: DecoyReport,
}

/// Crash-safety and world-forking options for the context's main
/// (2012-era) run, wired through from the `repro` binary's
/// `--checkpoint-dir` / `--checkpoint-every` / `--resume` /
/// `--fault-plan` / `--snapshot-at` / `--snapshot-out` / `--fork-from`
/// / `--fork-seed` flags.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Write day-barrier checkpoints: `(directory, every N days)`.
    pub checkpoint: Option<(PathBuf, u64)>,
    /// Resume the main run from this checkpoint file.
    pub resume: Option<PathBuf>,
    /// Deterministic fault plan injected into the main run.
    pub faults: Option<FaultPlan>,
    /// Freeze the main run's fork point `(after day, record path)`.
    /// The run still completes — a same-seed fork finishes the
    /// remaining days, which the engine guarantees is byte-identical
    /// to never snapshotting at all.
    pub snapshot: Option<(u64, PathBuf)>,
    /// Rebuild the recorded prefix, digest-verify the fork point
    /// against this record, and run the main world as a continuation.
    pub fork_from: Option<PathBuf>,
    /// Divergent continuation seed (with [`EngineOptions::fork_from`]).
    pub fork_seed: Option<u64>,
}

impl EngineOptions {
    /// True when no crash-safety or forking machinery was requested.
    pub fn is_default(&self) -> bool {
        self.checkpoint.is_none()
            && self.resume.is_none()
            && self.faults.is_none()
            && self.snapshot.is_none()
            && self.fork_from.is_none()
            && self.fork_seed.is_none()
    }
}

impl Context {
    /// Build and run everything, using every core the machine offers
    /// for the independent worlds. Panics on failure (test
    /// convenience); binaries use
    /// [`try_with_options`](Self::try_with_options).
    pub fn new(scale: Scale, seed: u64) -> Self {
        Context::with_workers(scale, seed, mhw_core::default_workers())
    }

    /// Like [`new`](Self::new) with an explicit worker cap; panics on
    /// failure.
    pub fn with_workers(scale: Scale, seed: u64, workers: usize) -> Self {
        match Context::try_with_options(scale, seed, workers, &EngineOptions::default()) {
            Ok(ctx) => ctx,
            Err(e) => panic!("context build failed: {e}"),
        }
    }

    /// Build and run everything, spreading the five independent
    /// simulation runs (three worlds, the form batch, the decoy
    /// experiment) over up to `workers` threads. Each run is
    /// deterministic in its own `(config, seed)` alone, so the worker
    /// count never changes any experiment's output.
    ///
    /// With non-default [`EngineOptions`] the main 2012-era world runs
    /// through a single-shard [`ShardedEngine`] so checkpointing,
    /// resume and fault injection apply to it; the single-shard engine
    /// produces byte-identical output to the plain path (the market is
    /// disabled at this scale), so results never depend on which route
    /// was taken.
    ///
    /// # Errors
    ///
    /// Any [`EngineError`] from the main run (checkpoint I/O, corrupt
    /// or mismatched resume file, injected or organic shard panic). A
    /// panic in one of the other four runs surfaces as
    /// [`EngineError::ShardPanicked`] with the job index in `shard`.
    // The slot `expect`s below are claim-protocol invariants, not error
    // handling: job i fills slot i exactly once, and a panicking job
    // returns through the JobPanic branch before any slot is taken.
    #[allow(clippy::expect_used)]
    pub fn try_with_options(
        scale: Scale,
        seed: u64,
        workers: usize,
        opts: &EngineOptions,
    ) -> Result<Self, EngineError> {
        let (base, n_forms, n_decoys): (fn(u64) -> ScenarioConfig, usize, usize) = match scale {
            Scale::Quick => (ScenarioConfig::small_test as fn(u64) -> _, 30, 60),
            Scale::Full => (ScenarioConfig::measurement as fn(u64) -> _, 100, 200),
        };

        // The checkpointable path for the main world runs first, on the
        // coordinator: crash-safety work is inherently serial anyway
        // (replay, barrier verification), and doing it up front keeps
        // the pool below free of fallible jobs.
        let prebuilt_2012: Option<Ecosystem> = if opts.is_default() {
            None
        } else if let Some((day, path)) = &opts.snapshot {
            // Freeze the fork point, record it, then finish the run via
            // a same-seed fork — byte-identical to an uninterrupted run
            // (pinned by the engine's forking tests).
            let snapshot = ShardedEngine::new(base(seed), 1).snapshot_after(*day)?;
            snapshot.write_record(path)?;
            let mut shards = snapshot.fork().run()?.into_shards();
            Some(shards.pop().expect("engine configured with one shard"))
        } else if let Some(file) = &opts.fork_from {
            // Rebuild the recorded prefix, verify the fork point against
            // the record, then run the (optionally divergent)
            // continuation as the main world.
            let record = mhw_core::Checkpoint::read(file)?;
            let snapshot =
                ShardedEngine::new(base(seed), 1).snapshot_after(record.completed_days)?;
            snapshot.verify_record(&record, &file.display().to_string())?;
            let mut fork = snapshot.fork();
            if let Some(fork_seed) = opts.fork_seed {
                fork = fork.seed(fork_seed);
            }
            let mut shards = fork.run()?.into_shards();
            Some(shards.pop().expect("engine configured with one shard"))
        } else {
            let mut engine = ShardedEngine::new(base(seed), 1);
            if let Some((dir, every)) = &opts.checkpoint {
                engine = engine.checkpoint_to(dir.clone(), *every);
            }
            if let Some(file) = &opts.resume {
                engine = engine.resume_from(file.clone());
            }
            if let Some(plan) = &opts.faults {
                engine = engine.fault_plan(plan.clone());
            }
            let mut shards = engine.run()?.into_shards();
            Some(shards.pop().expect("engine configured with one shard"))
        };

        // One slot per independent run; job index i fills slot i, so
        // the pool's work stealing is invisible to the results.
        let eco_2012 = Mutex::new(prebuilt_2012);
        let eco_2011 = Mutex::new(None);
        let eco_lockout = Mutex::new(None);
        let forms = Mutex::new(None);
        let decoy = Mutex::new(None);
        // Five independent jobs, capped at the hardware's parallelism —
        // extra CPU-bound threads on fewer cores only slow each other.
        let pool_result = WorkerPool::scoped(
            workers.clamp(1, 5).min(mhw_core::default_workers()),
            |pool| {
            pool.run(5, &|_worker, i| match i {
                0 => {
                    let mut slot = eco_2012.lock().expect("slot poisoned");
                    if slot.is_none() {
                        *slot = Some(ScenarioBuilder::new(base(seed)).run());
                    }
                }
                1 => {
                    let eco = ScenarioBuilder::new(base(seed ^ 0x2011)).era(Era::Y2011).run();
                    *eco_2011.lock().expect("slot poisoned") = Some(eco);
                }
                2 => {
                    // The 2FA-lockout burst: same era, tactic at full
                    // intensity.
                    let mut lockout = ScenarioBuilder::new(base(seed ^ 0x2fa));
                    if scale == Scale::Quick {
                        lockout = lockout.configure(|c| c.days = c.days.min(14));
                    }
                    let eco = lockout
                        .tweak_crews(|roster| {
                            for crew in &mut roster.crews {
                                if crew.spec.uses_2fa_lockout {
                                    crew.tactics.p_twofactor_lockout = 0.55;
                                }
                            }
                        })
                        .run();
                    *eco_lockout.lock().expect("slot poisoned") = Some(eco);
                }
                3 => {
                    let out = run_form_campaigns(n_forms, true, seed ^ 0xf0f0);
                    *forms.lock().expect("slot poisoned") = Some(out);
                }
                _ => {
                    let mut decoy_config = base(seed ^ 0xdec0);
                    let out = run_decoy_experiment(decoy_config.clone(), n_decoys, {
                        decoy_config.days = decoy_config.days.max(10);
                        (decoy_config.days / 2).max(3)
                    });
                    *decoy.lock().expect("slot poisoned") = Some(out);
                }
            })
        },
        );
        if let Err(p) = pool_result {
            return Err(EngineError::ShardPanicked {
                shard: p.index as u16,
                day: 0,
                payload: p.payload,
            });
        }

        let take = |slot: Mutex<Option<Ecosystem>>| {
            slot.into_inner().expect("slot poisoned").expect("world built")
        };
        let (decoy_eco, decoys) = decoy.into_inner().expect("slot poisoned").expect("run done");
        Ok(Context {
            scale,
            seed,
            eco_2012: take(eco_2012),
            eco_2011: take(eco_2011),
            eco_lockout: take(eco_lockout),
            forms: forms.into_inner().expect("slot poisoned").expect("run done"),
            decoy_eco,
            decoys,
        })
    }

    /// Tolerance width scaling: quick runs have smaller samples, so
    /// match bands widen.
    pub fn tol(&self, full: f64, quick: f64) -> f64 {
        match self.scale {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Format a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Convenience for building a comparison row with a |measured−paper| ≤
/// tol match rule on fractional values.
pub fn frac_row(
    metric: &str,
    paper_value: f64,
    measured_value: f64,
    tol: f64,
) -> mhw_analysis::Comparison {
    mhw_analysis::Comparison::new(
        metric,
        pct(paper_value),
        pct(measured_value),
        (measured_value - paper_value).abs() <= tol,
        format!("tolerance ±{:.0}pp", tol * 100.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = Context::new(Scale::Quick, 0xAB);
        assert!(ctx.eco_2012.stats.incidents > 0);
        assert!(ctx.eco_2011.stats.incidents > 0);
        assert!(!ctx.forms.pages.is_empty());
        assert_eq!(ctx.decoys.outcomes.len(), 60);
        assert!(ctx.tol(0.05, 0.15) > ctx.tol(0.05, 0.15) - 1.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.2091), "20.9%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn frac_row_match_rule() {
        let ok = frac_row("x", 0.20, 0.22, 0.05);
        assert!(ok.matches);
        let bad = frac_row("x", 0.20, 0.30, 0.05);
        assert!(!bad.matches);
    }
}
