//! Shared experiment context: the finished simulation runs every
//! experiment reads from.

use mhw_adversary::Era;
use mhw_analysis::ComparisonTable;
use mhw_core::{
    run_decoy_experiment, run_form_campaigns, DecoyReport, Ecosystem, FormCampaignOutput,
    ScenarioBuilder, ScenarioConfig, WorkerPool,
};
use std::sync::Mutex;

/// Run scale: `Quick` for tests (seconds), `Full` for the repro binary
/// (paper-scale sample sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

/// The output of one experiment.
pub struct ExperimentResult {
    /// Paper-vs-measured rows (EXPERIMENTS.md).
    pub table: ComparisonTable,
    /// Plain-text rendering of the figure/table itself.
    pub rendering: String,
}

/// All the simulation runs the experiments share.
pub struct Context {
    pub scale: Scale,
    pub seed: u64,
    /// The main 2012-era measurement run.
    pub eco_2012: Ecosystem,
    /// The 2011-era run for the §5.4 longitudinal comparison.
    pub eco_2011: Ecosystem,
    /// A 2012 run during the brief period crews experimented with the
    /// 2FA-lockout tactic at full intensity (Figure 12's dataset was
    /// collected exactly then).
    pub eco_lockout: Ecosystem,
    /// The §4.2 hosted-form campaign batch (Figures 3–6).
    pub forms: FormCampaignOutput,
    /// The §5.1 decoy experiment (Figure 7) and its world.
    pub decoy_eco: Ecosystem,
    pub decoys: DecoyReport,
}

impl Context {
    /// Build and run everything, using every core the machine offers
    /// for the independent worlds.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Context::with_workers(scale, seed, mhw_core::default_workers())
    }

    /// Build and run everything, spreading the five independent
    /// simulation runs (three worlds, the form batch, the decoy
    /// experiment) over up to `workers` threads. Each run is
    /// deterministic in its own `(config, seed)` alone, so the worker
    /// count never changes any experiment's output.
    pub fn with_workers(scale: Scale, seed: u64, workers: usize) -> Self {
        let (base, n_forms, n_decoys): (fn(u64) -> ScenarioConfig, usize, usize) = match scale {
            Scale::Quick => (ScenarioConfig::small_test as fn(u64) -> _, 30, 60),
            Scale::Full => (ScenarioConfig::measurement as fn(u64) -> _, 100, 200),
        };

        // One slot per independent run; job index i fills slot i, so
        // the pool's work stealing is invisible to the results.
        let eco_2012 = Mutex::new(None);
        let eco_2011 = Mutex::new(None);
        let eco_lockout = Mutex::new(None);
        let forms = Mutex::new(None);
        let decoy = Mutex::new(None);
        // Five independent jobs, capped at the hardware's parallelism —
        // extra CPU-bound threads on fewer cores only slow each other.
        WorkerPool::scoped(workers.clamp(1, 5).min(mhw_core::default_workers()), |pool| {
            pool.run(5, &|_worker, i| match i {
                0 => {
                    let eco = ScenarioBuilder::new(base(seed)).run();
                    *eco_2012.lock().expect("slot poisoned") = Some(eco);
                }
                1 => {
                    let eco = ScenarioBuilder::new(base(seed ^ 0x2011)).era(Era::Y2011).run();
                    *eco_2011.lock().expect("slot poisoned") = Some(eco);
                }
                2 => {
                    // The 2FA-lockout burst: same era, tactic at full
                    // intensity.
                    let mut lockout = ScenarioBuilder::new(base(seed ^ 0x2fa));
                    if scale == Scale::Quick {
                        lockout = lockout.configure(|c| c.days = c.days.min(14));
                    }
                    let eco = lockout
                        .tweak_crews(|roster| {
                            for crew in &mut roster.crews {
                                if crew.spec.uses_2fa_lockout {
                                    crew.tactics.p_twofactor_lockout = 0.55;
                                }
                            }
                        })
                        .run();
                    *eco_lockout.lock().expect("slot poisoned") = Some(eco);
                }
                3 => {
                    let out = run_form_campaigns(n_forms, true, seed ^ 0xf0f0);
                    *forms.lock().expect("slot poisoned") = Some(out);
                }
                _ => {
                    let mut decoy_config = base(seed ^ 0xdec0);
                    let out = run_decoy_experiment(decoy_config.clone(), n_decoys, {
                        decoy_config.days = decoy_config.days.max(10);
                        (decoy_config.days / 2).max(3)
                    });
                    *decoy.lock().expect("slot poisoned") = Some(out);
                }
            });
        });

        let take = |slot: Mutex<Option<Ecosystem>>| {
            slot.into_inner().expect("slot poisoned").expect("world built")
        };
        let (decoy_eco, decoys) = decoy.into_inner().expect("slot poisoned").expect("run done");
        Context {
            scale,
            seed,
            eco_2012: take(eco_2012),
            eco_2011: take(eco_2011),
            eco_lockout: take(eco_lockout),
            forms: forms.into_inner().expect("slot poisoned").expect("run done"),
            decoy_eco,
            decoys,
        }
    }

    /// Tolerance width scaling: quick runs have smaller samples, so
    /// match bands widen.
    pub fn tol(&self, full: f64, quick: f64) -> f64 {
        match self.scale {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Format a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Convenience for building a comparison row with a |measured−paper| ≤
/// tol match rule on fractional values.
pub fn frac_row(
    metric: &str,
    paper_value: f64,
    measured_value: f64,
    tol: f64,
) -> mhw_analysis::Comparison {
    mhw_analysis::Comparison::new(
        metric,
        pct(paper_value),
        pct(measured_value),
        (measured_value - paper_value).abs() <= tol,
        format!("tolerance ±{:.0}pp", tol * 100.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = Context::new(Scale::Quick, 0xAB);
        assert!(ctx.eco_2012.stats.incidents > 0);
        assert!(ctx.eco_2011.stats.incidents > 0);
        assert!(!ctx.forms.pages.is_empty());
        assert_eq!(ctx.decoys.outcomes.len(), 60);
        assert!(ctx.tol(0.05, 0.15) > ctx.tol(0.05, 0.15) - 1.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.2091), "20.9%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn frac_row_match_rule() {
        let ok = frac_row("x", 0.20, 0.22, 0.05);
        assert!(ok.matches);
        let bad = frac_row("x", 0.20, 0.30, 0.05);
        assert!(!bad.matches);
    }
}
