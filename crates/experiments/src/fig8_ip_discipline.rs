//! Figure 8 — hijacker activity per IP.
//!
//! §5.1: crews "attempted to access only 9.6 distinct accounts from
//! each IP", "consistently under 10 during the entire two week period",
//! and "have the correct password for an account 75% of the time
//! (including retries with trivial variants)".
//!
//! Dataset 5 is "login attempts from IPs *belonging to* hijackers" —
//! crew-pool infrastructure, not one-shot rented proxies — so the
//! measurement samples hijacker IPs that touched at least two accounts
//! on a day, matching how known-bad infrastructure lists are built.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_types::Actor;
use std::collections::{HashMap, HashSet};

/// Structured Figure 8 measurement: per-IP account discipline and
/// password correctness.
#[derive(Debug, Clone)]
pub struct Fig8Measurement {
    /// Distinct accounts attempted per crew-infrastructure IP-day,
    /// keyed `(day, count)` and sorted by day then count (deterministic
    /// order regardless of hash-map iteration).
    pub ip_days: Vec<(u64, usize)>,
    /// Mean distinct accounts per hijacker IP per day (the paper's 9.6).
    pub mean_attempts: f64,
    /// Largest per-IP daily account count observed.
    pub max_attempts: usize,
    /// Fraction of hijack sessions where the crew eventually presented
    /// the correct password (the paper's 75%).
    pub correct_frac: f64,
}

/// Extract the Figure 8 measurement from a finished world. Samples
/// hijacker IPs that touched at least two accounts on a day — the
/// crew-infrastructure filter described in the module docs.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Fig8Measurement {
    // (ip, day) → set of distinct accounts attempted.
    let mut attempted: HashMap<(mhw_types::IpAddr, u64), HashSet<mhw_types::AccountId>> =
        HashMap::new();
    for r in eco.login_log.records() {
        if !matches!(r.actor, Actor::Hijacker(_)) {
            continue;
        }
        let key = (r.ip, r.at.day_index());
        attempted.entry(key).or_default().insert(r.account);
    }
    // Crew-infrastructure filter: ≥2 accounts on the day.
    let mut ip_days: Vec<(u64, usize)> = attempted
        .iter()
        .filter(|(_, accounts)| accounts.len() >= 2)
        .map(|((_, day), accounts)| (*day, accounts.len()))
        .collect();
    ip_days.sort();
    let mean_attempts = if ip_days.is_empty() {
        0.0
    } else {
        ip_days.iter().map(|(_, n)| *n as f64).sum::<f64>() / ip_days.len() as f64
    };
    let max_attempts = ip_days.iter().map(|(_, n)| *n).max().unwrap_or(0);

    // §5.1's 75%: sessions where the crew eventually presented the
    // correct password.
    let attempted_sessions = eco.sessions().len();
    let correct = eco
        .sessions()
        .iter()
        .filter(|s| s.password_eventually_correct)
        .count();
    let correct_frac = correct as f64 / attempted_sessions.max(1) as f64;
    Fig8Measurement { ip_days, mean_attempts, max_attempts, correct_frac }
}

/// Extract the Figure 8 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Fig8Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the Figure 8 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let (mean_attempts, max_attempts, correct_frac) =
        (m.mean_attempts, m.max_attempts, m.correct_frac);

    let mut table = ComparisonTable::new("Figure 8 — per-IP discipline");
    table.push(Comparison::new(
        "mean distinct accounts per hijacker IP per day",
        "9.6",
        format!("{mean_attempts:.1}"),
        (3.5..=10.5).contains(&mean_attempts),
        "crew-pool IPs (≥2 accounts/day); big crews saturate the cap, small ones do not",
    ));
    table.push(Comparison::new(
        "per-IP daily account count stays under cap",
        "consistently under 10",
        format!("max {max_attempts}"),
        max_attempts <= 11,
        "the crews' detection-avoidance guideline",
    ));
    table.push(crate::context::frac_row(
        "password correct (incl. variant retries)",
        0.75,
        correct_frac,
        ctx.tol(0.07, 0.12),
    ));

    // Per-day mean, for the two-week panel.
    let mut by_day: HashMap<u64, Vec<usize>> = HashMap::new();
    for (day, n) in &m.ip_days {
        by_day.entry(*day).or_default().push(*n);
    }
    let mut days: Vec<u64> = by_day.keys().copied().collect();
    days.sort();
    let mut rendering = format!(
        "{} hijacker-infrastructure IP-days; overall mean {:.1} accounts/IP/day\n",
        m.ip_days.len(),
        mean_attempts
    );
    rendering.push_str("Daily mean distinct accounts per IP:\n");
    for d in days.iter().take(21) {
        let v = &by_day[d];
        let mean = v.iter().sum::<usize>() as f64 / v.len() as f64;
        rendering.push_str(&format!(
            "  day {:>3}  {:<40} {:4.1}\n",
            d,
            "#".repeat((mean * 4.0) as usize),
            mean
        ));
    }
    ExperimentResult { table, rendering }
}
