//! §5.4 — retention-tactic evolution, October 2011 vs November 2012.
//!
//! The paper's longitudinal comparison: mass deletion after a password
//! change collapsed from 46% to 1.6% once the provider added content
//! restore to recovery; hijacker-initiated recovery-option changes fell
//! from 60% to 21%; the 2012 sample had 15% hijacker filters and 26%
//! hijacker Reply-To settings.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_core::Ecosystem;

struct RetentionStats {
    n: usize,
    mass_delete_given_lockout: f64,
    recovery_change: f64,
    filters: f64,
    reply_to: f64,
}

fn measure(eco: &Ecosystem) -> RetentionStats {
    let exploited: Vec<_> = eco.sessions().iter().filter(|s| s.exploited).collect();
    let n = exploited.len();
    let locked: Vec<_> = exploited.iter().filter(|s| s.retention.password_changed).collect();
    let mass = locked.iter().filter(|s| s.retention.mass_deleted).count() as f64
        / locked.len().max(1) as f64;
    let recovery = exploited
        .iter()
        .filter(|s| s.retention.recovery_options_changed)
        .count() as f64
        / n.max(1) as f64;
    let filters = exploited.iter().filter(|s| s.retention.filter_created).count() as f64
        / n.max(1) as f64;
    let reply_to = exploited.iter().filter(|s| s.retention.reply_to_set).count() as f64
        / n.max(1) as f64;
    RetentionStats { n, mass_delete_given_lockout: mass, recovery_change: recovery, filters, reply_to }
}

/// Run the §5.4 retention-tactic comparison across the 2011/2012 eras.
pub fn run(ctx: &Context) -> ExperimentResult {
    let s2011 = measure(&ctx.eco_2011);
    let s2012 = measure(&ctx.eco_2012);

    let mut table = ComparisonTable::new("§5.4 — retention-tactic evolution");
    table.push(crate::context::frac_row(
        "2011: mass deletion | password change",
        0.46,
        s2011.mass_delete_given_lockout,
        ctx.tol(0.10, 0.20),
    ));
    table.push(crate::context::frac_row(
        "2012: mass deletion | password change",
        0.016,
        s2012.mass_delete_given_lockout,
        ctx.tol(0.04, 0.08),
    ));
    table.push(crate::context::frac_row(
        "2011: hijacker recovery-option changes",
        0.60,
        s2011.recovery_change,
        ctx.tol(0.10, 0.18),
    ));
    table.push(crate::context::frac_row(
        "2012: hijacker recovery-option changes",
        0.21,
        s2012.recovery_change,
        ctx.tol(0.08, 0.15),
    ));
    table.push(crate::context::frac_row(
        "2012: hijacker forwarding filters",
        0.15,
        s2012.filters,
        ctx.tol(0.07, 0.12),
    ));
    table.push(crate::context::frac_row(
        "2012: hijacker Reply-To",
        0.26,
        s2012.reply_to,
        ctx.tol(0.08, 0.14),
    ));
    table.push(Comparison::new(
        "deletion tactic abandoned over time",
        "46% → 1.6%",
        format!(
            "{:.0}% → {:.1}%",
            s2011.mass_delete_given_lockout * 100.0,
            s2012.mass_delete_given_lockout * 100.0
        ),
        s2011.mass_delete_given_lockout > 5.0 * s2012.mass_delete_given_lockout.max(0.001),
        "provider content-restore removed the incentive",
    ));

    let rendering = format!(
        "2011 era: {} exploited cases; mass-delete|lockout {:.0}%, recovery changes {:.0}%\n\
         2012 era: {} exploited cases; mass-delete|lockout {:.1}%, recovery changes {:.0}%, filters {:.0}%, reply-to {:.0}%\n",
        s2011.n,
        s2011.mass_delete_given_lockout * 100.0,
        s2011.recovery_change * 100.0,
        s2012.n,
        s2012.mass_delete_given_lockout * 100.0,
        s2012.recovery_change * 100.0,
        s2012.filters * 100.0,
        s2012.reply_to * 100.0,
    );
    ExperimentResult { table, rendering }
}
