//! Figure 10 — success rate per recovery method.
//!
//! §6.3: SMS 80.91%, secondary email 74.57%, fallback options 14.20%.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_recovery::RecoveryMethod;

/// Structured Figure 10 measurement: success rate and claim volume per
/// recovery channel.
#[derive(Debug, Clone)]
pub struct Fig10Measurement {
    /// SMS success rate and claim count (paper: 80.91%).
    pub sms: (f64, usize),
    /// Secondary-email success rate and claim count (paper: 74.57%).
    pub email: (f64, usize),
    /// Fallback-options success rate and claim count (paper: 14.20%).
    pub fallback: (f64, usize),
}

/// Extract the Figure 10 measurement from a finished world.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Fig10Measurement {
    let rates = eco.recovery.success_rate_by_method();
    let get = |m: RecoveryMethod| {
        rates
            .iter()
            .find(|(method, _, _)| *method == m)
            .map(|(_, rate, n)| (*rate, *n))
            .unwrap_or((0.0, 0))
    };
    Fig10Measurement {
        sms: get(RecoveryMethod::Sms),
        email: get(RecoveryMethod::Email),
        fallback: get(RecoveryMethod::Fallback),
    }
}

/// Extract the Figure 10 measurement from the 2012-era world.
pub fn measure(ctx: &Context) -> Fig10Measurement {
    measure_world(&ctx.eco_2012)
}

/// Run the Figure 10 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let (sms, sms_n) = m.sms;
    let (email, email_n) = m.email;
    let (fallback, fallback_n) = m.fallback;

    let mut table = ComparisonTable::new("Figure 10 — recovery method success");
    table.push(crate::context::frac_row("SMS success rate", 0.8091, sms, ctx.tol(0.08, 0.18)));
    table.push(crate::context::frac_row(
        "secondary-email success rate",
        0.7457,
        email,
        ctx.tol(0.09, 0.20),
    ));
    table.push(crate::context::frac_row(
        "fallback success rate",
        0.1420,
        fallback,
        ctx.tol(0.08, 0.15),
    ));
    table.push(Comparison::new(
        "channel ordering",
        "SMS > Email ≫ Fallback",
        format!(
            "{:.0}% > {:.0}% > {:.0}%",
            sms * 100.0,
            email * 100.0,
            fallback * 100.0
        ),
        sms > email && email > fallback,
        "the §6.3 reliability ranking",
    ));

    let rendering = format!(
        "Recovery claims by method:\n  SMS      {:<45} {:5.1}%  (n={})\n  Email    {:<45} {:5.1}%  (n={})\n  Fallback {:<45} {:5.1}%  (n={})\n",
        "#".repeat((sms * 45.0) as usize),
        sms * 100.0,
        sms_n,
        "#".repeat((email * 45.0) as usize),
        email * 100.0,
        email_n,
        "#".repeat((fallback * 45.0) as usize),
        fallback * 100.0,
        fallback_n,
    );
    ExperimentResult { table, rendering }
}
