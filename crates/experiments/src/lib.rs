//! # mhw-experiments
//!
//! One module per table and figure of the paper's evaluation, plus the
//! §5 headline statistics, the §5.4 longitudinal retention comparison
//! and the §8 defense evaluation. Each experiment consumes the shared
//! [`Context`] (a set of finished simulation runs) and produces an
//! [`ExperimentResult`]: a paper-vs-measured comparison table plus a
//! plain-text rendering of the figure itself.
//!
//! The `repro` binary runs everything and writes `EXPERIMENTS.md`.
//! Beyond the rendered battery, each figure/table module exposes a
//! typed `measure()` returning a structured measurement; the
//! [`fidelity`] module compares those against the machine-readable
//! calibration-target registry and emits the PASS/WARN/FAIL scorecard
//! (`repro --validate`).

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;
pub mod context;
pub mod defense_eval;
pub mod fidelity;
pub mod fig10_recovery_methods;
pub mod fig11_ip_origins;
pub mod fig12_phone_origins;
pub mod fig3_referrers;
pub mod fig4_tlds;
pub mod fig5_conversion;
pub mod fig6_arrivals;
pub mod fig7_decoys;
pub mod fig8_ip_discipline;
pub mod fig9_recovery_latency;
pub mod fig_taxonomy;
pub mod sec5_stats;
pub mod sec5_retention;
pub mod table1_datasets;
pub mod table2_targets;
pub mod table3_terms;

pub use context::{Context, ExperimentResult, Scale};

/// Every experiment, in paper order, as `(id, runner)` pairs.
pub type Runner = fn(&Context) -> ExperimentResult;

/// The full battery in presentation order.
pub fn all_experiments() -> Vec<(&'static str, Runner)> {
    vec![
        ("Table 1 — dataset inventory", table1_datasets::run as Runner),
        ("Table 2 — phishing targets", table2_targets::run as Runner),
        ("Table 3 — hijacker search terms", table3_terms::run as Runner),
        ("Figure 1 — hijacking taxonomy", fig_taxonomy::run as Runner),
        ("Figure 3 — HTTP referrers", fig3_referrers::run as Runner),
        ("Figure 4 — phished TLDs", fig4_tlds::run as Runner),
        ("Figure 5 — page conversion", fig5_conversion::run as Runner),
        ("Figure 6 — submission arrivals", fig6_arrivals::run as Runner),
        ("Figure 7 — decoy access speed", fig7_decoys::run as Runner),
        ("Figure 8 — per-IP discipline", fig8_ip_discipline::run as Runner),
        ("Figure 9 — recovery latency", fig9_recovery_latency::run as Runner),
        ("Figure 10 — recovery methods", fig10_recovery_methods::run as Runner),
        ("Figure 11 — hijacker IP origins", fig11_ip_origins::run as Runner),
        ("Figure 12 — hijacker phone origins", fig12_phone_origins::run as Runner),
        ("§5 — exploitation statistics", sec5_stats::run as Runner),
        ("§5.4 — retention-tactic evolution", sec5_retention::run as Runner),
        ("§8 — defense evaluation", defense_eval::run as Runner),
    ]
}
