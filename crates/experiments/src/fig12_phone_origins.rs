//! Figure 12 — countries of phones hijackers used for the 2FA lockout.
//!
//! §7: "two major groups of hijackers emerge: the Nigerian one (NG) and
//! the Ivory Coast (CI) one … South Africa (ZA) account for 10% of both
//! datasets", and "neither China or Malaysia show up in the phone
//! dataset" because those crews never tried the tactic. The dataset
//! comes from the brief 2012 period when the tactic was in use, so the
//! measurement runs on the lockout-era scenario.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{bar_chart, Breakdown, Comparison, ComparisonTable};
use mhw_core::datasets::hijacker_phones;

/// Structured Figure 12 measurement: deduped hijacker 2FA phone
/// numbers by country code.
#[derive(Debug, Clone)]
pub struct Fig12Measurement {
    /// Country codes of distinct hijacker-enrolled phone numbers,
    /// counted.
    pub countries: Breakdown,
}

/// Extract the Figure 12 measurement from a finished world. The
/// paper's dataset is 300 phone *numbers*; crews reuse a shared burner
/// pool (§5.5), so enrollment events are deduped to numbers.
pub fn measure_world(eco: &mhw_core::Ecosystem) -> Fig12Measurement {
    let mut numbers: Vec<_> = hijacker_phones(eco);
    numbers.sort_by_key(|p| (p.prefix(), p.national()));
    numbers.dedup();
    let mut countries = Breakdown::new();
    for p in numbers {
        if let Some(c) = p.country() {
            countries.add(c.code().to_string());
        }
    }
    Fig12Measurement { countries }
}

/// Extract the Figure 12 measurement from the lockout-era world.
pub fn measure(ctx: &Context) -> Fig12Measurement {
    measure_world(&ctx.eco_lockout)
}

/// Run the Figure 12 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let countries = measure(ctx).countries;

    let ng = countries.fraction_of("NG");
    let ci = countries.fraction_of("CI");
    let za = countries.fraction_of("ZA");
    let cn_my = countries.fraction_of("CN") + countries.fraction_of("MY");

    let mut table = ComparisonTable::new("Figure 12 — hijacker phone origins");
    table.push(crate::context::frac_row("Nigeria share", 0.357, ng, ctx.tol(0.12, 0.20)));
    table.push(crate::context::frac_row("Ivory Coast share", 0.338, ci, ctx.tol(0.12, 0.20)));
    table.push(crate::context::frac_row("South Africa share", 0.10, za, ctx.tol(0.10, 0.15)));
    table.push(Comparison::new(
        "China/Malaysia absent",
        "0% (never used the tactic)",
        crate::context::pct(cn_my),
        cn_my == 0.0,
        "tactic adoption differed by crew",
    ));
    table.push(Comparison::new(
        "two dominant groups",
        "NG and CI",
        format!("NG {:.0}%, CI {:.0}%", ng * 100.0, ci * 100.0),
        ng + ci > 0.5,
        "different languages, 2000 km apart (§7)",
    ));

    let rendering = format!(
        "Hijacker-enrolled 2FA phone numbers by country code ({} numbers):\n{}",
        countries.total(),
        bar_chart(&countries, 40)
    );
    ExperimentResult { table, rendering }
}
