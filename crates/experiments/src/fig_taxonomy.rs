//! Figure 1 — the hijacking taxonomy, quantified.
//!
//! The paper's Figure 1 is a conceptual plot: automated hijacking
//! compromises orders of magnitude more accounts at shallow depth;
//! manual hijacking compromises few accounts but exploits each deeply.
//! We reproduce it quantitatively: run a botnet credential-stuffing
//! campaign and the manual crews through the *same* defended world and
//! compare volume (accounts touched) against depth (actions per
//! compromised account).

use crate::context::{Context, ExperimentResult};
use mhw_adversary::automation::SpamBot;
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_core::ScenarioBuilder;
use mhw_simclock::SimRng;
use mhw_types::{CrewId, EmailAddress, IpAddr, SimTime, DAY};

/// Run the Figure 1 taxonomy experiment on a dedicated small world.
pub fn run(ctx: &Context) -> ExperimentResult {
    // A dedicated small world so bot traffic does not contaminate the
    // attribution figures computed from the main run.
    let mut eco = ScenarioBuilder::small_test(ctx.seed ^ 0x7a30)
        .days(8)
        .population(300)
        .run();

    // The botnet stuffs a leaked credential list: a mix of valid reused
    // passwords and stale garbage.
    let mut rng = SimRng::stream(ctx.seed, "taxonomy-bot");
    let n = eco.population.len();
    let credentials: Vec<(EmailAddress, String)> = (0..n)
        .map(|i| {
            let u = &eco.population.users[i];
            let password = if rng.chance(0.25) {
                eco.credentials.password_for_capture(u.account).to_string()
            } else {
                format!("stale-leak-{i}")
            };
            (u.address.clone(), password)
        })
        .collect();
    let bot = SpamBot {
        id: CrewId(9999),
        ips: vec![IpAddr::new(41, 7, 7, 7), IpAddr::new(41, 7, 7, 8)],
        spam_per_account: 3,
        recipients_per_message: 60,
    };
    let report = eco.run_bot_campaign(&bot, &credentials, SimTime::from_secs(9 * DAY));

    // Manual side: from the same world's crew sessions.
    let manual_compromised = eco.incidents().len();
    let manual_exploited = eco.sessions().iter().filter(|s| s.exploited).count();
    let manual_depth: f64 = {
        let sessions: Vec<_> = eco.sessions().iter().filter(|s| s.logged_in).collect();
        if sessions.is_empty() {
            0.0
        } else {
            sessions
                .iter()
                .map(|s| {
                    s.searches.len() as f64
                        + s.folders_opened.len() as f64
                        + 1.0 // contact-list review
                        + s.messages_sent as f64
                        + [
                            s.retention.password_changed,
                            s.retention.recovery_options_changed,
                            s.retention.filter_created,
                            s.retention.reply_to_set,
                            s.retention.mass_deleted,
                            s.retention.twofactor_locked,
                        ]
                        .iter()
                        .filter(|b| **b)
                        .count() as f64
                })
                .sum::<f64>()
                / sessions.len() as f64
        }
    };
    // Bot depth: spam sends only, no profiling/retention.
    let bot_depth = bot.spam_per_account as f64;
    let bot_rate = report.compromised as f64 / report.attempts.max(1) as f64;

    let mut table = ComparisonTable::new("Figure 1 — taxonomy: volume vs depth");
    table.push(Comparison::new(
        "bot attempts vs manual attempts",
        "orders of magnitude more (automated)",
        format!("{} vs {}", report.attempts, eco.sessions().len()),
        report.attempts as usize > 3 * eco.sessions().len().max(1),
        "credential stuffing is cheap",
    ));
    table.push(Comparison::new(
        "manual depth exceeds bot depth",
        "deep exploitation per account",
        format!("{manual_depth:.1} vs {bot_depth:.1} actions/account"),
        manual_depth > bot_depth,
        "profiling + exploitation + retention",
    ));
    table.push(Comparison::new(
        "defenses blunt bulk stuffing",
        "fan-out signals catch bots",
        format!("bot compromise rate {:.1}%", bot_rate * 100.0),
        bot_rate < 0.25,
        "two IPs for hundreds of accounts light up ip_fanout",
    ));

    let rendering = format!(
        "Automated: {} attempts, {} compromised, {} spam messages, depth {:.1}\n\
         Manual:    {} sessions, {} hijacked, {} exploited, depth {:.1}\n",
        report.attempts,
        report.compromised,
        report.messages_sent,
        bot_depth,
        eco.sessions().len(),
        manual_compromised,
        manual_exploited,
        manual_depth,
    );
    ExperimentResult { table, rendering }
}
