//! Figure 6 — credential submissions over time.
//!
//! Top panel: the average standard page "exhibits a clear decay, from
//! the moment the webpage receives its first visitors until it is taken
//! down … consistent with a mass mailed email". Bottom panel: the one
//! high-volume outlier shows a step function after a ~15-hour quiet
//! period, then "a gentle diurnal pattern through several days" ending
//! abruptly at takedown.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, HourlySeries};

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    values
        .iter()
        .map(|v| GLYPHS[((v / max) * 7.0).round() as usize])
        .collect()
}

/// Structured measurement of the outlier page's panel (Figure 6,
/// bottom).
#[derive(Debug, Clone)]
pub struct Fig6Outlier {
    /// Leading hours with zero submissions (the paper's ≈15 h quiet
    /// period).
    pub quiet_hours: usize,
    /// Hours the page stayed up.
    pub hours: usize,
    /// Total submissions over the page's life.
    pub submissions: u32,
    /// Peak-hour / trough-hour ratio over the post-quiet plateau,
    /// aggregated by hour of day (diurnal modulation).
    pub diurnal_ratio: f64,
}

/// Structured Figure 6 measurement: arrival shapes of standard pages
/// and the high-volume outlier.
#[derive(Debug, Clone)]
pub struct Fig6Measurement {
    /// Number of non-outlier pages with ≥10 submissions.
    pub standard_pages: usize,
    /// Average hourly submissions across standard pages, aligned at
    /// first visit.
    pub avg_hourly: Vec<f64>,
    /// Whether the averaged standard series decays (first-quartile mean
    /// > 2× last-quartile mean).
    pub decaying: bool,
    /// The outlier campaign's panel, when the batch produced one.
    pub outlier: Option<Fig6Outlier>,
}

/// Extract the Figure 6 measurement from the form-campaign batch.
pub fn measure(ctx: &Context) -> Fig6Measurement {
    // Standard pattern: average hourly submissions across non-outlier
    // pages, aligned at first visit.
    let standard: Vec<HourlySeries> = ctx
        .forms
        .pages
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != ctx.forms.outlier)
        .map(|(_, p)| HourlySeries::from_counts(p.hourly_submissions()))
        .filter(|s| s.total() >= 10)
        .collect();
    let avg = HourlySeries::average(&standard);
    let avg_series = HourlySeries::from_counts(avg.iter().map(|x| (x * 100.0) as u32).collect());

    let outlier = ctx.forms.outlier.map(|idx| {
        let series = ctx.forms.pages[idx].hourly_submissions();
        let quiet_hours = series.iter().take_while(|c| **c == 0).count();
        let total: u32 = series.iter().sum();
        let mut by_hour = [0.0f64; 24];
        for (h, v) in series.iter().skip(quiet_hours).enumerate() {
            by_hour[h % 24] += *v as f64;
        }
        let peak = by_hour.iter().cloned().fold(0.0, f64::max);
        let trough = by_hour.iter().cloned().fold(f64::INFINITY, f64::min);
        Fig6Outlier {
            quiet_hours,
            hours: series.len(),
            submissions: total,
            diurnal_ratio: peak / trough.max(1.0),
        }
    });

    Fig6Measurement {
        standard_pages: standard.len(),
        avg_hourly: avg,
        decaying: avg_series.is_decaying(2.0),
        outlier,
    }
}

/// Run the Figure 6 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let avg = &m.avg_hourly;

    let mut table = ComparisonTable::new("Figure 6 — submission arrivals");
    table.push(Comparison::new(
        "standard pages decay from first visit",
        "clear decay",
        if m.decaying { "decaying" } else { "not decaying" }.to_string(),
        m.decaying,
        "first-quartile vs last-quartile hourly mean",
    ));

    let mut rendering = format!(
        "Average hourly submissions, {} standard pages (first 72h):\n  {}\n",
        m.standard_pages,
        sparkline(&avg[..avg.len().min(72)])
    );

    if let Some(o) = &m.outlier {
        table.push(Comparison::new(
            "outlier quiet period",
            "≈15 h",
            format!("{} h", o.quiet_hours),
            (10..=18).contains(&o.quiet_hours),
            "attackers testing the page pre-launch",
        ));
        table.push(Comparison::new(
            "outlier runs for days at volume",
            "several days, high volume",
            format!("{} h, {} submissions", o.hours, o.submissions),
            o.hours > 72 && o.submissions > 500,
            "diurnal plateau ending at takedown",
        ));
        table.push(Comparison::new(
            "outlier diurnal modulation",
            "gentle diurnal pattern",
            format!("peak/trough = {:.1}", o.diurnal_ratio),
            o.diurnal_ratio > 1.5,
            "hour-of-day aggregation over the plateau",
        ));
    }
    if let Some(idx) = ctx.forms.outlier {
        let series = ctx.forms.pages[idx].hourly_submissions();
        rendering.push_str(&format!(
            "Outlier page, hourly submissions ({} h total):\n  {}\n",
            series.len(),
            sparkline(&series.iter().map(|c| *c as f64).collect::<Vec<_>>())
        ));
    }

    ExperimentResult { table, rendering }
}
