//! Figure 6 — credential submissions over time.
//!
//! Top panel: the average standard page "exhibits a clear decay, from
//! the moment the webpage receives its first visitors until it is taken
//! down … consistent with a mass mailed email". Bottom panel: the one
//! high-volume outlier shows a step function after a ~15-hour quiet
//! period, then "a gentle diurnal pattern through several days" ending
//! abruptly at takedown.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, HourlySeries};

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    values
        .iter()
        .map(|v| GLYPHS[((v / max) * 7.0).round() as usize])
        .collect()
}

pub fn run(ctx: &Context) -> ExperimentResult {
    // Standard pattern: average hourly submissions across non-outlier
    // pages, aligned at first visit.
    let standard: Vec<HourlySeries> = ctx
        .forms
        .pages
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != ctx.forms.outlier)
        .map(|(_, p)| HourlySeries::from_counts(p.hourly_submissions()))
        .filter(|s| s.total() >= 10)
        .collect();
    let avg = HourlySeries::average(&standard);
    let avg_series = HourlySeries::from_counts(avg.iter().map(|x| (x * 100.0) as u32).collect());

    let mut table = ComparisonTable::new("Figure 6 — submission arrivals");
    table.push(Comparison::new(
        "standard pages decay from first visit",
        "clear decay",
        if avg_series.is_decaying(2.0) { "decaying" } else { "not decaying" }.to_string(),
        avg_series.is_decaying(2.0),
        "first-quartile vs last-quartile hourly mean",
    ));

    let mut rendering = format!(
        "Average hourly submissions, {} standard pages (first 72h):\n  {}\n",
        standard.len(),
        sparkline(&avg[..avg.len().min(72)])
    );

    if let Some(outlier_idx) = ctx.forms.outlier {
        let outlier = &ctx.forms.pages[outlier_idx];
        let series = outlier.hourly_submissions();
        let quiet_hours = series.iter().take_while(|c| **c == 0).count();
        let total: u32 = series.iter().sum();
        table.push(Comparison::new(
            "outlier quiet period",
            "≈15 h",
            format!("{quiet_hours} h"),
            (10..=18).contains(&quiet_hours),
            "attackers testing the page pre-launch",
        ));
        table.push(Comparison::new(
            "outlier runs for days at volume",
            "several days, high volume",
            format!("{} h, {} submissions", series.len(), total),
            series.len() > 72 && total > 500,
            "diurnal plateau ending at takedown",
        ));
        // Diurnality: within the plateau, peak hour ≫ trough hour.
        let plateau: Vec<f64> = series
            .iter()
            .skip(quiet_hours)
            .map(|c| *c as f64)
            .collect();
        let mut by_hour = [0.0f64; 24];
        for (h, v) in plateau.iter().enumerate() {
            by_hour[h % 24] += v;
        }
        let peak = by_hour.iter().cloned().fold(0.0, f64::max);
        let trough = by_hour.iter().cloned().fold(f64::INFINITY, f64::min);
        table.push(Comparison::new(
            "outlier diurnal modulation",
            "gentle diurnal pattern",
            format!("peak/trough = {:.1}", peak / trough.max(1.0)),
            peak > 1.5 * trough.max(1.0),
            "hour-of-day aggregation over the plateau",
        ));
        rendering.push_str(&format!(
            "Outlier page, hourly submissions ({} h total):\n  {}\n",
            series.len(),
            sparkline(&series.iter().map(|c| *c as f64).collect::<Vec<_>>())
        ));
    }

    ExperimentResult { table, rendering }
}
