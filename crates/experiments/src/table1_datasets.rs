//! Table 1 — the dataset inventory.
//!
//! The paper's Table 1 lists the 14 datasets behind the study. The
//! reproduction's analogue lists the same 14 extractions over the
//! simulated logs, with the sample sizes this run produced.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{markdown_table, Comparison, ComparisonTable};
use mhw_core::DatasetInventory;

/// Paper sample sizes per dataset id (Table 1's "Samples" column; the
/// per-day and cohort entries are normalized to counts).
const PAPER_SAMPLES: [(u8, &str); 14] = [
    (1, "100"),
    (2, "100"),
    (3, "100"),
    (4, "200"),
    (5, "300 IPs/day"),
    (6, "top 10 terms"),
    (7, "575"),
    (8, "200"),
    (9, "3000 + 3000"),
    (10, "600"),
    (11, "5000"),
    (12, "1 month"),
    (13, "3000 cases"),
    (14, "300"),
];

/// Structured Table 1 measurement: the 14-dataset inventory with this
/// run's sample sizes.
#[derive(Debug, Clone)]
pub struct Table1Measurement {
    /// The inventory, one row per paper dataset, in Table 1 order.
    pub inventory: DatasetInventory,
}

impl Table1Measurement {
    /// Number of datasets with at least one sample this run.
    pub fn nonempty(&self) -> usize {
        self.inventory.rows.iter().filter(|r| r.samples > 0).count()
    }
}

/// Extract the Table 1 measurement across all companion runs.
pub fn measure(ctx: &Context) -> Table1Measurement {
    let mut inv = DatasetInventory::from_run(
        &ctx.eco_2012,
        ctx.forms.pages.len(),
        ctx.decoys.outcomes.len(),
        ctx.eco_2011.real_incidents().count(),
    );
    // Dataset 14 (hijacker phone numbers) was collected during the
    // brief 2FA-lockout burst; source it from that run.
    if let Some(row) = inv.rows.iter_mut().find(|r| r.id == 14) {
        row.samples = mhw_core::datasets::hijacker_phones(&ctx.eco_lockout).len();
    }
    Table1Measurement { inventory: inv }
}

/// Run the Table 1 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let inv = measure(ctx).inventory;
    let mut table = ComparisonTable::new("Table 1 — dataset inventory");
    let mut rows = Vec::new();
    for row in &inv.rows {
        let paper = PAPER_SAMPLES
            .iter()
            .find(|(id, _)| *id == row.id)
            .map(|(_, s)| *s)
            .unwrap_or("—");
        // Inventory rows "match" when the extraction is non-empty —
        // sample sizes differ by design (scale knob), the claim is that
        // every dataset the paper used is reproducible from our logs.
        table.push(Comparison::new(
            format!("Dataset {}: {}", row.id, row.name),
            paper,
            row.samples.to_string(),
            row.samples > 0,
            format!("§{}", row.section),
        ));
        rows.push((format!("{} ({})", row.name, row.section), row.samples.to_string()));
    }
    let rendering = markdown_table(("Dataset", "Samples this run"), &rows);
    ExperimentResult { table, rendering }
}
