//! The paper-fidelity validation harness.
//!
//! Three layers, each pure and deterministic:
//!
//! 1. [`Measurements`] — every structured figure/table measurement,
//!    collected once from a [`Context`] by [`collect`] (or partially
//!    from a single world by [`validate_world`]).
//! 2. [`registry`] — the machine-readable calibration-target registry:
//!    one [`CalibrationTarget`] per paper dataset (T1–T3, F3–F12, §5)
//!    with the published claim and the generating module.
//! 3. [`score`] — reduces each measurement to distances
//!    (`mhw_analysis::distance`) and classifies them against per-scale
//!    [`Tolerance`] bands into a [`FidelityReport`].
//!
//! The report is a pure function of `(seed, scale)`: worker counts,
//! wall clocks and shard layouts never reach it, so `FIDELITY.json`
//! and the rendered scorecard are byte-identical across any parallel
//! configuration — the same contract `RunReport` keeps, pinned by
//! `tests/fidelity.rs`.
//!
//! Scoring is split from collection so tests can deliberately
//! miscalibrate a [`Measurements`] and assert the checker FAILs.

use crate::context::{Context, Scale};
use crate::{
    fig10_recovery_methods, fig11_ip_origins, fig12_phone_origins, fig3_referrers, fig4_tlds,
    fig5_conversion, fig6_arrivals, fig7_decoys, fig8_ip_discipline, fig9_recovery_latency,
    sec5_stats, table1_datasets, table2_targets, table3_terms,
};
use mhw_analysis::distance::{
    chi_square, ks_at_reference, max_abs_delta, mean_abs_error, relative_error, total_variation,
};
use mhw_analysis::Ecdf;
use mhw_core::Ecosystem;
use mhw_obs::{FidelityReport, TargetScore, Tolerance};

/// One entry of the calibration-target registry: a paper dataset the
/// scorecard validates, with its published claim and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationTarget {
    /// Stable id used in `FIDELITY.json` (`T1`–`T3`, `F3`–`F12`,
    /// `SEC5`).
    pub id: &'static str,
    /// Human title, matching the docs/FIGURES.md section.
    pub title: &'static str,
    /// The paper's published numbers, as printed there.
    pub paper_claim: &'static str,
    /// Module whose `measure()` produces the compared values.
    pub module: &'static str,
    /// Whether the target can be scored from a single finished world
    /// ([`validate_world`]) rather than the full multi-world
    /// [`Context`].
    pub world_derivable: bool,
}

/// The calibration-target registry, in scorecard order. Every paper
/// number the reproduction claims to hit appears here exactly once;
/// `docs/FIGURES.md` documents each entry.
pub fn registry() -> &'static [CalibrationTarget] {
    const REGISTRY: &[CalibrationTarget] = &[
        CalibrationTarget {
            id: "T1",
            title: "Table 1 — dataset inventory",
            paper_claim: "14 datasets behind the study, all non-empty",
            module: "mhw_experiments::table1_datasets",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "T2",
            title: "Table 2 — phishing targets",
            paper_claim: "emails: Mail 35/Bank 21/App 16/Social 14/Other 14 of 100; \
                          pages: 27/25/17/15/15 of 99; 62% of emails carry a URL",
            module: "mhw_experiments::table2_targets",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "T3",
            title: "Table 3 — hijacker search terms",
            paper_claim: "finance ≈93% of column mass; `wire transfer` top (14.4%)",
            module: "mhw_experiments::table3_terms",
            world_derivable: true,
        },
        CalibrationTarget {
            id: "F3",
            title: "Figure 3 — HTTP referrers",
            paper_claim: ">99% blank referrers",
            module: "mhw_experiments::fig3_referrers",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "F4",
            title: "Figure 4 — phished-address TLDs",
            paper_claim: ">99% of phished addresses from .edu",
            module: "mhw_experiments::fig4_tlds",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "F5",
            title: "Figure 5 — page conversion rates",
            paper_claim: "mean 13.7%, best ≈45%, worst ≈3%",
            module: "mhw_experiments::fig5_conversion",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "F6",
            title: "Figure 6 — submission arrivals",
            paper_claim: "standard pages decay; outlier quiet ≈15 h then diurnal days",
            module: "mhw_experiments::fig6_arrivals",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "F7",
            title: "Figure 7 — decoy access speed",
            paper_claim: "20% accessed ≤30 min, 50% ≤7 h, some never",
            module: "mhw_experiments::fig7_decoys",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "F8",
            title: "Figure 8 — per-IP discipline",
            paper_claim: "≈9.6 accounts/IP/day, consistently under 10; password correct 75%",
            module: "mhw_experiments::fig8_ip_discipline",
            world_derivable: true,
        },
        CalibrationTarget {
            id: "F9",
            title: "Figure 9 — recovery latency",
            paper_claim: "22% reclaimed ≤1 h, 50% ≤13 h after flagging",
            module: "mhw_experiments::fig9_recovery_latency",
            world_derivable: true,
        },
        CalibrationTarget {
            id: "F10",
            title: "Figure 10 — recovery method success",
            paper_claim: "SMS 80.91%, secondary email 74.57%, fallback 14.20%",
            module: "mhw_experiments::fig10_recovery_methods",
            world_derivable: true,
        },
        CalibrationTarget {
            id: "F11",
            title: "Figure 11 — hijacker IP origins",
            paper_claim: "CN+MY dominant (≈45%), ZA ≈10%",
            module: "mhw_experiments::fig11_ip_origins",
            world_derivable: true,
        },
        CalibrationTarget {
            id: "F12",
            title: "Figure 12 — hijacker phone origins",
            paper_claim: "NG 35.7%, CI 33.8%, ZA ≈10%; CN/MY absent",
            module: "mhw_experiments::fig12_phone_origins",
            world_derivable: false,
        },
        CalibrationTarget {
            id: "SEC5",
            title: "§5 — exploitation statistics",
            paper_claim: "3-min profiling; folders .16/.11/.05; 65% ≤5 msgs; \
                          6% custom; 35% phishing share",
            module: "mhw_experiments::sec5_stats",
            world_derivable: true,
        },
    ];
    REGISTRY
}

/// Every structured measurement the scorecard consumes, collected in
/// one pass so scoring is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Table 1 inventory.
    pub table1: table1_datasets::Table1Measurement,
    /// Table 2 target mixes.
    pub table2: table2_targets::Table2Measurement,
    /// Table 3 search terms.
    pub table3: table3_terms::Table3Measurement,
    /// Figure 3 referrer mix.
    pub fig3: fig3_referrers::Fig3Measurement,
    /// Figure 4 TLD mix.
    pub fig4: fig4_tlds::Fig4Measurement,
    /// Figure 5 conversion rates.
    pub fig5: fig5_conversion::Fig5Measurement,
    /// Figure 6 arrival shapes.
    pub fig6: fig6_arrivals::Fig6Measurement,
    /// Figure 7 decoy access delays.
    pub fig7: fig7_decoys::Fig7Measurement,
    /// Figure 8 per-IP discipline.
    pub fig8: fig8_ip_discipline::Fig8Measurement,
    /// Figure 9 recovery latencies.
    pub fig9: fig9_recovery_latency::Fig9Measurement,
    /// Figure 10 recovery-method success.
    pub fig10: fig10_recovery_methods::Fig10Measurement,
    /// Figure 11 IP origins.
    pub fig11: fig11_ip_origins::Fig11Measurement,
    /// Figure 12 phone origins.
    pub fig12: fig12_phone_origins::Fig12Measurement,
    /// §5 exploitation statistics.
    pub sec5: sec5_stats::Sec5Measurement,
}

/// Collect every structured measurement from a built [`Context`].
pub fn collect(ctx: &Context) -> Measurements {
    Measurements {
        table1: table1_datasets::measure(ctx),
        table2: table2_targets::measure(ctx),
        table3: table3_terms::measure(ctx),
        fig3: fig3_referrers::measure(ctx),
        fig4: fig4_tlds::measure(ctx),
        fig5: fig5_conversion::measure(ctx),
        fig6: fig6_arrivals::measure(ctx),
        fig7: fig7_decoys::measure(ctx),
        fig8: fig8_ip_discipline::measure(ctx),
        fig9: fig9_recovery_latency::measure(ctx),
        fig10: fig10_recovery_methods::measure(ctx),
        fig11: fig11_ip_origins::measure(ctx),
        fig12: fig12_phone_origins::measure(ctx),
        sec5: sec5_stats::measure(ctx),
    }
}

/// Build the context, collect measurements and score them — the
/// `repro --validate` entry point.
pub fn validate(ctx: &Context) -> FidelityReport {
    score(&collect(ctx), ctx.scale, ctx.seed)
}

/// The scale tag recorded in the report.
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

/// A per-scale tolerance band: `(warn, fail)` for Full runs, a wider
/// pair for Quick runs (smaller samples, noisier estimates).
fn band(scale: Scale, full: (f64, f64), quick: (f64, f64)) -> Tolerance {
    let (warn, fail) = match scale {
        Scale::Full => full,
        Scale::Quick => quick,
    };
    Tolerance::new(warn, fail)
}

/// Format a fraction the way the scorecard prints it.
fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Score a [`Measurements`] against the registry. Pure: mutate the
/// measurements and the verdicts move; nothing else is consulted.
pub fn score(m: &Measurements, scale: Scale, seed: u64) -> FidelityReport {
    let mut r = FidelityReport::new(seed, scale_label(scale));
    score_t1(&mut r, &m.table1, scale);
    score_t2(&mut r, &m.table2, scale);
    score_t3(&mut r, &m.table3, scale);
    score_f3(&mut r, &m.fig3, scale);
    score_f4(&mut r, &m.fig4, scale);
    score_f5(&mut r, &m.fig5, scale);
    score_f6(&mut r, &m.fig6, scale);
    score_f7(&mut r, &m.fig7, scale);
    score_f8(&mut r, &m.fig8, scale);
    score_f9(&mut r, &m.fig9, scale);
    score_f10(&mut r, &m.fig10, scale);
    score_f11(&mut r, &m.fig11, scale);
    score_f12(&mut r, &m.fig12, scale);
    score_sec5(&mut r, &m.sec5, scale);
    r
}

/// Score only the targets derivable from a single finished world (the
/// `scenario --validate` path): T3, F8–F11 and §5. Form-campaign,
/// decoy and lockout-era targets need their companion runs and are
/// absent from the partial report.
pub fn validate_world(eco: &Ecosystem, scale: Scale, seed: u64) -> FidelityReport {
    let mut r = FidelityReport::new(seed, scale_label(scale));
    score_t3(&mut r, &table3_terms::measure_world(eco), scale);
    score_f8(&mut r, &fig8_ip_discipline::measure_world(eco), scale);
    score_f9(&mut r, &fig9_recovery_latency::measure_world(eco), scale);
    score_f10(&mut r, &fig10_recovery_methods::measure_world(eco), scale);
    score_f11(&mut r, &fig11_ip_origins::measure_world(eco), scale);
    score_sec5(&mut r, &sec5_stats::measure_world(eco), scale);
    r
}

fn score_t1(r: &mut FidelityReport, m: &table1_datasets::Table1Measurement, scale: Scale) {
    let missing = m.inventory.rows.len().saturating_sub(m.nonempty());
    r.push(TargetScore::new(
        "T1",
        "all 14 datasets reproducible (non-empty)",
        "abs_err",
        "14 of 14",
        format!("{} of {}", m.nonempty(), m.inventory.rows.len()),
        missing as f64,
        band(scale, (0.0, 0.0), (0.0, 1.0)),
        "sample sizes differ by design (scale knob); the claim is extraction coverage",
    ));
}

fn score_t2(r: &mut FidelityReport, m: &table2_targets::Table2Measurement, scale: Scale) {
    let paper_emails: Vec<(String, f64)> = [
        ("Mail", 0.35),
        ("Bank", 0.21),
        ("App store", 0.16),
        ("Social network", 0.14),
        ("Other", 0.14),
    ]
    .iter()
    .map(|(l, f)| (l.to_string(), *f))
    .collect();
    let d = total_variation(&paper_emails, &m.emails.fractions());
    r.push(TargetScore::new(
        "T2",
        "email target mix",
        "l1",
        "35/21/16/14/14",
        format!("n={}", m.emails.total()),
        d,
        band(scale, (0.12, 0.25), (0.16, 0.30)),
        "n=100 curated sample; binomial noise ≈3.5pp per category",
    ));

    let paper_pages: Vec<(String, f64)> = [
        ("Mail", 27.0 / 99.0),
        ("Bank", 25.0 / 99.0),
        ("App store", 17.0 / 99.0),
        ("Social network", 15.0 / 99.0),
        ("Other", 15.0 / 99.0),
    ]
    .iter()
    .map(|(l, f)| (l.to_string(), *f))
    .collect();
    let d = chi_square(&paper_pages, &m.pages.fractions());
    r.push(TargetScore::new(
        "T2",
        "page target mix",
        "chi2",
        "27/25/17/15/15 of 99",
        format!("n={}", m.pages.total()),
        d,
        band(scale, (0.12, 0.30), (0.18, 0.40)),
        "",
    ));

    r.push(TargetScore::new(
        "T2",
        "curated emails carrying a URL",
        "rel_err",
        "62%",
        pct(m.url_fraction),
        relative_error(m.url_fraction, 0.62),
        band(scale, (0.16, 0.30), (0.24, 0.40)),
        "",
    ));
}

fn score_t3(r: &mut FidelityReport, m: &table3_terms::Table3Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "T3",
        "finance share of hijacker searches",
        "rel_err",
        "≈93%",
        pct(m.finance_share()),
        relative_error(m.finance_share(), 0.93),
        band(scale, (0.08, 0.15), (0.13, 0.22)),
        "paper value is Table 3 column mass (≈55.3 of 59.5); OCR garbles the frequency column",
    ));
    let top = m.top_term();
    let hit = if top == "wire transfer" { 0.0 } else { 1.0 };
    r.push(TargetScore::new(
        "T3",
        "most frequent term is `wire transfer`",
        "abs_err",
        "wire transfer (14.4%)",
        top,
        hit,
        band(scale, (0.0, 0.0), (0.0, 1.0)),
        "",
    ));
}

fn score_f3(r: &mut FidelityReport, m: &fig3_referrers::Fig3Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "F3",
        "blank referrer share",
        "rel_err",
        ">99%",
        pct(m.blank_fraction()),
        relative_error(m.blank_fraction(), 0.99),
        band(scale, (0.01, 0.03), (0.015, 0.05)),
        "email-driven traffic carries no referrer",
    ));
}

fn score_f4(r: &mut FidelityReport, m: &fig4_tlds::Fig4Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "F4",
        ".edu share of phished addresses",
        "rel_err",
        ">99%",
        pct(m.edu_fraction()),
        relative_error(m.edu_fraction(), 0.99),
        band(scale, (0.01, 0.04), (0.02, 0.06)),
        "skew emerges from directory harvesting × spam-filter asymmetry",
    ));
}

fn score_f5(r: &mut FidelityReport, m: &fig5_conversion::Fig5Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "F5",
        "mean submission rate",
        "rel_err",
        "13.7%",
        pct(m.mean()),
        relative_error(m.mean(), 0.137),
        band(scale, (0.25, 0.50), (0.40, 0.70)),
        "",
    ));
    r.push(TargetScore::new(
        "F5",
        "best page",
        "rel_err",
        "≈45%",
        pct(m.max()),
        relative_error(m.max(), 0.45),
        band(scale, (0.35, 0.65), (0.45, 0.80)),
        "excellent-quality clones",
    ));
    r.push(TargetScore::new(
        "F5",
        "worst page",
        "abs_err",
        "≈3%",
        pct(m.min()),
        (m.min() - 0.03).abs(),
        band(scale, (0.05, 0.10), (0.07, 0.12)),
        "bare username/password forms",
    ));
}

fn score_f6(r: &mut FidelityReport, m: &fig6_arrivals::Fig6Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "F6",
        "standard pages decay from first visit",
        "abs_err",
        "clear decay",
        if m.decaying { "decaying" } else { "not decaying" },
        if m.decaying { 0.0 } else { 1.0 },
        band(scale, (0.0, 0.0), (0.0, 0.0)),
        "first-quartile vs last-quartile hourly mean",
    ));
    match &m.outlier {
        Some(o) => {
            r.push(TargetScore::new(
                "F6",
                "outlier quiet period",
                "abs_err",
                "≈15 h",
                format!("{} h", o.quiet_hours),
                (o.quiet_hours as f64 - 15.0).abs(),
                band(scale, (4.0, 8.0), (5.0, 9.0)),
                "attackers testing the page pre-launch",
            ));
            r.push(TargetScore::new(
                "F6",
                "outlier diurnal modulation",
                "rel_err",
                "peak/trough > 1.5",
                format!("{:.1}", o.diurnal_ratio),
                if o.diurnal_ratio > 1.5 { 0.0 } else { 1.0 },
                band(scale, (0.0, 0.0), (0.0, 0.0)),
                "hour-of-day aggregation over the plateau",
            ));
        }
        None => r.push(TargetScore::new(
            "F6",
            "outlier quiet period",
            "abs_err",
            "≈15 h",
            "no outlier page",
            f64::INFINITY,
            band(scale, (4.0, 8.0), (5.0, 9.0)),
            "this run produced no high-volume outlier campaign",
        )),
    }
}

fn score_f7(r: &mut FidelityReport, m: &fig7_decoys::Fig7Measurement, scale: Scale) {
    // The figure's CDF is over *all* decoys (never-accessed ones never
    // reach 1.0), so the landmarks are compared pre-scaled.
    let d = max_abs_delta(&[(m.within_30m, 0.20), (m.within_7h, 0.50)]);
    r.push(TargetScore::new(
        "F7",
        "access CDF at 30 min / 7 h",
        "ks",
        "20% / 50%",
        format!("{} / {}", pct(m.within_30m), pct(m.within_7h)),
        d,
        band(scale, (0.12, 0.20), (0.18, 0.28)),
        "fractions of all decoys, including never-accessed ones",
    ));
    let never_ok = m.never > 0.0 && m.never < 0.6;
    r.push(TargetScore::new(
        "F7",
        "some decoys never accessed",
        "abs_err",
        "a fraction (suspensions)",
        pct(m.never),
        if never_ok { 0.0 } else { 1.0 },
        band(scale, (0.0, 0.0), (0.0, 0.0)),
        "dropbox suspension / takedown losses",
    ));
}

fn score_f8(r: &mut FidelityReport, m: &fig8_ip_discipline::Fig8Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "F8",
        "mean distinct accounts per hijacker IP per day",
        "rel_err",
        "9.6",
        format!("{:.1}", m.mean_attempts),
        relative_error(m.mean_attempts, 9.6),
        band(scale, (0.55, 0.75), (0.60, 0.80)),
        "crew-pool IPs (≥2 accounts/day); big crews saturate the cap, small ones do not",
    ));
    let over_cap = (m.max_attempts as f64 - 10.0).max(0.0);
    r.push(TargetScore::new(
        "F8",
        "per-IP daily account count stays under cap",
        "abs_err",
        "consistently under 10",
        format!("max {}", m.max_attempts),
        over_cap,
        band(scale, (1.0, 3.0), (1.0, 3.0)),
        "the crews' detection-avoidance guideline",
    ));
    r.push(TargetScore::new(
        "F8",
        "password correct (incl. variant retries)",
        "rel_err",
        "75%",
        pct(m.correct_frac),
        relative_error(m.correct_frac, 0.75),
        band(scale, (0.10, 0.20), (0.16, 0.28)),
        "",
    ));
}

fn score_f9(r: &mut FidelityReport, m: &fig9_recovery_latency::Fig9Measurement, scale: Scale) {
    let d = if m.latencies_hours.is_empty() {
        f64::INFINITY
    } else {
        ks_at_reference(&Ecdf::new(m.latencies_hours.clone()), &[(1.0, 0.22), (13.0, 0.50)])
    };
    r.push(TargetScore::new(
        "F9",
        "recovery CDF at 1 h / 13 h",
        "ks",
        "22% / 50%",
        format!("{} / {}", pct(m.fraction_within(1.0)), pct(m.fraction_within(13.0))),
        d,
        band(scale, (0.12, 0.22), (0.20, 0.30)),
        "clock starts at the risk system's flag",
    ));
}

fn score_f10(r: &mut FidelityReport, m: &fig10_recovery_methods::Fig10Measurement, scale: Scale) {
    let d = mean_abs_error(&[
        (m.sms.0, 0.8091),
        (m.email.0, 0.7457),
        (m.fallback.0, 0.1420),
    ]);
    r.push(TargetScore::new(
        "F10",
        "success-rate vector (SMS, email, fallback)",
        "l1",
        "80.91% / 74.57% / 14.20%",
        format!("{} / {} / {}", pct(m.sms.0), pct(m.email.0), pct(m.fallback.0)),
        d,
        band(scale, (0.08, 0.15), (0.12, 0.22)),
        "",
    ));
    let ordered = m.sms.0 > m.email.0 && m.email.0 > m.fallback.0;
    r.push(TargetScore::new(
        "F10",
        "channel ordering",
        "abs_err",
        "SMS > Email ≫ Fallback",
        if ordered { "ordered" } else { "out of order" },
        if ordered { 0.0 } else { 1.0 },
        band(scale, (0.0, 0.0), (0.0, 0.0)),
        "the §6.3 reliability ranking",
    ));
}

fn score_f11(r: &mut FidelityReport, m: &fig11_ip_origins::Fig11Measurement, scale: Scale) {
    let cn_my = m.countries.fraction_of("CN") + m.countries.fraction_of("MY");
    r.push(TargetScore::new(
        "F11",
        "CN + MY combined share",
        "rel_err",
        "dominant (≈45%)",
        pct(cn_my),
        relative_error(cn_my, 0.45),
        band(scale, (0.35, 0.55), (0.40, 0.60)),
        "proxies or true origin — the paper cannot tell either (OCR-garbled percentages)",
    ));
    r.push(TargetScore::new(
        "F11",
        "South Africa share",
        "rel_err",
        "≈10%",
        pct(m.countries.fraction_of("ZA")),
        relative_error(m.countries.fraction_of("ZA"), 0.10),
        band(scale, (0.60, 1.00), (0.70, 1.20)),
        "",
    ));
}

fn score_f12(r: &mut FidelityReport, m: &fig12_phone_origins::Fig12Measurement, scale: Scale) {
    // Collapse the measured mix onto the paper's tabulated labels.
    let tabulated = ["NG", "CI", "ZA"];
    let mut measured: Vec<(String, f64)> = tabulated
        .iter()
        .map(|l| (l.to_string(), m.countries.fraction_of(l)))
        .collect();
    let other: f64 = 1.0 - measured.iter().map(|(_, f)| f).sum::<f64>();
    measured.push(("Other".to_string(), other.max(0.0)));
    let paper: Vec<(String, f64)> = [
        ("NG", 0.357),
        ("CI", 0.338),
        ("ZA", 0.10),
        ("Other", 0.205),
    ]
    .iter()
    .map(|(l, f)| (l.to_string(), *f))
    .collect();
    let d = total_variation(&paper, &measured);
    r.push(TargetScore::new(
        "F12",
        "phone-country mix",
        "l1",
        "NG 35.7 / CI 33.8 / ZA 10 / other",
        format!(
            "NG {} / CI {} / ZA {}",
            pct(m.countries.fraction_of("NG")),
            pct(m.countries.fraction_of("CI")),
            pct(m.countries.fraction_of("ZA"))
        ),
        d,
        band(scale, (0.15, 0.30), (0.20, 0.35)),
        "deduped to distinct numbers; Fig 12 percentages are OCR-garbled in the source text",
    ));
    let cn_my = m.countries.fraction_of("CN") + m.countries.fraction_of("MY");
    r.push(TargetScore::new(
        "F12",
        "China/Malaysia absent",
        "abs_err",
        "0% (never used the tactic)",
        pct(cn_my),
        cn_my,
        band(scale, (0.0, 0.0), (0.0, 0.0)),
        "tactic adoption differed by crew",
    ));
}

fn score_sec5(r: &mut FidelityReport, m: &sec5_stats::Sec5Measurement, scale: Scale) {
    r.push(TargetScore::new(
        "SEC5",
        "mean account value assessment",
        "rel_err",
        "3 min",
        format!("{:.1} min", m.mean_profiling_min),
        relative_error(m.mean_profiling_min, 3.0),
        band(scale, (0.40, 0.70), (0.45, 0.75)),
        "time from login to exploit/abandon decision",
    ));
    let d = mean_abs_error(&[
        (m.starred_frac, 0.16),
        (m.drafts_frac, 0.11),
        (m.sent_frac, 0.05),
    ]);
    r.push(TargetScore::new(
        "SEC5",
        "folder-view probabilities (Starred, Drafts, Sent)",
        "l1",
        ".16 / .11 / .05",
        format!("{} / {} / {}", pct(m.starred_frac), pct(m.drafts_frac), pct(m.sent_frac)),
        d,
        band(scale, (0.06, 0.15), (0.10, 0.20)),
        "",
    ));
    r.push(TargetScore::new(
        "SEC5",
        "exploited accounts sending ≤5 messages",
        "rel_err",
        "65%",
        pct(m.small_batch_frac),
        relative_error(m.small_batch_frac, 0.65),
        band(scale, (0.18, 0.35), (0.28, 0.45)),
        "completed (uninterrupted) exploitations, like the paper's 575 cases",
    ));
    r.push(TargetScore::new(
        "SEC5",
        "customized (<10 recipient) exploitation",
        "abs_err",
        "≈6%",
        pct(m.custom_frac),
        (m.custom_frac - 0.06).abs(),
        band(scale, (0.05, 0.12), (0.08, 0.15)),
        "",
    ));
    r.push(TargetScore::new(
        "SEC5",
        "phishing share of hijack-sent messages",
        "rel_err",
        "35%",
        pct(m.phishing_share),
        relative_error(m.phishing_share, 0.35),
        band(scale, (0.30, 0.60), (0.50, 0.80)),
        "",
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_thirteen_quantitative_targets_plus_sec5() {
        let ids: Vec<&str> = registry().iter().map(|t| t.id).collect();
        for required in [
            "T1", "T2", "T3", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12",
            "SEC5",
        ] {
            assert!(ids.contains(&required), "registry missing {required}");
        }
        assert_eq!(ids.len(), 14, "unexpected registry entries");
        // Ids are unique.
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn registry_modules_point_into_this_crate() {
        for t in registry() {
            assert!(t.module.starts_with("mhw_experiments::"), "{}", t.module);
            assert!(!t.paper_claim.is_empty());
            assert!(!t.title.is_empty());
        }
    }
}
