//! Figure 5 — per-page credential-submission rate.
//!
//! §4.2: "13.7% of visitors complete the form … a huge variance in
//! success rate, with the highest page having a 45% success rate and
//! the lowest only 3%", with low rates traced to "very poorly executed"
//! pages.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, Ecdf};

pub fn run(ctx: &Context) -> ExperimentResult {
    // Per-page conversion, restricted to pages with enough traffic for
    // the ratio to be meaningful (the paper's pages all had substantial
    // logs).
    let rates: Vec<f64> = ctx
        .forms
        .pages
        .iter()
        .filter(|p| p.views() >= 30)
        .filter_map(|p| p.success_rate())
        .collect();
    let ecdf = Ecdf::new(rates.clone());
    let mean = ecdf.mean();
    let max = ecdf.max().unwrap_or(0.0);
    let min = ecdf.min().unwrap_or(0.0);

    let mut table = ComparisonTable::new("Figure 5 — page conversion rates");
    table.push(crate::context::frac_row(
        "mean submission rate",
        0.137,
        mean,
        ctx.tol(0.03, 0.05),
    ));
    table.push(Comparison::new(
        "best page",
        "≈45%",
        crate::context::pct(max),
        (0.28..=0.60).contains(&max),
        "excellent-quality clones",
    ));
    table.push(Comparison::new(
        "worst page",
        "≈3%",
        crate::context::pct(min),
        min <= 0.10,
        "bare username/password forms",
    ));

    // Render the per-page panel as a sorted rate list.
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut rendering = format!(
        "{} pages with ≥30 views; mean {:.1}%, range {:.1}%–{:.1}%\n",
        rates.len(),
        mean * 100.0,
        min * 100.0,
        max * 100.0
    );
    rendering.push_str("Per-page success rate (sorted):\n");
    for (i, r) in sorted.iter().enumerate() {
        rendering.push_str(&format!(
            "  page {:>3}  {:<50} {:5.1}%\n",
            i,
            "#".repeat((r * 100.0) as usize),
            r * 100.0
        ));
    }
    ExperimentResult { table, rendering }
}
