//! Figure 5 — per-page credential-submission rate.
//!
//! §4.2: "13.7% of visitors complete the form … a huge variance in
//! success rate, with the highest page having a 45% success rate and
//! the lowest only 3%", with low rates traced to "very poorly executed"
//! pages.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{Comparison, ComparisonTable, Ecdf};

/// Structured Figure 5 measurement: per-page credential-submission
/// ("conversion") rates.
///
/// ```
/// use mhw_experiments::fig5_conversion::Fig5Measurement;
/// let m = Fig5Measurement { rates: vec![0.03, 0.10, 0.45] };
/// assert!((m.mean() - 0.1933).abs() < 1e-3);
/// assert_eq!(m.min(), 0.03);
/// assert_eq!(m.max(), 0.45);
/// ```
#[derive(Debug, Clone)]
pub struct Fig5Measurement {
    /// Success rate per page with ≥30 views, unsorted.
    pub rates: Vec<f64>,
}

impl Fig5Measurement {
    /// Mean conversion rate (the paper's 13.7%).
    pub fn mean(&self) -> f64 {
        Ecdf::new(self.rates.clone()).mean()
    }

    /// Worst page (the paper's ≈3%; 0.0 when no page qualified).
    pub fn min(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Best page (the paper's ≈45%).
    pub fn max(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }
}

/// Extract the Figure 5 measurement: per-page conversion, restricted to
/// pages with enough traffic for the ratio to be meaningful (the
/// paper's pages all had substantial logs).
pub fn measure(ctx: &Context) -> Fig5Measurement {
    Fig5Measurement {
        rates: ctx
            .forms
            .pages
            .iter()
            .filter(|p| p.views() >= 30)
            .filter_map(|p| p.success_rate())
            .collect(),
    }
}

/// Run the Figure 5 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let rates = m.rates.clone();
    let mean = m.mean();
    let max = m.max();
    let min = m.min();

    let mut table = ComparisonTable::new("Figure 5 — page conversion rates");
    table.push(crate::context::frac_row(
        "mean submission rate",
        0.137,
        mean,
        ctx.tol(0.03, 0.05),
    ));
    table.push(Comparison::new(
        "best page",
        "≈45%",
        crate::context::pct(max),
        (0.28..=0.60).contains(&max),
        "excellent-quality clones",
    ));
    table.push(Comparison::new(
        "worst page",
        "≈3%",
        crate::context::pct(min),
        min <= 0.10,
        "bare username/password forms",
    ));

    // Render the per-page panel as a sorted rate list.
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut rendering = format!(
        "{} pages with ≥30 views; mean {:.1}%, range {:.1}%–{:.1}%\n",
        rates.len(),
        mean * 100.0,
        min * 100.0,
        max * 100.0
    );
    rendering.push_str("Per-page success rate (sorted):\n");
    for (i, r) in sorted.iter().enumerate() {
        rendering.push_str(&format!(
            "  page {:>3}  {:<50} {:5.1}%\n",
            i,
            "#".repeat((r * 100.0) as usize),
            r * 100.0
        ));
    }
    ExperimentResult { table, rendering }
}
