//! Figure 3 — HTTP referrers on phishing-page traffic.
//!
//! §4.2: ">99% of those referrers were blank … most of the remaining 1%
//! of visitors arrived from various webmail providers", with the home
//! provider's referrers traced to a legacy phone frontend.

use crate::context::{Context, ExperimentResult};
use mhw_analysis::{bar_chart, Breakdown, Comparison, ComparisonTable};
use mhw_netmodel::referrer::Referrer;

/// Structured Figure 3 measurement: referrer mix over every HTTP
/// request the form-campaign pages logged.
#[derive(Debug, Clone)]
pub struct Fig3Measurement {
    /// Total HTTP requests across all pages.
    pub total: usize,
    /// Requests with a blank referrer.
    pub blank: usize,
    /// Non-blank referrer sources, counted.
    pub nonblank: Breakdown,
}

impl Fig3Measurement {
    /// Share of requests carrying no referrer (the paper's ">99%").
    pub fn blank_fraction(&self) -> f64 {
        self.blank as f64 / self.total.max(1) as f64
    }
}

/// Extract the Figure 3 measurement from the form-campaign traffic.
pub fn measure(ctx: &Context) -> Fig3Measurement {
    let mut blank = 0usize;
    let mut total = 0usize;
    let mut nonblank = Breakdown::new();
    for page in &ctx.forms.pages {
        for req in &page.http_log {
            total += 1;
            match req.referrer {
                Referrer::Blank => blank += 1,
                Referrer::From(provider) => nonblank.add(provider.label()),
            }
        }
    }
    Fig3Measurement { total, blank, nonblank }
}

/// Run the Figure 3 experiment: measurement plus paper comparison.
pub fn run(ctx: &Context) -> ExperimentResult {
    let m = measure(ctx);
    let (total, nonblank) = (m.total, &m.nonblank);
    let blank_frac = m.blank_fraction();

    let mut table = ComparisonTable::new("Figure 3 — HTTP referrers");
    table.push(Comparison::new(
        "blank referrers",
        ">99%",
        crate::context::pct(blank_frac),
        blank_frac > 0.99,
        "email-driven traffic carries no referrer",
    ));
    table.push(Comparison::new(
        "non-blank referrers exist",
        "~1% from webmail frontends",
        format!("{} requests across {} sources", nonblank.total(), nonblank.distinct()),
        nonblank.total() > 0,
        "Figure 3's long tail",
    ));
    // Ordering: generic webmail tops the leaked-referrer list.
    let rows = nonblank.rows();
    let top_is_generic = rows
        .first()
        .map(|(l, _, _)| l == "Webmail Generic")
        .unwrap_or(false);
    table.push(Comparison::new(
        "largest non-blank source",
        "Webmail Generic",
        rows.first().map(|(l, _, _)| l.clone()).unwrap_or_default(),
        top_is_generic || ctx.scale == crate::context::Scale::Quick,
        "Figure 3 top bar",
    ));

    let rendering = format!(
        "{} total requests, {:.3}% blank.\nNon-blank referrer breakdown:\n{}",
        total,
        blank_frac * 100.0,
        bar_chart(nonblank, 40)
    );
    ExperimentResult { table, rendering }
}
