//! §8 — defense evaluation: the FP/FN trade-off and signal ablations.
//!
//! §8.1: "We have to carefully tune the aggressiveness of our system to
//! balance acting upon signals that might indicate manual hijacking
//! (but potentially inconveniencing legitimate users) against the risk
//! of harm done by allowing hijackings to occur." This experiment
//! sweeps the challenge threshold and ablates individual risk signals,
//! quantifying exactly that trade-off in the simulated world.

use crate::context::{Context, ExperimentResult, Scale};
use mhw_analysis::{Comparison, ComparisonTable};
use mhw_core::{ScenarioBuilder, ScenarioConfig};
use mhw_defense::RiskWeights;
use mhw_identity::ChallengeKind;
use mhw_types::Actor;

struct Point {
    threshold: f64,
    hijack_success: f64,
    owner_challenge_rate: f64,
    /// Fraction of correct-password hijacker logins that were
    /// challenged or blocked (the deterministic defense-contact rate).
    hijacker_friction: f64,
    incidents: u64,
}

fn run_world(ctx: &Context, threshold: f64, ablate: Option<&str>) -> Point {
    let (users, days) = match ctx.scale {
        Scale::Quick => (300, 8),
        Scale::Full => (700, 14),
    };
    let mut eco = ScenarioBuilder::small_test(ctx.seed ^ (threshold * 1000.0) as u64)
        .population(users)
        .days(days)
        .lures_per_user_day(2.0)
        .build();
    eco.login.engine_mut().challenge_threshold = threshold;
    if let Some(signal) = ablate {
        eco.login.engine_mut().weights = RiskWeights::default().without(signal);
    }
    eco.run();
    let sessions = eco.sessions().iter().filter(|s| s.password_eventually_correct).count();
    let hijack_success = eco.sessions().iter().filter(|s| s.logged_in).count() as f64
        / sessions.max(1) as f64;
    let owner_challenge_rate =
        eco.stats.organic_challenges as f64 / eco.stats.organic_logins.max(1) as f64;
    let (crew_contact, crew_total) = eco.login_log.records().fold((0u64, 0u64), |(c, t), r| {
        if matches!(r.actor, Actor::Hijacker(_)) && r.password_correct {
            let friction = r.challenge.is_some()
                || matches!(r.outcome, mhw_identity::LoginOutcome::Blocked);
            (c + friction as u64, t + 1)
        } else {
            (c, t)
        }
    });
    Point {
        threshold,
        hijack_success,
        owner_challenge_rate,
        hijacker_friction: crew_contact as f64 / crew_total.max(1) as f64,
        incidents: eco.stats.incidents,
    }
}

/// Run the §8 defense evaluation: threshold sweep plus ablations.
pub fn run(ctx: &Context) -> ExperimentResult {
    // Threshold sweep (the ROC-style curve).
    let thresholds = [0.15, 0.30, 0.50, 0.80];
    let sweep: Vec<Point> = thresholds
        .iter()
        .map(|t| run_world(ctx, *t, None))
        .collect();

    let mut table = ComparisonTable::new("§8 — defense evaluation");
    let strict = &sweep[0];
    let lax = &sweep[sweep.len() - 1];
    table.push(Comparison::new(
        "stricter threshold ⇒ fewer hijack successes",
        "aggressiveness stops hijackings",
        format!(
            "success {:.0}% @t={} vs {:.0}% @t={}",
            strict.hijack_success * 100.0,
            strict.threshold,
            lax.hijack_success * 100.0,
            lax.threshold
        ),
        strict.hijack_success <= lax.hijack_success,
        "FN side of the §8.1 balance",
    ));
    table.push(Comparison::new(
        "stricter threshold ⇒ more legitimate challenges",
        "false positives are the price",
        format!(
            "owner challenge rate {:.1}% vs {:.1}%",
            strict.owner_challenge_rate * 100.0,
            lax.owner_challenge_rate * 100.0
        ),
        strict.owner_challenge_rate >= lax.owner_challenge_rate,
        "FP side of the §8.1 balance",
    ));

    // Ablation: removing geo signals helps hijackers. Averaged over two
    // worlds to damp run-to-run noise.
    let avg = |ablate: Option<&'static str>| -> Point {
        let a = run_world(ctx, 0.28, ablate);
        let b = run_world(ctx, 0.281, ablate); // different seed derivation
        Point {
            threshold: 0.28,
            hijack_success: (a.hijack_success + b.hijack_success) / 2.0,
            owner_challenge_rate: (a.owner_challenge_rate + b.owner_challenge_rate) / 2.0,
            hijacker_friction: (a.hijacker_friction + b.hijacker_friction) / 2.0,
            incidents: a.incidents + b.incidents,
        }
    };
    let baseline = avg(None);
    let no_travel = avg(Some("impossible_travel"));
    let no_country = avg(Some("new_country"));
    table.push(Comparison::new(
        "ablating new_country weakens the defense",
        "geo signals carry weight",
        format!(
            "hijacker friction {:.0}% → {:.0}%",
            baseline.hijacker_friction * 100.0,
            no_country.hijacker_friction * 100.0
        ),
        no_country.hijacker_friction < baseline.hijacker_friction,
        "challenge/block rate on correct-password hijacker logins",
    ));

    // §8.2: "Using a second authentication factor … has proven the best
    // client-side defense against hijacking." Compare hijack success in
    // a world without 2FA against one where most users enrolled.
    let second_factor = {
        let none = ScenarioBuilder::small_test(ctx.seed ^ 0x2f)
            .population(300)
            .days(8)
            .lures_per_user_day(2.0)
            .configure(|c| c.population.twofactor_rate = 0.0)
            .into_config();
        let mut broad = none.clone();
        broad.population.twofactor_rate = 0.60;
        let mut keys = none.clone();
        keys.population.security_key_rate = 0.60;
        let rate = |config: ScenarioConfig| {
            let eco = ScenarioBuilder::new(config).run();
            let attempts = eco
                .sessions()
                .iter()
                .filter(|s| s.password_eventually_correct)
                .count()
                .max(1);
            eco.sessions().iter().filter(|s| s.logged_in).count() as f64 / attempts as f64
        };
        (rate(none), rate(broad), rate(keys))
    };
    table.push(Comparison::new(
        "second factor is the best client-side defense",
        "large hijack-success reduction",
        format!(
            "success {:.0}% (no 2FA) → {:.0}% (60% enrolled)",
            second_factor.0 * 100.0,
            second_factor.1 * 100.0
        ),
        second_factor.1 < second_factor.0,
        "§8.2; enrolled accounts require possession of the factor",
    ));
    table.push(Comparison::new(
        "security keys (future work) are at least as strong",
        "unphishable, unswappable factor",
        format!(
            "success {:.0}% (60% with keys) vs {:.0}% (60% phone 2FA)",
            second_factor.2 * 100.0,
            second_factor.1 * 100.0
        ),
        second_factor.2 <= second_factor.1 + 0.05,
        "§8.2's gnubby reference; crews can neither pass nor swap a key",
    ));

    // Challenge-channel asymmetry from the main run (§8.2: phone
    // possession beats knowledge questions).
    let eco = &ctx.eco_2012;
    let mut sms_served = 0usize;
    let mut sms_passed = 0usize;
    let mut knowledge_served = 0usize;
    let mut knowledge_passed = 0usize;
    for r in eco.login_log.records() {
        if !matches!(r.actor, Actor::Hijacker(_)) {
            continue;
        }
        if let Some(c) = r.challenge {
            match c.kind {
                ChallengeKind::SmsCode => {
                    sms_served += 1;
                    sms_passed += c.passed as usize;
                }
                ChallengeKind::Knowledge => {
                    knowledge_served += 1;
                    knowledge_passed += c.passed as usize;
                }
            }
        }
    }
    let sms_rate = sms_passed as f64 / sms_served.max(1) as f64;
    let knowledge_rate = knowledge_passed as f64 / knowledge_served.max(1) as f64;
    table.push(Comparison::new(
        "hijackers cannot pass SMS possession",
        "0%",
        crate::context::pct(sms_rate),
        sms_rate == 0.0,
        format!("{sms_served} SMS challenges served to hijackers"),
    ));
    table.push(Comparison::new(
        "knowledge challenges are guessable",
        ">0% (researchable answers)",
        crate::context::pct(knowledge_rate),
        knowledge_served == 0 || knowledge_rate > 0.0,
        format!("{knowledge_served} knowledge challenges served"),
    ));

    let mut rendering = String::from("Threshold sweep (hijack success vs owner challenges):\n");
    for p in &sweep {
        rendering.push_str(&format!(
            "  t={:.2}  hijack-success {:5.1}%  owner-challenged {:5.2}%  incidents {}\n",
            p.threshold,
            p.hijack_success * 100.0,
            p.owner_challenge_rate * 100.0,
            p.incidents
        ));
    }
    rendering.push_str(&format!(
        "Ablations @t=0.28 (hijacker friction): baseline {:.0}%, -impossible_travel {:.0}%, -new_country {:.0}%\n",
        baseline.hijacker_friction * 100.0,
        no_travel.hijacker_friction * 100.0,
        no_country.hijacker_friction * 100.0
    ));
    ExperimentResult { table, rendering }
}
