//! Strict flag parsing shared by the experiment binaries.
//!
//! The binaries take `--name value` pairs and boolean `--name` flags.
//! Parsing is deliberately unforgiving: a flag with a missing or
//! unparseable value is a [`UsageError`] naming the offending flag, and
//! the binaries exit with status 2 instead of silently falling back to
//! a default (`--shards foo` quietly meaning "1 shard" cost real
//! debugging time).

use std::fmt;

/// A command-line usage mistake: the rendered message names the flag
/// and the value that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usage error: {}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// True when the boolean flag `name` appears anywhere in `args`.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The value following flag `name`, parsed as `T`.
///
/// * flag absent → `Ok(None)`;
/// * flag present with a parseable value → `Ok(Some(v))`;
/// * flag present with a missing or unparseable value → `Err`, naming
///   the flag and the offending text.
pub fn value<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, UsageError> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(UsageError(format!("{name} requires a value")));
    };
    match raw.parse() {
        Ok(v) => Ok(Some(v)),
        Err(_) => Err(UsageError(format!(
            "invalid value for {name}: {raw:?} (expected {})",
            std::any::type_name::<T>()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert_eq!(value::<u64>(&args(&["--days", "3"]), "--seed"), Ok(None));
        assert!(!flag(&args(&["--days", "3"]), "--quick"));
    }

    #[test]
    fn present_flag_parses() {
        assert_eq!(value::<u64>(&args(&["--seed", "42"]), "--seed"), Ok(Some(42)));
        assert!(flag(&args(&["--quick"]), "--quick"));
    }

    #[test]
    fn bad_value_names_the_flag() {
        let err = value::<u16>(&args(&["--shards", "foo"]), "--shards").unwrap_err();
        assert!(err.0.contains("--shards"), "error must name the flag: {err}");
        assert!(err.0.contains("foo"), "error must quote the value: {err}");
    }

    #[test]
    fn missing_value_names_the_flag() {
        let err = value::<u64>(&args(&["--seed"]), "--seed").unwrap_err();
        assert!(err.0.contains("--seed"));
    }
}
