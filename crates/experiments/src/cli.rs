//! Strict flag parsing shared by the experiment binaries.
//!
//! The binaries take `--name value` pairs and boolean `--name` flags.
//! Parsing is deliberately unforgiving: a flag with a missing or
//! unparseable value is a [`UsageError`] naming the offending flag, and
//! the binaries exit with status 2 instead of silently falling back to
//! a default (`--shards foo` quietly meaning "1 shard" cost real
//! debugging time).

use std::fmt;

/// A command-line usage mistake: the rendered message names the flag
/// and the value that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usage error: {}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Why a binary is exiting nonzero: usage mistakes (exit 2) vs runtime
/// failures (exit 1). Shared by `repro`, `scenario` and `serve` so the
/// exit-code contract stays in one place.
pub enum Failure {
    /// Bad flags: rendered with the usage string, exit status 2.
    Usage(UsageError),
    /// Anything that went wrong after parsing: exit status 1.
    Runtime(String),
}

impl From<UsageError> for Failure {
    fn from(e: UsageError) -> Self {
        Failure::Usage(e)
    }
}

/// Run a binary body under the shared exit-code contract: usage errors
/// print the error plus `usage` and exit 2; runtime errors print
/// `error: …` and exit 1; success exits 0.
pub fn run_main(usage: &str, body: impl FnOnce(&[String]) -> Result<(), Failure>) -> ! {
    let args: Vec<String> = std::env::args().collect();
    match body(&args) {
        Ok(()) => std::process::exit(0),
        Err(Failure::Usage(e)) => {
            eprintln!("{e}");
            eprintln!("{usage}");
            std::process::exit(2);
        }
        Err(Failure::Runtime(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// True when the boolean flag `name` appears anywhere in `args`.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The value following flag `name`, parsed as a comma-separated list
/// of `T` (e.g. `--threads 1,4,8`).
///
/// * flag absent → `Ok(None)`;
/// * empty list or any unparseable element → `Err` naming the flag.
pub fn value_list<T: std::str::FromStr>(
    args: &[String],
    name: &str,
) -> Result<Option<Vec<T>>, UsageError> {
    let Some(raw) = value::<String>(args, name)? else {
        return Ok(None);
    };
    let mut out = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.parse() {
            Ok(v) => out.push(v),
            Err(_) => {
                return Err(UsageError(format!(
                    "invalid value for {name}: {part:?} in {raw:?} (expected comma-separated {})",
                    std::any::type_name::<T>()
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(UsageError(format!("{name} requires at least one value")));
    }
    Ok(Some(out))
}

/// The value following flag `name`, parsed as `T`.
///
/// * flag absent → `Ok(None)`;
/// * flag present with a parseable value → `Ok(Some(v))`;
/// * flag present with a missing or unparseable value → `Err`, naming
///   the flag and the offending text.
pub fn value<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, UsageError> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(UsageError(format!("{name} requires a value")));
    };
    match raw.parse() {
        Ok(v) => Ok(Some(v)),
        Err(_) => Err(UsageError(format!(
            "invalid value for {name}: {raw:?} (expected {})",
            std::any::type_name::<T>()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert_eq!(value::<u64>(&args(&["--days", "3"]), "--seed"), Ok(None));
        assert!(!flag(&args(&["--days", "3"]), "--quick"));
    }

    #[test]
    fn present_flag_parses() {
        assert_eq!(value::<u64>(&args(&["--seed", "42"]), "--seed"), Ok(Some(42)));
        assert!(flag(&args(&["--quick"]), "--quick"));
    }

    #[test]
    fn bad_value_names_the_flag() {
        let err = value::<u16>(&args(&["--shards", "foo"]), "--shards").unwrap_err();
        assert!(err.0.contains("--shards"), "error must name the flag: {err}");
        assert!(err.0.contains("foo"), "error must quote the value: {err}");
    }

    #[test]
    fn missing_value_names_the_flag() {
        let err = value::<u64>(&args(&["--seed"]), "--seed").unwrap_err();
        assert!(err.0.contains("--seed"));
    }

    #[test]
    fn value_list_parses_comma_separated() {
        let v = value_list::<usize>(&args(&["--threads", "1,4,8"]), "--threads").unwrap();
        assert_eq!(v, Some(vec![1, 4, 8]));
        assert_eq!(value_list::<usize>(&args(&["--x", "1"]), "--threads").unwrap(), None);
        // Whitespace and trailing commas are tolerated.
        let v = value_list::<usize>(&args(&["--threads", "1, 2,"]), "--threads").unwrap();
        assert_eq!(v, Some(vec![1, 2]));
    }

    #[test]
    fn value_list_rejects_bad_elements() {
        let err = value_list::<usize>(&args(&["--threads", "1,x,8"]), "--threads").unwrap_err();
        assert!(err.0.contains("--threads"), "{err}");
        assert!(err.0.contains('x'), "{err}");
        let err = value_list::<usize>(&args(&["--threads", ","]), "--threads").unwrap_err();
        assert!(err.0.contains("at least one"), "{err}");
    }

    #[test]
    fn usage_error_converts_into_usage_failure() {
        let f: Failure = UsageError("bad".into()).into();
        assert!(matches!(f, Failure::Usage(_)));
    }
}
