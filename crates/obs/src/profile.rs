//! Per-phase wall-clock profiling for the sharded engine.
//!
//! A [`PhaseProfiler`] accumulates how much real time each coarse
//! engine phase consumed — world build, per-shard day steps, the
//! single-threaded barrier exchange, the final log merge. The rendered
//! [`EngineProfile`] is what `benches/engine_scaling.rs` serializes
//! into `BENCH_obs.json`.
//!
//! Phase timings are wall-clock and therefore vary run to run; like
//! spans they are kept out of the deterministic
//! [`RunReport`](crate::RunReport).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Accumulated wall-clock time for one named phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name, e.g. `"barrier_exchange"`.
    pub phase: String,
    /// How many times the phase ran.
    pub calls: u64,
    /// Total wall-clock milliseconds across all calls.
    pub total_ms: f64,
    /// Mean wall-clock milliseconds per call.
    pub mean_ms: f64,
}

/// A complete profile of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Logical shard count of the profiled run.
    pub n_shards: u16,
    /// Worker threads used.
    pub workers: usize,
    /// Per-phase timings, in first-recorded order.
    pub phases: Vec<PhaseTiming>,
    /// Per-worker busy milliseconds during the build phase, indexed by
    /// worker id (the coordinating thread is worker 0). Shows how
    /// evenly work stealing spread world construction; empty when the
    /// engine did not record it.
    pub build_worker_ms: Vec<f64>,
}

/// Accumulates wall-clock durations per phase, preserving the order
/// phases were first recorded in.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<(&'static str, u64, Duration)>,
    build_workers: Vec<Duration>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` and charge its duration to `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed());
        out
    }

    /// Charge an externally measured duration to `phase`.
    pub fn record(&mut self, phase: &'static str, elapsed: Duration) {
        match self.phases.iter_mut().find(|(name, _, _)| *name == phase) {
            Some((_, calls, total)) => {
                *calls += 1;
                *total += elapsed;
            }
            None => self.phases.push((phase, 1, elapsed)),
        }
    }

    /// Record how long each worker spent busy during the build phase
    /// (coordinator first), as reported by the engine's worker pool.
    pub fn set_build_workers(&mut self, busy: Vec<Duration>) {
        self.build_workers = busy;
    }

    /// Total time charged to `phase` so far, if it ever ran.
    pub fn total(&self, phase: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(name, _, _)| *name == phase)
            .map(|(_, _, total)| *total)
    }

    /// Render the accumulated timings into an [`EngineProfile`].
    pub fn report(&self, n_shards: u16, workers: usize) -> EngineProfile {
        EngineProfile {
            n_shards,
            workers,
            phases: self
                .phases
                .iter()
                .map(|(phase, calls, total)| {
                    let total_ms = total.as_secs_f64() * 1e3;
                    PhaseTiming {
                        phase: (*phase).to_string(),
                        calls: *calls,
                        total_ms,
                        mean_ms: if *calls > 0 { total_ms / *calls as f64 } else { 0.0 },
                    }
                })
                .collect(),
            build_worker_ms: self
                .build_workers
                .iter()
                .map(|busy| busy.as_secs_f64() * 1e3)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_calls() {
        let mut p = PhaseProfiler::new();
        let a = p.time("step", || 1 + 1);
        assert_eq!(a, 2);
        p.time("step", || ());
        p.time("merge", || ());
        let report = p.report(4, 2);
        assert_eq!(report.n_shards, 4);
        assert_eq!(report.workers, 2);
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].phase, "step");
        assert_eq!(report.phases[0].calls, 2);
        assert_eq!(report.phases[1].phase, "merge");
        assert_eq!(report.phases[1].calls, 1);
    }

    #[test]
    fn record_preserves_first_seen_order() {
        let mut p = PhaseProfiler::new();
        p.record("b", Duration::from_millis(3));
        p.record("a", Duration::from_millis(1));
        p.record("b", Duration::from_millis(2));
        let report = p.report(1, 1);
        let names: Vec<&str> = report.phases.iter().map(|t| t.phase.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(p.total("b"), Some(Duration::from_millis(5)));
        assert_eq!(p.total("missing"), None);
        assert!((report.phases[0].mean_ms - 2.5).abs() < 1e-9);
    }

    #[test]
    fn build_worker_timings_render_in_ms() {
        let mut p = PhaseProfiler::new();
        p.record("build", Duration::from_millis(10));
        p.set_build_workers(vec![Duration::from_millis(6), Duration::from_millis(4)]);
        let report = p.report(4, 2);
        assert_eq!(report.build_worker_ms.len(), 2);
        assert!((report.build_worker_ms[0] - 6.0).abs() < 1e-9);
        assert!((report.build_worker_ms[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let mut p = PhaseProfiler::new();
        p.record("step", Duration::from_millis(4));
        let profile = p.report(8, 4);
        let json = serde_json::to_string(&profile).unwrap();
        let back: EngineProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }
}
