//! Lightweight span tracing into a ring buffer.
//!
//! The [`span!`](crate::span!) macro opens a wall-clock span over a
//! named region; when the returned guard drops, the span's duration is
//! recorded into the process-wide [`TraceSink`] — a fixed-capacity ring
//! buffer that overwrites its oldest entries, so tracing a long run
//! costs constant memory and never blocks the traced code for more than
//! one short mutex acquisition per span.
//!
//! Spans measure the *hardware*, not the scenario: durations are real
//! nanoseconds and vary run to run. They are therefore kept strictly
//! out of the deterministic [`RunReport`](crate::RunReport) — drain
//! them for debugging or perf archaeology with [`TraceSink::drain`].
//!
//! ```
//! use mhw_obs::{span, TraceSink};
//!
//! {
//!     let _guard = span!("demo.work", 0);
//!     // ... the region being timed ...
//! } // guard drops: span recorded
//! let spans = TraceSink::global().drain();
//! assert!(spans.iter().any(|s| s.name == "demo.work"));
//! ```

use mhw_types::ShardId;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity: enough for every engine phase of a long run
/// without ever growing.
const DEFAULT_CAPACITY: usize = 4096;

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Region name, e.g. `"engine.shard_day"`.
    pub name: &'static str,
    /// Logical shard the span was recorded for (0 when not meaningful).
    pub shard: ShardId,
    /// Start offset in nanoseconds from the first use of the sink.
    pub started_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

/// A fixed-capacity ring buffer of [`SpanRecord`]s.
#[derive(Debug)]
pub struct TraceSink {
    ring: Mutex<Ring>,
    epoch: Instant,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
    /// Total spans ever recorded (including overwritten ones).
    recorded: u64,
}

impl TraceSink {
    /// A fresh sink with the given capacity (tests; most code uses
    /// [`TraceSink::global`]).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity: capacity.max(1),
                recorded: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// The process-wide sink the [`span!`](crate::span!) macro records
    /// into.
    pub fn global() -> &'static TraceSink {
        static GLOBAL: OnceLock<TraceSink> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceSink::with_capacity(DEFAULT_CAPACITY))
    }

    /// Record a finished span.
    pub fn record(&self, name: &'static str, shard: ShardId, started: Instant, ended: Instant) {
        let started_ns = started.duration_since(self.epoch).as_nanos() as u64;
        let duration_ns = ended.duration_since(started).as_nanos() as u64;
        let mut ring = self.ring.lock().expect("trace sink poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(SpanRecord { name, shard, started_ns, duration_ns });
        ring.recorded += 1;
    }

    /// Take every buffered span, oldest first, leaving the sink empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut ring = self.ring.lock().expect("trace sink poisoned");
        ring.buf.drain(..).collect()
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace sink poisoned").buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded, including ones the ring has since
    /// overwritten — the overwrite count is `recorded() - len()` drained.
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("trace sink poisoned").recorded
    }
}

/// RAII guard created by [`span!`](crate::span!): records the span into
/// a sink when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    shard: ShardId,
    start: Instant,
    sink: &'static TraceSink,
}

impl SpanGuard {
    /// Open a span on the global sink.
    pub fn enter(name: &'static str, shard: ShardId) -> Self {
        SpanGuard { name, shard, start: Instant::now(), sink: TraceSink::global() }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.sink.record(self.name, self.shard, self.start, Instant::now());
    }
}

/// Open a wall-clock span over the enclosing scope.
///
/// `span!("name")` records for shard 0; `span!("name", shard)` tags the
/// span with a logical shard id. The span ends when the returned guard
/// is dropped — bind it (`let _guard = span!(…)`) or it ends
/// immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name, 0)
    };
    ($name:expr, $shard:expr) => {
        $crate::trace::SpanGuard::enter($name, $shard)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let sink = TraceSink::with_capacity(3);
        let t = Instant::now();
        for name in ["a", "b", "c", "d"] {
            sink.record(name, 0, t, t);
        }
        assert_eq!(sink.recorded(), 4);
        let names: Vec<&str> = sink.drain().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c", "d"], "oldest span evicted first");
        assert!(sink.is_empty());
    }

    #[test]
    fn guard_records_on_drop() {
        {
            let _g = crate::span!("test.span", 3);
            std::thread::yield_now();
        }
        let spans = TraceSink::global().drain();
        let span = spans.iter().find(|s| s.name == "test.span").expect("span recorded");
        assert_eq!(span.shard, 3);
    }

    #[test]
    fn spans_carry_monotonic_offsets() {
        let sink = TraceSink::with_capacity(8);
        let a = Instant::now();
        let b = Instant::now();
        sink.record("first", 0, a, b);
        sink.record("second", 1, b, Instant::now());
        let spans = sink.drain();
        assert!(spans[0].started_ns <= spans[1].started_ns);
    }
}
