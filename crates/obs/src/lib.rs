//! # mhw-obs
//!
//! The simulator's observability layer: every way to see *inside* a run
//! without changing what the run produces.
//!
//! Three instruments, three different truths:
//!
//! * [`Registry`] — exact, deterministic **metrics**: atomic counters,
//!   gauges and fixed-bucket latency histograms keyed by a static
//!   [`MetricId`]. Every value is a pure function of the simulated
//!   events, measured in simulated time, so per-shard registries merge
//!   into a [`MetricsSnapshot`] that is byte-identical at any worker
//!   count. These feed the end-of-run [`RunReport`].
//! * [`trace`] — approximate, wall-clock **spans**: the
//!   [`span!`] macro records how long a named region really took into a
//!   fixed-capacity ring buffer. Spans are a debugging aid; they never
//!   enter the deterministic report.
//! * [`PhaseProfiler`] — wall-clock **phase timings** for the sharded
//!   engine's coarse phases (world build, shard step, barrier drain,
//!   log merge), aggregated into an [`EngineProfile`] that the bench
//!   harness serializes for the perf trajectory.
//!
//! The split matters: metrics are part of the engine's determinism
//! contract (`tests/observability.rs` pins report bytes across 1/2/4/8
//! workers), while spans and phase timings are explicitly allowed to
//! vary run to run — they measure the hardware, not the scenario.
//!
//! A fourth artifact rides on the same determinism contract: the
//! [`FidelityReport`] scorecard (`repro --validate`) that grades the
//! regenerated figures and tables against the paper's published
//! numbers — see [`fidelity`].

#![deny(missing_docs)]

pub mod fidelity;
pub mod metric;
pub mod profile;
pub mod report;
pub mod serve;
pub mod snapshot;
pub mod sweep;
pub mod trace;

pub use fidelity::{FidelityReport, FidelityStatus, TargetScore, Tolerance, FIDELITY_SCHEMA};
pub use metric::{buckets, MetricId, Registry};
pub use profile::{EngineProfile, PhaseProfiler, PhaseTiming};
pub use report::RunReport;
pub use serve::{ServeAvailability, ServeReport, ServeRun, ARM_CLEAN, SERVE_SCHEMA};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
pub use sweep::{SweepCellRow, SweepReport, SWEEP_SCHEMA};
pub use trace::{SpanGuard, SpanRecord, TraceSink};

/// Logical CPUs on this host, as `std::thread::available_parallelism`
/// reports them (1 when the count cannot be determined). Hardware-bound
/// artifacts ([`FidelityReport`], [`SweepReport`], `BENCH_scale.json`)
/// record this so a reader can judge whether wall-clock numbers were
/// taken on an oversubscribed machine.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
