//! The posture-sweep benchmark report (`BENCH_sweep.json`).
//!
//! The `sweep` binary fans a defense × recovery posture grid over
//! forked continuations of one shared snapshot (see
//! `mhw_bench::sweep::fork_sweep`) and serializes the per-cell outcomes
//! here. Unlike `BENCH_serve.json`, almost everything in a
//! [`SweepReport`] is deterministic: for a fixed scenario, seed and
//! grid, every cell's `digest` and every count is byte-identical across
//! reruns and pool widths — that is what `sweep --smoke` double-runs
//! and what `tests/recovery_sweep.rs` pins. Only the two wall-clock
//! timing fields (and [`SweepReport::host_parallelism`], which exists
//! to contextualize them) measure the hardware.

use serde::{Deserialize, Serialize};

/// Identifies the sweep-report layout; bump when fields change meaning.
pub const SWEEP_SCHEMA: &str = "mhw-sweep/v1";

/// One grid cell's measured outcome: its coordinates on the two
/// posture axes plus the attack-success / legitimate-lockout numbers
/// the frontier table is built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRow {
    /// Full cell label (`"defense/recovery"`).
    pub label: String,
    /// Defense-axis posture name (`"full"`, `"no-risk"`, `"none"`, …).
    pub defense: String,
    /// Recovery-axis posture name (`"legacy"`, `"paper"`, `"strict"`, …).
    pub recovery: String,
    /// The seed this cell ran with.
    pub seed: u64,
    /// Order-independent dataset digest of the cell's finished run —
    /// the determinism handle `--smoke` compares across double runs.
    pub digest: u64,
    /// Hijacking incidents in the cell's world.
    pub incidents: u64,
    /// Incidents the hijacker exploited before losing access.
    pub exploited: u64,
    /// Hijacker recovery-pivot claims filed (0 with the pivot off).
    pub pivot_attempts: u64,
    /// Pivot claims that took the account over.
    pub pivot_takeovers: u64,
    /// Owner recovery claims denied by claim risk scoring — the
    /// frontier's legitimate-lockout cost (0 with scoring off).
    pub recovery_lockouts: u64,
    /// Owner claims that hit a step-up challenge.
    pub recovery_step_ups: u64,
    /// Wall-clock seconds forking/simulating the cell (hardware-bound).
    pub run_s: f64,
    /// Wall-clock seconds digesting the cell's dataset (hardware-bound).
    pub digest_s: f64,
}

impl SweepCellRow {
    /// Total hijacker wins in this cell: incidents exploited through
    /// the front door plus accounts re-taken through the recovery
    /// pivot. The frontier's attack-success axis.
    pub fn attack_successes(&self) -> u64 {
        self.exploited + self.pivot_takeovers
    }
}

/// The full sweep artifact: scenario identity, grid shape, and one
/// [`SweepCellRow`] per cell in grid order (defense-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report schema tag ([`SWEEP_SCHEMA`]).
    pub schema: String,
    /// RNG seed of the shared snapshot prefix.
    pub seed: u64,
    /// Users in the scenario.
    pub users: u32,
    /// Total simulated days per cell.
    pub days: u32,
    /// Day the shared prefix was snapshotted at; cells diverge from
    /// here (the baseline cell re-runs the prefix's own config).
    pub snapshot_day: u64,
    /// Logical CPUs on the recording host — context for the wall-clock
    /// columns only; every count and digest is host-independent.
    pub host_parallelism: usize,
    /// One row per grid cell, defense-major.
    pub cells: Vec<SweepCellRow>,
}

impl SweepReport {
    /// Assemble a report around its scenario identity, stamping the
    /// recording host's core count.
    pub fn new(seed: u64, users: u32, days: u32, snapshot_day: u64) -> Self {
        SweepReport {
            schema: SWEEP_SCHEMA.to_string(),
            seed,
            users,
            days,
            snapshot_day,
            host_parallelism: crate::host_parallelism(),
            cells: Vec::new(),
        }
    }

    /// Serialize to canonical JSON (fields in declaration order).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("sweep report serializes")
    }

    /// Parse a report back from [`SweepReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The per-cell digests in grid order — the determinism fingerprint
    /// `sweep --smoke` compares between its double runs (timings and
    /// host fields are excluded by construction).
    pub fn digests(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.digest).collect()
    }

    /// Render the attack-success / legitimate-lockout frontier as a
    /// GitHub-flavoured markdown table, one row per grid cell.
    /// Deterministic given the report (the host banner renders the
    /// recorded [`SweepReport::host_parallelism`], not the current
    /// host's).
    pub fn frontier_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Posture sweep frontier\n\n");
        out.push_str(&format!(
            "Seed `{:#x}`, {} users × {} days, snapshot at day {} — {} cells.\n\n",
            self.seed,
            self.users,
            self.days,
            self.snapshot_day,
            self.cells.len(),
        ));
        if self.host_parallelism > 0 {
            out.push_str(&format!(
                "Recorded on a {}-core host (wall-clock columns only; \
                 every count and digest is host-independent).\n\n",
                self.host_parallelism
            ));
        }
        out.push_str(
            "| Defense | Recovery | Incidents | Attack successes | \
             Lockouts | Step-ups | Pivots (won) | Run s |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} ({}) | {:.2} |\n",
                c.defense,
                c.recovery,
                c.incidents,
                c.attack_successes(),
                c.recovery_lockouts,
                c.recovery_step_ups,
                c.pivot_attempts,
                c.pivot_takeovers,
                c.run_s,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(defense: &str, recovery: &str, lockouts: u64) -> SweepCellRow {
        SweepCellRow {
            label: format!("{defense}/{recovery}"),
            defense: defense.to_string(),
            recovery: recovery.to_string(),
            seed: 7,
            digest: 0xD16E57 ^ lockouts,
            incidents: 40,
            exploited: 12,
            pivot_attempts: 5,
            pivot_takeovers: 2,
            recovery_lockouts: lockouts,
            recovery_step_ups: lockouts * 3,
            run_s: 1.25,
            digest_s: 0.05,
        }
    }

    fn sample() -> SweepReport {
        let mut r = SweepReport::new(7, 500, 30, 20);
        r.cells.push(row("full", "legacy", 0));
        r.cells.push(row("full", "strict", 9));
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"mhw-sweep/v1\""));
        assert!(json.contains("\"recovery_lockouts\":9"));
        let back = SweepReport::from_json(&json).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn digests_exclude_timings() {
        let mut a = sample();
        let mut b = sample();
        b.cells[0].run_s = 99.0;
        b.host_parallelism = a.host_parallelism + 8;
        assert_eq!(a.digests(), b.digests(), "timings must not enter the fingerprint");
        a.cells[1].digest ^= 1;
        assert_ne!(a.digests(), b.digests());
    }

    #[test]
    fn frontier_renders_cells_and_host_banner() {
        let md = sample().frontier_markdown();
        assert!(md.contains("# Posture sweep frontier"));
        assert!(md.contains("-core host"), "host banner missing:\n{md}");
        // exploited 12 + pivot takeovers 2.
        assert!(md.contains("| full | strict | 40 | 14 | 9 | 27 | 5 (2) | 1.25 |"), "{md}");
        // Deterministic rendering.
        assert_eq!(md, sample().frontier_markdown());
    }
}
