//! The serve-mode benchmark report (`BENCH_serve.json`).
//!
//! Where [`RunReport`](crate::report::RunReport) is deterministic by
//! contract, a [`ServeReport`] deliberately measures the *hardware*:
//! wall-clock throughput and scoring latency of replaying a login
//! stream through per-thread `RiskService` instances. The only
//! deterministic fields are the workload identity (seed, users, days,
//! event count), each run's verdict digest, and — on fault arms — the
//! whole [`ServeAvailability`] block (shed counts, degradation counts,
//! breaker transitions, divergence from the clean arm); those are what
//! CI can assert on. The timings are the perf trajectory: wall-clock
//! nanoseconds on clean arms, *virtual* nanoseconds (queueing + the
//! service's modeled scoring cost) on fault arms, so fault-arm latency
//! quantiles are reproducible too.

use crate::snapshot::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// Identifies the serve-report layout; bump when fields change meaning.
///
/// v2 added per-run `arm` labels and the optional `availability` block
/// for fault arms, and widened the digest domain with the verdict
/// fidelity byte.
pub const SERVE_SCHEMA: &str = "mhw-serve/v2";

/// The arm label for the unfaulted baseline run.
pub const ARM_CLEAN: &str = "clean";

/// Overload/degradation accounting for one fault arm: everything the
/// resilient replay did besides scoring, all deterministic for a fixed
/// stream, plan and thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeAvailability {
    /// The canonical fault-plan spec this arm injected.
    pub fault_plan: String,
    /// Which request was dropped on queue overflow (`fifo` or
    /// `lowest-risk`).
    pub shed_policy: String,
    /// Per-request virtual-nanosecond deadline budget.
    pub deadline_ns: u64,
    /// Bounded admission-queue depth per service instance.
    pub queue_cap: u64,
    /// Events scored through the full degradation ladder.
    pub events_scored: u64,
    /// Events shed by admission control (cheap-prior verdict, never
    /// committed).
    pub events_shed: u64,
    /// `events_shed / (events_scored + events_shed)`.
    pub shed_rate: f64,
    /// Scored events with at least one degraded signal.
    pub degraded_events: u64,
    /// Events scored with the geo fallback (country-novelty prior).
    pub degraded_geo: u64,
    /// Events scored with the cold-cache fan-out fallback.
    pub degraded_ip_cache: u64,
    /// Events scored with the new-account history posture.
    pub degraded_history: u64,
    /// Source consultations abandoned on an exhausted deadline budget.
    pub deadline_downgrades: u64,
    /// IP-cache wipes injected by the plan (summed over shards).
    pub cache_wipes: u64,
    /// Circuit-breaker trips (closed/half-open → open) across sources
    /// and shards.
    pub breaker_opened: u64,
    /// Breaker probe windows (open → half-open).
    pub breaker_half_opened: u64,
    /// Breaker recoveries (half-open → closed).
    pub breaker_closed: u64,
    /// Deepest any shard's admission queue got.
    pub peak_queue_depth: u64,
    /// Fraction of events whose decision differs from the clean arm at
    /// the same thread count (shed events compare their cheap-prior
    /// decision).
    pub divergence_from_clean: f64,
    /// Absolute count behind [`ServeAvailability::divergence_from_clean`].
    pub diverged_events: u64,
}

/// One (thread count, arm) configuration's replay measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRun {
    /// Which arm this row measures: [`ARM_CLEAN`] or a fault-plan spec.
    pub arm: String,
    /// Worker threads (each owning one `RiskService` shard).
    pub threads: usize,
    /// Login events replayed (all shards together).
    pub events: u64,
    /// Wall-clock replay time in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput in logins per second (wall clock).
    pub logins_per_sec: f64,
    /// Median per-login latency in nanoseconds: wall-clock scoring time
    /// on the clean arm, virtual time (queueing + modeled scoring cost)
    /// on fault arms.
    pub p50_ns: f64,
    /// 99th-percentile per-login latency in nanoseconds (same clock as
    /// [`ServeRun::p50_ns`]).
    pub p99_ns: f64,
    /// Mean per-login latency in nanoseconds (same clock as
    /// [`ServeRun::p50_ns`]).
    pub mean_ns: f64,
    /// Peak bounded-state footprint across all shards, in bytes
    /// (sampled between replay chunks).
    pub peak_state_bytes: u64,
    /// Peak accounts with materialized history across all shards.
    pub peak_accounts: u64,
    /// Peak IP-cache entries across all shards (≤ capacity × shards).
    pub peak_ip_entries: u64,
    /// Chained verdict digest over the replay (per-shard digests
    /// folded in shard order). Equal across repeat runs at the same
    /// thread count and arm; differs across thread counts because
    /// per-shard IP fan-out state partitions differently.
    pub verdict_digest: u64,
    /// Overload accounting — present on fault arms only.
    pub availability: Option<ServeAvailability>,
}

impl ServeRun {
    /// Assemble one run's row from the merged latency histogram and
    /// the measured wall time. `availability` stays `None` (the clean
    /// arm); fault arms fill it in afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurement(
        arm: &str,
        threads: usize,
        events: u64,
        wall_ms: f64,
        latency: &HistogramSnapshot,
        peak_state_bytes: u64,
        peak_accounts: u64,
        peak_ip_entries: u64,
        verdict_digest: u64,
    ) -> Self {
        ServeRun {
            arm: arm.to_string(),
            threads,
            events,
            wall_ms,
            logins_per_sec: if wall_ms > 0.0 { events as f64 / (wall_ms / 1_000.0) } else { 0.0 },
            p50_ns: latency.quantile(0.50).unwrap_or(0.0),
            p99_ns: latency.quantile(0.99).unwrap_or(0.0),
            mean_ns: latency.mean().unwrap_or(0.0),
            peak_state_bytes,
            peak_accounts,
            peak_ip_entries,
            verdict_digest,
            availability: None,
        }
    }
}

/// The full serve benchmark artifact: workload identity plus one
/// [`ServeRun`] per (thread count, arm) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Report schema tag ([`SERVE_SCHEMA`]).
    pub schema: String,
    /// Workload seed (0 when replaying a recorded log).
    pub seed: u64,
    /// Users in the generating workload (0 for recorded logs).
    pub users: u32,
    /// Days of generated traffic (0 for recorded logs).
    pub days: u32,
    /// Total login events in the stream.
    pub events: u64,
    /// One measurement per (thread count, arm), in the order run.
    pub runs: Vec<ServeRun>,
}

impl ServeReport {
    /// Assemble a report around its workload identity.
    pub fn new(seed: u64, users: u32, days: u32, events: u64) -> Self {
        ServeReport { schema: SERVE_SCHEMA.to_string(), seed, users, days, events, runs: Vec::new() }
    }

    /// Serialize to canonical JSON (fields in declaration order).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("serve report serializes")
    }

    /// Parse a report back from [`ServeReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency() -> HistogramSnapshot {
        HistogramSnapshot {
            name: "serve.latency".into(),
            bounds: vec![100, 1_000, 10_000],
            counts: vec![50, 40, 10, 0],
            total: 100,
            sum: 60_000,
        }
    }

    fn availability() -> ServeAvailability {
        ServeAvailability {
            fault_plan: "geo-down@10..40".into(),
            shed_policy: "lowest-risk".into(),
            deadline_ns: 5_000,
            queue_cap: 64,
            events_scored: 950,
            events_shed: 50,
            shed_rate: 0.05,
            degraded_events: 30,
            degraded_geo: 30,
            degraded_ip_cache: 0,
            degraded_history: 0,
            deadline_downgrades: 0,
            cache_wipes: 0,
            breaker_opened: 1,
            breaker_half_opened: 1,
            breaker_closed: 1,
            peak_queue_depth: 9,
            divergence_from_clean: 0.02,
            diverged_events: 20,
        }
    }

    #[test]
    fn run_row_derives_throughput_and_quantiles() {
        let run = ServeRun::from_measurement(
            ARM_CLEAN, 4, 1_000, 250.0, &latency(), 4096, 100, 64, 0xabc,
        );
        assert_eq!(run.logins_per_sec, 4_000.0);
        assert_eq!(run.p50_ns, 100.0);
        assert!(run.p99_ns > run.p50_ns);
        assert_eq!(run.mean_ns, 600.0);
        assert_eq!(run.arm, "clean");
        assert!(run.availability.is_none(), "clean arms carry no availability block");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = ServeReport::new(7, 200, 3, 1_000);
        report.runs.push(ServeRun::from_measurement(
            ARM_CLEAN, 1, 1_000, 500.0, &latency(), 4096, 100, 64, 0xabc,
        ));
        let mut faulted = ServeRun::from_measurement(
            "geo-down@10..40",
            1,
            1_000,
            500.0,
            &latency(),
            4096,
            100,
            64,
            0xdef,
        );
        faulted.availability = Some(availability());
        report.runs.push(faulted);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"mhw-serve/v2\""));
        assert!(json.contains("\"availability\":null"), "clean arm serializes an empty block");
        assert!(json.contains("\"breaker_opened\":1"));
        let back = ServeReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let run = ServeRun::from_measurement(ARM_CLEAN, 1, 10, 0.0, &latency(), 0, 0, 0, 0);
        assert_eq!(run.logins_per_sec, 0.0);
    }
}
