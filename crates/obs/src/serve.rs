//! The serve-mode benchmark report (`BENCH_serve.json`).
//!
//! Where [`RunReport`](crate::report::RunReport) is deterministic by
//! contract, a [`ServeReport`] deliberately measures the *hardware*:
//! wall-clock throughput and scoring latency of replaying a login
//! stream through per-thread `RiskService` instances. The only
//! deterministic fields are the workload identity (seed, users, days,
//! event count) and each run's verdict digest — those are what CI can
//! assert on; the timings are the perf trajectory.

use crate::snapshot::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// Identifies the serve-report layout; bump when fields change meaning.
pub const SERVE_SCHEMA: &str = "mhw-serve/v1";

/// One thread-count configuration's replay measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRun {
    /// Worker threads (each owning one `RiskService` shard).
    pub threads: usize,
    /// Login events replayed (all shards together).
    pub events: u64,
    /// Wall-clock replay time in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput in logins per second.
    pub logins_per_sec: f64,
    /// Median per-login scoring latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-login scoring latency in nanoseconds.
    pub p99_ns: f64,
    /// Mean per-login scoring latency in nanoseconds.
    pub mean_ns: f64,
    /// Peak bounded-state footprint across all shards, in bytes
    /// (sampled between replay chunks).
    pub peak_state_bytes: u64,
    /// Peak accounts with materialized history across all shards.
    pub peak_accounts: u64,
    /// Peak IP-cache entries across all shards (≤ capacity × shards).
    pub peak_ip_entries: u64,
    /// Chained verdict digest over the replay (per-shard digests
    /// folded in shard order). Equal across repeat runs at the same
    /// thread count; differs across thread counts because per-shard
    /// IP fan-out state partitions differently.
    pub verdict_digest: u64,
}

impl ServeRun {
    /// Assemble one run's row from the merged latency histogram and
    /// the measured wall time.
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurement(
        threads: usize,
        events: u64,
        wall_ms: f64,
        latency: &HistogramSnapshot,
        peak_state_bytes: u64,
        peak_accounts: u64,
        peak_ip_entries: u64,
        verdict_digest: u64,
    ) -> Self {
        ServeRun {
            threads,
            events,
            wall_ms,
            logins_per_sec: if wall_ms > 0.0 { events as f64 / (wall_ms / 1_000.0) } else { 0.0 },
            p50_ns: latency.quantile(0.50).unwrap_or(0.0),
            p99_ns: latency.quantile(0.99).unwrap_or(0.0),
            mean_ns: latency.mean().unwrap_or(0.0),
            peak_state_bytes,
            peak_accounts,
            peak_ip_entries,
            verdict_digest,
        }
    }
}

/// The full serve benchmark artifact: workload identity plus one
/// [`ServeRun`] per thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Report schema tag ([`SERVE_SCHEMA`]).
    pub schema: String,
    /// Workload seed (0 when replaying a recorded log).
    pub seed: u64,
    /// Users in the generating workload (0 for recorded logs).
    pub users: u32,
    /// Days of generated traffic (0 for recorded logs).
    pub days: u32,
    /// Total login events in the stream.
    pub events: u64,
    /// One measurement per thread count, in the order run.
    pub runs: Vec<ServeRun>,
}

impl ServeReport {
    /// Assemble a report around its workload identity.
    pub fn new(seed: u64, users: u32, days: u32, events: u64) -> Self {
        ServeReport { schema: SERVE_SCHEMA.to_string(), seed, users, days, events, runs: Vec::new() }
    }

    /// Serialize to canonical JSON (fields in declaration order).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("serve report serializes")
    }

    /// Parse a report back from [`ServeReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency() -> HistogramSnapshot {
        HistogramSnapshot {
            name: "serve.latency".into(),
            bounds: vec![100, 1_000, 10_000],
            counts: vec![50, 40, 10, 0],
            total: 100,
            sum: 60_000,
        }
    }

    #[test]
    fn run_row_derives_throughput_and_quantiles() {
        let run = ServeRun::from_measurement(4, 1_000, 250.0, &latency(), 4096, 100, 64, 0xabc);
        assert_eq!(run.logins_per_sec, 4_000.0);
        assert_eq!(run.p50_ns, 100.0);
        assert!(run.p99_ns > run.p50_ns);
        assert_eq!(run.mean_ns, 600.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = ServeReport::new(7, 200, 3, 1_000);
        report
            .runs
            .push(ServeRun::from_measurement(1, 1_000, 500.0, &latency(), 4096, 100, 64, 0xabc));
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"mhw-serve/v1\""));
        let back = ServeReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let run = ServeRun::from_measurement(1, 10, 0.0, &latency(), 0, 0, 0, 0);
        assert_eq!(run.logins_per_sec, 0.0);
    }
}
