//! Rendered metric values and their deterministic merge.
//!
//! A [`MetricsSnapshot`] is the wire form of a [`Registry`]: plain
//! sorted vectors of named values, serializable through the vendored
//! serde path. Snapshots from different shards (or different subsystem
//! registries within one shard) merge by name — counters, gauges and
//! histogram buckets all sum — so the run-level snapshot is independent
//! of both worker scheduling and merge order.
//!
//! [`Registry`]: crate::Registry

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One counter's rendered value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name (dot-namespaced).
    pub name: String,
    /// Monotonic count.
    pub value: u64,
}

/// One gauge's rendered value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name (dot-namespaced).
    pub name: String,
    /// Last-set (or high-water-mark) value; per-shard gauges sum on
    /// merge into a run-wide total.
    pub value: u64,
}

/// One histogram's rendered buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name (dot-namespaced).
    pub name: String,
    /// Ascending inclusive upper bounds, one per non-overflow bucket.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the final count is the overflow
    /// bucket (observations above the last bound).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values (for mean computation).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, if anything was observed.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the bucket holding the target rank.
    ///
    /// Observations that landed in the overflow bucket are only known
    /// to exceed the last bound, so a quantile that falls there
    /// reports that bound (a lower bound on the true value). Returns
    /// `None` when nothing was observed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: q=0 → first, q=1 → last.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += count;
            if cum < rank {
                continue;
            }
            if i >= self.bounds.len() {
                // Overflow bucket: the last finite bound is all we know.
                return Some(*self.bounds.last()? as f64);
            }
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] as f64 };
            let upper = self.bounds[i] as f64;
            let frac = (rank - prev_cum) as f64 / count as f64;
            return Some(lower + frac * (upper - lower));
        }
        None
    }
}

/// A complete, name-sorted set of rendered metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge any number of snapshots into one: counters, gauges and
    /// histogram buckets sum by name. Histograms sharing a name must
    /// share bucket bounds (they come from the same static declaration).
    ///
    /// The result is sorted by name, so it does not depend on the order
    /// the inputs are supplied in — the property the engine's
    /// byte-identical report contract rests on.
    pub fn merge_all(parts: impl IntoIterator<Item = MetricsSnapshot>) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for part in parts {
            for c in part.counters {
                *counters.entry(c.name).or_insert(0) += c.value;
            }
            for g in part.gauges {
                *gauges.entry(g.name).or_insert(0) += g.value;
            }
            for h in part.histograms {
                match histograms.entry(h.name.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(h);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let acc = e.get_mut();
                        assert_eq!(
                            acc.bounds, h.bounds,
                            "histogram {} merged across different bucket bounds",
                            h.name
                        );
                        for (a, b) in acc.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                        acc.total += h.total;
                        acc.sum += h.sum;
                    }
                }
            }
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterSnapshot { name, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, value)| GaugeSnapshot { name, value })
                .collect(),
            histograms: histograms.into_values().collect(),
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|g| g.name.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].value)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricId, Registry};

    fn reg(counter_val: u64) -> MetricsSnapshot {
        let r = Registry::new()
            .with_counter(MetricId("a.count"))
            .with_histogram(MetricId("a.hist"), &[10, 100]);
        r.add(MetricId("a.count"), counter_val);
        r.observe(MetricId("a.hist"), 5);
        r.observe(MetricId("a.hist"), 50 + counter_val);
        r.snapshot()
    }

    #[test]
    fn merge_sums_by_name() {
        let merged = MetricsSnapshot::merge_all([reg(1), reg(2), reg(3)]);
        assert_eq!(merged.counter("a.count"), Some(6));
        let h = merged.histogram("a.hist").unwrap();
        assert_eq!(h.total, 6);
        assert_eq!(h.counts, vec![3, 3, 0]);
    }

    #[test]
    fn merge_is_order_independent() {
        let ab = MetricsSnapshot::merge_all([reg(1), reg(9)]);
        let ba = MetricsSnapshot::merge_all([reg(9), reg(1)]);
        assert_eq!(ab, ba);
        assert_eq!(
            serde_json::to_string(&ab).unwrap(),
            serde_json::to_string(&ba).unwrap(),
            "merged snapshots must serialize to identical bytes"
        );
    }

    #[test]
    fn merge_of_disjoint_names_unions() {
        let a = Registry::new().with_counter(MetricId("x.one")).snapshot();
        let b = Registry::new().with_counter(MetricId("y.two")).snapshot();
        let merged = MetricsSnapshot::merge_all([a, b]);
        assert_eq!(merged.counters.len(), 2);
        assert_eq!(merged.counter("x.one"), Some(0));
        assert_eq!(merged.counter("y.two"), Some(0));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = MetricsSnapshot::merge_all([reg(4)]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = HistogramSnapshot {
            name: "h".into(),
            bounds: vec![100, 200, 400],
            // 10 obs ≤100, 10 in (100,200], none in (200,400], 0 overflow.
            counts: vec![10, 10, 0, 0],
            total: 20,
            sum: 3000,
        };
        assert_eq!(h.quantile(0.0), Some(10.0)); // rank 1 of 10 in [0,100]
        assert_eq!(h.quantile(0.5), Some(100.0)); // rank 10: top of bucket 0
        assert_eq!(h.quantile(0.75), Some(150.0)); // rank 15: mid bucket 1
        assert_eq!(h.quantile(1.0), Some(200.0));
        // Out-of-range q clamps.
        assert_eq!(h.quantile(7.0), Some(200.0));
    }

    #[test]
    fn quantile_overflow_reports_last_bound() {
        let h = HistogramSnapshot {
            name: "h".into(),
            bounds: vec![100],
            counts: vec![1, 9], // 9 observations above the last bound
            total: 10,
            sum: 10_000,
        };
        assert_eq!(h.quantile(0.99), Some(100.0));
        let empty = HistogramSnapshot {
            name: "e".into(),
            bounds: vec![100],
            counts: vec![0, 0],
            total: 0,
            sum: 0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn histogram_mean() {
        let h = HistogramSnapshot {
            name: "h".into(),
            bounds: vec![10],
            counts: vec![2, 0],
            total: 2,
            sum: 8,
        };
        assert_eq!(h.mean(), Some(4.0));
        let empty = HistogramSnapshot { total: 0, sum: 0, ..h };
        assert_eq!(empty.mean(), None);
    }
}
