//! The deterministic end-of-run report.
//!
//! A [`RunReport`] bundles the scenario's identifying parameters with
//! the merged [`MetricsSnapshot`] of every subsystem registry. Every
//! field is a pure function of `(seed, scenario config)`: simulated
//! time only, no wall-clock, and — deliberately — no worker count, so
//! the serialized report is byte-identical whether the run used 1
//! worker or 8. `tests/observability.rs` pins that property.

use crate::snapshot::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Identifies the report layout; bump when fields change meaning.
/// v2 added the `degraded`/`failure` forensic fields.
pub const REPORT_SCHEMA: &str = "mhw-run-report/v2";

/// Deterministic summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// RNG seed the run was driven by.
    pub seed: u64,
    /// Logical shard count (scenario semantics — part of the dataset
    /// identity, unlike the worker count, which is excluded).
    pub shards: u16,
    /// Simulated days.
    pub days: u32,
    /// Simulated user population.
    pub users: u32,
    /// True when the run aborted early and this report covers only the
    /// shards/days completed before the failure — a forensic artifact,
    /// not a full dataset.
    pub degraded: bool,
    /// Why the run aborted, when [`degraded`](RunReport::degraded) is
    /// set (e.g. the rendered `EngineError`).
    pub failure: Option<String>,
    /// Merged metrics from every subsystem registry.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Assemble a report from run parameters and merged metrics.
    pub fn new(seed: u64, shards: u16, days: u32, users: u32, metrics: MetricsSnapshot) -> Self {
        RunReport {
            schema: REPORT_SCHEMA.to_string(),
            seed,
            shards,
            days,
            users,
            degraded: false,
            failure: None,
            metrics,
        }
    }

    /// Mark this report as the partial output of an aborted run,
    /// recording the failure cause. Used by the engine to leave a
    /// forensic artifact when a long run dies mid-way.
    pub fn with_failure(mut self, cause: impl Into<String>) -> Self {
        self.degraded = true;
        self.failure = Some(cause.into());
        self
    }

    /// Serialize to the canonical JSON form (fields in declaration
    /// order; byte-identical for equal reports).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("run report serializes")
    }

    /// Parse a report back from [`RunReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{MetricId, Registry};

    fn sample() -> RunReport {
        let reg = Registry::new().with_counter(MetricId("identity.login_attempts"));
        reg.add(MetricId("identity.login_attempts"), 42);
        RunReport::new(7, 4, 14, 400, reg.snapshot())
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.schema, REPORT_SCHEMA);
        assert_eq!(back.metrics.counter("identity.login_attempts"), Some(42));
    }

    #[test]
    fn equal_reports_serialize_to_equal_bytes() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn degraded_marker_round_trips() {
        let report = sample().with_failure("shard 2 panicked on day 5: boom");
        assert!(report.degraded);
        let json = report.to_json();
        assert!(json.contains("\"degraded\":true"));
        assert!(json.contains("shard 2 panicked"));
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // A healthy report carries the fields but stays unmarked.
        assert!(!sample().degraded);
        assert!(sample().to_json().contains("\"degraded\":false"));
    }
}
