//! The deterministic paper-fidelity scorecard.
//!
//! A [`FidelityReport`] is the validation counterpart of [`RunReport`]:
//! where the run report records *what the simulation did*, the fidelity
//! report records *how close its regenerated figures and tables are to
//! the paper's published numbers*. Each [`TargetScore`] reduces one
//! calibration component to a distance (KS statistic, total variation,
//! relative error — computed by `mhw_analysis::distance`) and a
//! [`Tolerance`] band classifies it:
//!
//! * **PASS** — distance within the calibrated band;
//! * **WARN** — outside the calibrated band but inside the failure
//!   band: drifting, worth a look, not yet wrong;
//! * **FAIL** — outside the failure band: the reproduction no longer
//!   supports the paper's claim.
//!
//! Like [`RunReport`], the serialized form is a pure function of
//! `(seed, scale)` — simulated time only, no wall clock, no worker
//! count — so `FIDELITY.json` is byte-identical however many threads
//! built the worlds. `tests/fidelity.rs` pins that property.
//!
//! [`RunReport`]: crate::RunReport

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Identifies the fidelity-report layout; bump when fields change
/// meaning.
pub const FIDELITY_SCHEMA: &str = "mhw-fidelity/v1";

/// Verdict for one calibration component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FidelityStatus {
    /// Distance within the calibrated tolerance band.
    Pass,
    /// Outside the calibrated band but inside the failure band.
    Warn,
    /// Outside the failure band — the claim is no longer reproduced.
    Fail,
}

impl FidelityStatus {
    /// The scorecard label (`PASS` / `WARN` / `FAIL`).
    pub fn label(self) -> &'static str {
        match self {
            FidelityStatus::Pass => "PASS",
            FidelityStatus::Warn => "WARN",
            FidelityStatus::Fail => "FAIL",
        }
    }
}

impl fmt::Display for FidelityStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for FidelityStatus {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for FidelityStatus {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Str(s) if s == "PASS" => Ok(FidelityStatus::Pass),
            Value::Str(s) if s == "WARN" => Ok(FidelityStatus::Warn),
            Value::Str(s) if s == "FAIL" => Ok(FidelityStatus::Fail),
            other => Err(serde::Error(format!("not a fidelity status: {other:?}"))),
        }
    }
}

/// A two-level tolerance band on a distance: distances at or below
/// `warn` PASS, at or below `fail` WARN, above it FAIL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerance {
    /// The calibrated band: distances at or below this PASS.
    pub warn: f64,
    /// The failure band: distances above this FAIL.
    pub fail: f64,
}

impl Tolerance {
    /// Build a band; `fail` must be at least `warn`.
    ///
    /// # Panics
    /// Panics when `fail < warn` or either bound is negative/NaN — a
    /// malformed band in the calibration registry is a programming
    /// error, not a measurement outcome.
    pub fn new(warn: f64, fail: f64) -> Self {
        assert!(warn >= 0.0 && fail >= warn, "malformed tolerance band {warn}/{fail}");
        Tolerance { warn, fail }
    }

    /// Classify a distance against the band. Boundary values stay in
    /// the better class: `distance == warn` is a PASS and
    /// `distance == fail` is a WARN.
    pub fn classify(&self, distance: f64) -> FidelityStatus {
        if distance <= self.warn {
            FidelityStatus::Pass
        } else if distance <= self.fail {
            FidelityStatus::Warn
        } else {
            FidelityStatus::Fail
        }
    }
}

/// One scored calibration component: a paper number, the measured
/// value, their distance and the verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetScore {
    /// Target group id from the calibration registry (`T2`, `F7`, …).
    pub target: String,
    /// Which component of the target this row scores (a target like
    /// Figure 8 has several published numbers).
    pub component: String,
    /// Distance metric used (`ks`, `l1`, `chi2`, `rel_err`, `abs_err`).
    pub metric: String,
    /// The paper's value, as printed there.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// The computed distance (units depend on `metric`).
    pub distance: f64,
    /// The tolerance band the distance was classified against.
    pub tolerance: Tolerance,
    /// The verdict.
    pub status: FidelityStatus,
    /// Free-form caveat (sampling notes, OCR caveats).
    pub note: String,
}

impl TargetScore {
    /// Score one component: computes the status from `distance` and
    /// `tolerance`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        target: impl Into<String>,
        component: impl Into<String>,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        distance: f64,
        tolerance: Tolerance,
        note: impl Into<String>,
    ) -> Self {
        TargetScore {
            target: target.into(),
            component: component.into(),
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            distance,
            tolerance,
            status: tolerance.classify(distance),
            note: note.into(),
        }
    }
}

/// The full scorecard: every scored component, plus the scenario
/// coordinates that produced the measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Report schema tag ([`FIDELITY_SCHEMA`]).
    pub schema: String,
    /// RNG seed the measured worlds were driven by.
    pub seed: u64,
    /// Run scale (`"full"` or `"quick"`) — tolerance bands depend on
    /// it, so it is part of the report's identity.
    pub scale: String,
    /// Logical CPUs on the host that recorded the report. The scored
    /// numbers themselves are deterministic at any worker count; this
    /// annotates the scorecard so wall-clock context travels with the
    /// artifact (0 suppresses the banner).
    pub host_parallelism: usize,
    /// Every scored component, in registry order.
    pub targets: Vec<TargetScore>,
}

impl FidelityReport {
    /// An empty report for the given scenario coordinates.
    pub fn new(seed: u64, scale: impl Into<String>) -> Self {
        FidelityReport {
            schema: FIDELITY_SCHEMA.to_string(),
            seed,
            scale: scale.into(),
            host_parallelism: crate::host_parallelism(),
            targets: Vec::new(),
        }
    }

    /// Append a scored component.
    pub fn push(&mut self, score: TargetScore) {
        self.targets.push(score);
    }

    /// Distinct target-group ids, in first-appearance order.
    pub fn target_ids(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = Vec::new();
        for t in &self.targets {
            if !ids.contains(&t.target.as_str()) {
                ids.push(&t.target);
            }
        }
        ids
    }

    /// The worst component status within one target group.
    pub fn status_of(&self, target_id: &str) -> Option<FidelityStatus> {
        self.targets
            .iter()
            .filter(|t| t.target == target_id)
            .map(|t| t.status)
            .max()
    }

    /// The worst status across the whole report (PASS when empty).
    pub fn overall(&self) -> FidelityStatus {
        self.targets.iter().map(|t| t.status).max().unwrap_or(FidelityStatus::Pass)
    }

    /// Number of components with the given status.
    pub fn count(&self, status: FidelityStatus) -> usize {
        self.targets.iter().filter(|t| t.status == status).count()
    }

    /// Components that FAILed, for error reporting.
    pub fn failures(&self) -> Vec<&TargetScore> {
        self.targets.iter().filter(|t| t.status == FidelityStatus::Fail).collect()
    }

    /// Serialize to the canonical JSON form (fields in declaration
    /// order; byte-identical for equal reports).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("fidelity report serializes")
    }

    /// Parse a report back from [`FidelityReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Render the scorecard as GitHub-flavoured markdown: a per-target
    /// summary table followed by every scored component. Deterministic
    /// (the markdown is a pure function of the report).
    pub fn scorecard_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Fidelity scorecard\n\n");
        out.push_str(&format!(
            "Seed `{:#x}`, scale **{}** — {} targets, {} components: \
             **{} PASS, {} WARN, {} FAIL** (overall **{}**).\n\n",
            self.seed,
            self.scale,
            self.target_ids().len(),
            self.targets.len(),
            self.count(FidelityStatus::Pass),
            self.count(FidelityStatus::Warn),
            self.count(FidelityStatus::Fail),
            self.overall(),
        ));
        if self.host_parallelism > 0 {
            out.push_str(&format!(
                "Recorded on a {}-core host (the scored numbers are \
                 deterministic; the core count is wall-clock context only).\n\n",
                self.host_parallelism
            ));
        }

        out.push_str("## Targets\n\n| Target | Components | Status |\n|---|---|---|\n");
        for id in self.target_ids() {
            let n = self.targets.iter().filter(|t| t.target == id).count();
            let status = self.status_of(id).unwrap_or(FidelityStatus::Pass);
            out.push_str(&format!("| {id} | {n} | {status} |\n"));
        }

        out.push_str(
            "\n## Components\n\n\
             | Target | Component | Paper | Measured | Distance | Band (warn/fail) | Status |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for t in &self.targets {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} {:.4} | {:.3}/{:.3} | {} |\n",
                escape(&t.target),
                escape(&t.component),
                escape(&t.paper),
                escape(&t.measured),
                escape(&t.metric),
                t.distance,
                t.tolerance.warn,
                t.tolerance.fail,
                t.status,
            ));
        }
        if self.targets.iter().any(|t| !t.note.is_empty()) {
            out.push_str("\n## Notes\n\n");
            for t in self.targets.iter().filter(|t| !t.note.is_empty()) {
                out.push_str(&format!(
                    "* **{} — {}**: {}\n",
                    escape(&t.target),
                    escape(&t.component),
                    t.note
                ));
            }
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('|', "\\|")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FidelityReport {
        let mut r = FidelityReport::new(0xBEEF, "quick");
        r.push(TargetScore::new(
            "F7",
            "access CDF at 30 min / 7 h",
            "ks",
            "20% / 50%",
            "21.3% / 48.9%",
            0.013,
            Tolerance::new(0.08, 0.20),
            "",
        ));
        r.push(TargetScore::new(
            "F5",
            "mean page conversion",
            "rel_err",
            "13.7%",
            "29.0%",
            1.12,
            Tolerance::new(0.25, 0.60),
            "cranked attack volume",
        ));
        r
    }

    #[test]
    fn classify_boundaries_stay_in_better_class() {
        let t = Tolerance::new(0.1, 0.2);
        assert_eq!(t.classify(0.0), FidelityStatus::Pass);
        assert_eq!(t.classify(0.1), FidelityStatus::Pass);
        assert_eq!(t.classify(0.10000001), FidelityStatus::Warn);
        assert_eq!(t.classify(0.2), FidelityStatus::Warn);
        assert_eq!(t.classify(0.20000001), FidelityStatus::Fail);
        assert_eq!(t.classify(f64::INFINITY), FidelityStatus::Fail);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn inverted_band_panics() {
        Tolerance::new(0.5, 0.1);
    }

    #[test]
    fn report_aggregation() {
        let r = sample();
        assert_eq!(r.target_ids(), vec!["F7", "F5"]);
        assert_eq!(r.status_of("F7"), Some(FidelityStatus::Pass));
        assert_eq!(r.status_of("F5"), Some(FidelityStatus::Fail));
        assert_eq!(r.status_of("F99"), None);
        assert_eq!(r.overall(), FidelityStatus::Fail);
        assert_eq!(r.count(FidelityStatus::Pass), 1);
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].target, "F5");
    }

    #[test]
    fn zero_host_parallelism_suppresses_the_banner() {
        let mut r = sample();
        r.host_parallelism = 0;
        assert!(!r.scorecard_markdown().contains("-core host"));
        let back = FidelityReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back.host_parallelism, 0);
    }

    #[test]
    fn empty_report_passes() {
        let r = FidelityReport::new(1, "full");
        assert_eq!(r.overall(), FidelityStatus::Pass);
        assert!(r.target_ids().is_empty());
    }

    #[test]
    fn json_roundtrip_is_byte_stable() {
        let r = sample();
        let json = r.to_json();
        assert_eq!(json, sample().to_json());
        let back = FidelityReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("\"schema\":\"mhw-fidelity/v1\""));
        assert!(json.contains("\"status\":\"FAIL\""));
    }

    #[test]
    fn scorecard_renders_groups_and_components() {
        let md = sample().scorecard_markdown();
        assert!(md.contains("# Fidelity scorecard"));
        assert!(md.contains("-core host"), "host banner missing:\n{md}");
        assert!(md.contains("| F7 | 1 | PASS |"));
        assert!(md.contains("| F5 | 1 | FAIL |"));
        assert!(md.contains("rel_err 1.1200"));
        assert!(md.contains("0.250/0.600"));
        assert!(md.contains("**F5 — mean page conversion**: cranked attack volume"));
        // Deterministic rendering.
        assert_eq!(md, sample().scorecard_markdown());
    }
}
