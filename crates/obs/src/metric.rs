//! The lock-free metrics registry.
//!
//! A [`Registry`] owns a fixed set of instruments, declared once at
//! construction time (registration takes `&mut self`) and updated from
//! hot paths through `&self` with a single relaxed atomic operation —
//! no locks anywhere on the write path, so instrumented subsystems can
//! be shared freely across the engine's worker threads.
//!
//! Determinism is the design constraint that shapes everything here:
//!
//! * each logical shard owns its *own* registry (exactly like its own
//!   event-log segment), so values are a pure function of the events
//!   that shard processed, independent of worker scheduling;
//! * all measured quantities are simulated-time quantities (counts,
//!   sim-second latencies) — never wall clock;
//! * [`Registry::snapshot`] renders a [`MetricsSnapshot`] with metrics
//!   sorted by name, and snapshot merging is commutative, so the merged
//!   run-level snapshot is byte-identical at any worker count.
//!
//! Updates to a metric id that was never registered are silently
//! dropped. This keeps `Default`-constructed subsystems (tests,
//! fixtures) working without wiring, at the cost of typos being quiet —
//! which is why `tests/observability.rs` asserts the report's key
//! counters are nonzero.

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
use mhw_types::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A static metric identifier, e.g. `MetricId("identity.login_attempts")`.
///
/// Ids are dot-namespaced by crate (`identity.`, `mailsys.`,
/// `phishkit.`, `adversary.`, `defense.`, `recovery.`, `engine.`) so a
/// merged run report reads like a map of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub &'static str);

impl MetricId {
    /// The metric name.
    pub fn name(self) -> &'static str {
        self.0
    }
}

/// Standard histogram bucket boundaries.
pub mod buckets {
    /// Latency buckets in simulated seconds: 1 min, 5 min, 15 min,
    /// 30 min, 1 h, 2 h, 6 h, 12 h, 1 d, 2 d, 7 d (+ overflow).
    ///
    /// Chosen to resolve both tails the paper cares about: Figure 7's
    /// minutes-scale decoy pickups and Figure 9's hours-to-days
    /// recovery latencies.
    pub const LATENCY_SECS: &[u64] = &[
        60,
        300,
        900,
        1_800,
        3_600,
        7_200,
        21_600,
        43_200,
        86_400,
        172_800,
        604_800,
    ];

    /// Small-count buckets: 1, 2, 5, 10, 20, 50, 100 (+ overflow), for
    /// per-event quantities like recipients per blast or queue depths.
    pub const SMALL_COUNTS: &[u64] = &[1, 2, 5, 10, 20, 50, 100];

    /// Wall-clock scoring-latency buckets in **nanoseconds** (+
    /// overflow), for serve-mode per-login latency. Unlike
    /// [`LATENCY_SECS`] these measure real machine time, not simulated
    /// time: 50 ns resolves a warm in-memory assess, the 1–4 decade
    /// spread absorbs cache misses, allocator stalls and scheduler
    /// preemption, and the 10 ms top bound keeps even a pathological
    /// page fault out of the overflow bucket.
    pub const SERVE_LATENCY_NANOS: &[u64] = &[
        50,
        100,
        250,
        500,
        1_000,
        2_500,
        5_000,
        10_000,
        25_000,
        50_000,
        100_000,
        250_000,
        500_000,
        1_000_000,
        2_500_000,
        5_000_000,
        10_000_000,
    ];
}

/// A histogram's atomic cells: one bucket per boundary plus overflow.
#[derive(Debug)]
struct HistogramCells {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; bucket `i` counts observations
    /// `v <= bounds[i]`, the last bucket counts everything larger.
    /// Cache-padded so concurrent observers hitting adjacent buckets
    /// never ping-pong one line.
    counts: Box<[CachePadded<AtomicU64>]>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        HistogramCells {
            bounds,
            counts: (0..=bounds.len()).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        // First bucket whose upper bound contains the value; the extra
        // final bucket absorbs anything beyond the last boundary.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// The registry: a declared set of instruments with a lock-free write
/// path.
///
/// ```
/// use mhw_obs::{MetricId, Registry};
///
/// const LOGINS: MetricId = MetricId("demo.logins");
/// let mut reg = Registry::new();
/// reg.register_counter(LOGINS);
/// reg.inc(LOGINS); // &self — callable from any hot path
/// assert_eq!(reg.counter_value(LOGINS), Some(1));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    // Each cell is cache-padded: per-shard registries are allocated
    // back to back by the engine, and unpadded adjacent counters would
    // false-share lines across worker threads.
    counters: Vec<(MetricId, CachePadded<AtomicU64>)>,
    gauges: Vec<(MetricId, CachePadded<AtomicU64>)>,
    histograms: Vec<(MetricId, HistogramCells)>,
}

impl Clone for Registry {
    /// Cloning snapshots the current values into fresh atomics (used by
    /// `Clone`-able hosts like the detection pipeline).
    fn clone(&self) -> Self {
        Registry {
            counters: self
                .counters
                .iter()
                .map(|(id, c)| (*id, CachePadded::new(AtomicU64::new(c.load(Ordering::Relaxed)))))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(id, g)| (*id, CachePadded::new(AtomicU64::new(g.load(Ordering::Relaxed)))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(id, h)| {
                    let cells = HistogramCells {
                        bounds: h.bounds,
                        counts: h
                            .counts
                            .iter()
                            .map(|c| CachePadded::new(AtomicU64::new(c.load(Ordering::Relaxed))))
                            .collect(),
                        total: AtomicU64::new(h.total.load(Ordering::Relaxed)),
                        sum: AtomicU64::new(h.sum.load(Ordering::Relaxed)),
                    };
                    (*id, cells)
                })
                .collect(),
        }
    }
}

impl Registry {
    /// An empty registry (no instruments; every update is a no-op until
    /// something is registered).
    pub fn new() -> Self {
        Registry::default()
    }

    // ---- registration (cold path, `&mut self`) ----

    /// Declare a monotonically increasing counter.
    pub fn register_counter(&mut self, id: MetricId) {
        if self.find(&self.counters, id).is_none() {
            self.counters.push((id, CachePadded::new(AtomicU64::new(0))));
        }
    }

    /// Declare a gauge (last-set value; merged by summing, so per-shard
    /// gauges read as a run-wide total).
    pub fn register_gauge(&mut self, id: MetricId) {
        if self.find(&self.gauges, id).is_none() {
            self.gauges.push((id, CachePadded::new(AtomicU64::new(0))));
        }
    }

    /// Declare a fixed-bucket histogram over the given ascending bucket
    /// boundaries (see [`buckets`]).
    pub fn register_histogram(&mut self, id: MetricId, bounds: &'static [u64]) {
        if !self.histograms.iter().any(|(i, _)| *i == id) {
            self.histograms.push((id, HistogramCells::new(bounds)));
        }
    }

    /// Builder-style [`Registry::register_counter`].
    pub fn with_counter(mut self, id: MetricId) -> Self {
        self.register_counter(id);
        self
    }

    /// Builder-style [`Registry::register_gauge`].
    pub fn with_gauge(mut self, id: MetricId) -> Self {
        self.register_gauge(id);
        self
    }

    /// Builder-style [`Registry::register_histogram`].
    pub fn with_histogram(mut self, id: MetricId, bounds: &'static [u64]) -> Self {
        self.register_histogram(id, bounds);
        self
    }

    // ---- updates (hot path, `&self`, lock-free) ----

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if let Some(c) = self.find(&self.counters, id) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn gauge_set(&self, id: MetricId, v: u64) {
        if let Some(g) = self.find(&self.gauges, id) {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise a gauge to `v` if `v` is larger (high-water-mark use).
    #[inline]
    pub fn gauge_max(&self, id: MetricId, v: u64) {
        if let Some(g) = self.find(&self.gauges, id) {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, id: MetricId, value: u64) {
        if let Some((_, h)) = self.histograms.iter().find(|(i, _)| *i == id) {
            h.observe(value);
        }
    }

    fn find<'a>(
        &self,
        list: &'a [(MetricId, CachePadded<AtomicU64>)],
        id: MetricId,
    ) -> Option<&'a AtomicU64> {
        // The instrument sets are tiny (≤ ~10 per subsystem); a linear
        // scan comparing static-str pointers first is cheaper than any
        // hash for this size.
        list.iter()
            .find(|(i, _)| std::ptr::eq(i.0, id.0) || i.0 == id.0)
            .map(|(_, v)| &**v)
    }

    // ---- reads ----

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, id: MetricId) -> Option<u64> {
        self.find(&self.counters, id).map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, id: MetricId) -> Option<u64> {
        self.find(&self.gauges, id).map(|g| g.load(Ordering::Relaxed))
    }

    /// Render every instrument into a [`MetricsSnapshot`], sorted by
    /// metric name (the deterministic wire form).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .iter()
            .map(|(id, c)| CounterSnapshot {
                name: id.0.to_string(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .iter()
            .map(|(id, g)| GaugeSnapshot {
                name: id.0.to_string(),
                value: g.load(Ordering::Relaxed),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(id, h)| HistogramSnapshot {
                name: id.0.to_string(),
                bounds: h.bounds.to_vec(),
                counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                total: h.total.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: MetricId = MetricId("test.counter");
    const G: MetricId = MetricId("test.gauge");
    const H: MetricId = MetricId("test.histogram");

    #[test]
    fn counters_and_gauges_update_through_shared_refs() {
        let reg = Registry::new().with_counter(C).with_gauge(G);
        reg.inc(C);
        reg.add(C, 4);
        reg.gauge_set(G, 7);
        reg.gauge_max(G, 3); // lower: no effect
        reg.gauge_max(G, 11);
        assert_eq!(reg.counter_value(C), Some(5));
        assert_eq!(reg.gauge_value(G), Some(11));
    }

    #[test]
    fn unregistered_updates_are_dropped() {
        let reg = Registry::new();
        reg.inc(C);
        reg.observe(H, 10);
        reg.gauge_set(G, 1);
        assert_eq!(reg.counter_value(C), None);
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let reg = Registry::new().with_histogram(H, &[10, 100, 1000]);
        // On-boundary values land in the bucket they bound.
        reg.observe(H, 10);
        reg.observe(H, 100);
        reg.observe(H, 1000);
        // Strictly-inside values.
        reg.observe(H, 11);
        reg.observe(H, 1);
        // Overflow.
        reg.observe(H, 1001);
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.bounds, vec![10, 100, 1000]);
        assert_eq!(h.counts, vec![2, 2, 1, 1]); // ≤10, ≤100, ≤1000, >1000
        assert_eq!(h.total, 6);
        assert_eq!(h.sum, 10 + 100 + 1000 + 11 + 1 + 1001);
    }

    #[test]
    fn histogram_zero_and_max_values() {
        let reg = Registry::new().with_histogram(H, buckets::LATENCY_SECS);
        reg.observe(H, 0);
        reg.observe(H, u64::MAX);
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.counts[0], 1, "zero lands in the first bucket");
        assert_eq!(*h.counts.last().unwrap(), 1, "huge values land in overflow");
        assert_eq!(h.counts.len(), buckets::LATENCY_SECS.len() + 1);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut reg = Registry::new();
        reg.register_counter(C);
        reg.register_counter(C);
        reg.inc(C);
        assert_eq!(reg.snapshot().counters.len(), 1);
        assert_eq!(reg.counter_value(C), Some(1));
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::new()
            .with_counter(MetricId("z.last"))
            .with_counter(MetricId("a.first"));
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn clone_preserves_values_independently() {
        let reg = Registry::new().with_counter(C);
        reg.add(C, 3);
        let copy = reg.clone();
        reg.inc(C);
        assert_eq!(copy.counter_value(C), Some(3));
        assert_eq!(reg.counter_value(C), Some(4));
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let reg = Registry::new().with_counter(C);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.inc(C);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value(C), Some(8000));
    }
}
