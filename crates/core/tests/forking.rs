//! Copy-on-write world forking: determinism and divergence.
//!
//! The fork contract mirrors the resume contract (tests/chaos.rs):
//! forking a continuation with the snapshot's own seed and config must
//! reproduce the uninterrupted run's dataset **byte for byte**, at any
//! worker count — a fork is an optimization, never a semantic. A fork
//! that diverges (seed or defense config) must produce a different
//! dataset, and the divergence must itself be deterministic.

use mhw_core::{DefenseConfig, ScenarioBuilder, ScenarioConfig, ShardedEngine, WorldSnapshot};
use mhw_types::EngineError;

/// A small sharded scenario with every cross-shard mechanism active:
/// market trades, contact-graph spillover, decoy probes.
fn scenario(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 8;
    config.population.n_users = 160;
    config.market_share = 0.3;
    config
}

fn engine(seed: u64) -> ShardedEngine {
    ShardedEngine::new(scenario(seed), 3).workers(1).decoys(6, 8)
}

fn snapshot(seed: u64, day: u64) -> WorldSnapshot {
    engine(seed).snapshot_after(day).expect("snapshot")
}

#[test]
fn same_config_fork_reproduces_uninterrupted_run_byte_for_byte() {
    let full = engine(41).run().expect("uninterrupted run");
    let snap = snapshot(41, 5);

    for workers in [1usize, 4] {
        let forked = snap.fork().workers(workers).run().expect("forked run");
        assert_eq!(
            forked.dataset_digest(),
            full.dataset_digest(),
            "fork at {workers} workers diverged from the uninterrupted run"
        );
        // The full report — metrics included — must be indistinguishable.
        let full_report = serde_json::to_string(&full.run_report()).expect("report");
        let fork_report = serde_json::to_string(&forked.run_report()).expect("report");
        assert_eq!(fork_report, full_report, "forked report differs at {workers} workers");
    }
}

#[test]
fn n_continuations_from_one_snapshot_all_reproduce() {
    let full_digest = engine(42).run().expect("uninterrupted run").dataset_digest();
    let snap = snapshot(42, 4);
    for _ in 0..3 {
        let forked = snap.fork().workers(1).run().expect("forked run");
        assert_eq!(forked.dataset_digest(), full_digest, "a later fork diverged");
    }
}

#[test]
fn fork_from_builder_entry_point_matches_snapshot_fork() {
    let snap = snapshot(43, 4);
    let a = ScenarioBuilder::fork_from(&snap).workers(1).run().expect("fork_from");
    let b = snap.fork().workers(1).run().expect("fork");
    assert_eq!(a.dataset_digest(), b.dataset_digest());
}

#[test]
fn divergent_seed_fork_differs_and_is_deterministic() {
    let snap = snapshot(44, 4);
    let baseline = snap.fork().workers(1).run().expect("baseline fork");
    let diverged = snap.fork().seed(0xD1CE).workers(1).run().expect("seed fork");
    assert_ne!(
        diverged.dataset_digest(),
        baseline.dataset_digest(),
        "a divergent-seed fork must produce a different dataset"
    );
    // Same (snapshot, seed) pair ⇒ same divergent world.
    let again = snap.fork().seed(0xD1CE).workers(4).run().expect("seed fork again");
    assert_eq!(
        again.dataset_digest(),
        diverged.dataset_digest(),
        "divergent forks must themselves be deterministic across worker counts"
    );
    // Forking with the snapshot's own seed is a no-op.
    let same = snap.fork().seed(snap.seed()).workers(1).run().expect("same-seed fork");
    assert_eq!(same.dataset_digest(), baseline.dataset_digest());
}

#[test]
fn divergent_defense_fork_differs() {
    let snap = snapshot(45, 4);
    let defended = snap.fork().workers(1).run().expect("defended fork");
    let undefended =
        snap.fork().defense(DefenseConfig::none()).workers(1).run().expect("undefended fork");
    assert_ne!(
        undefended.dataset_digest(),
        defended.dataset_digest(),
        "dropping every defense must change the dataset"
    );
    // Hijacking should not get *harder* without defenses.
    assert!(
        undefended.total_stats().exploited >= defended.total_stats().exploited,
        "undefended world produced fewer exploited incidents than the defended one"
    );
}

#[test]
fn fork_verification_names_first_divergent_field() {
    let snap = snapshot(46, 4);
    // A doctored record must be rejected with the resume taxonomy.
    let mut doctored = snap.checkpoint().clone();
    doctored.market_trades += 1;
    let err = snap.verify_record(&doctored, "<test>").expect_err("doctored record accepted");
    match err {
        EngineError::CheckpointMismatch { field, .. } => {
            assert_eq!(field, "market_trades", "wrong field named: {field}");
        }
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
    // The genuine record verifies.
    snap.verify_record(&snap.checkpoint().clone(), "<test>").expect("genuine record rejected");
}

#[test]
fn snapshot_rejects_out_of_range_days() {
    for day in [0u64, 8, 99] {
        let err = engine(47).snapshot_after(day).expect_err("out-of-range snapshot day");
        assert!(
            matches!(err, EngineError::InvalidConfig { .. }),
            "expected InvalidConfig for day {day}, got {err:?}"
        );
    }
}

#[test]
fn snapshot_record_round_trips_through_disk() {
    let snap = snapshot(48, 3);
    let dir = std::env::temp_dir().join("mhw-fork-record-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("fork-point.mhw");
    snap.write_record(&path).expect("write record");
    let read = mhw_core::Checkpoint::read(&path).expect("read record");
    snap.verify_record(&read, &path.display().to_string()).expect("round-tripped record");
    let _ = std::fs::remove_dir_all(&dir);
}
