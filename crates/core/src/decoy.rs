//! The decoy-credential experiment (§5.1, Figure 7).
//!
//! "We manually submitted 200 fake credentials into a random sample of
//! 200 phishing pages that explicitly ask for Google credentials …
//! We recorded the time when each credential was submitted to a
//! phishing page, and used our logs to observe when the hijacker first
//! attempted to access each account." This module does literally that
//! against the simulated ecosystem: register decoy accounts, schedule
//! their credentials into crew dropboxes at random instants, run the
//! world, then read the login log.

use crate::config::ScenarioConfig;
use crate::ecosystem::Ecosystem;
use mhw_simclock::SimRng;
use mhw_types::{AccountId, CrewId, SimDuration, SimTime, DAY, HOUR};

/// One decoy's fate.
#[derive(Debug, Clone)]
pub struct DecoyOutcome {
    pub account: AccountId,
    pub crew: CrewId,
    pub submitted_at: SimTime,
    /// First hijacker login attempt (any outcome) after submission.
    pub first_attempt: Option<SimTime>,
}

impl DecoyOutcome {
    /// Delay from submission to first access attempt.
    pub fn delay(&self) -> Option<SimDuration> {
        self.first_attempt.map(|t| t.since(self.submitted_at))
    }
}

/// Aggregated experiment result.
#[derive(Debug, Clone)]
pub struct DecoyReport {
    pub outcomes: Vec<DecoyOutcome>,
}

impl DecoyReport {
    /// Fraction of all decoys accessed within `d` of submission
    /// (unaccessed decoys count in the denominator, matching Figure 7's
    /// y-axis of "percentage of decoy accounts accessed").
    pub fn fraction_accessed_within(&self, d: SimDuration) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let n = self
            .outcomes
            .iter()
            .filter(|o| o.delay().map(|x| x <= d).unwrap_or(false))
            .count();
        n as f64 / self.outcomes.len() as f64
    }

    /// Delays in hours for the accessed subset.
    pub fn delays_hours(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.delay())
            .map(|d| d.as_hours_f64())
            .collect()
    }

    /// Fraction never accessed (dropbox suspensions, page takedowns).
    pub fn fraction_never_accessed(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.first_attempt.is_none()).count() as f64
            / self.outcomes.len() as f64
    }
}

/// Run the experiment: `n_decoys` credentials submitted over the first
/// `submit_window_days` days of a scenario. Returns the ecosystem (for
/// further measurement) and the report.
pub fn run_decoy_experiment(
    config: ScenarioConfig,
    n_decoys: usize,
    submit_window_days: u64,
) -> (Ecosystem, DecoyReport) {
    let seed = config.seed;
    let mut eco = Ecosystem::build(config);
    let mut rng = SimRng::stream(seed, "decoy-experiment");
    let mut planned = Vec::with_capacity(n_decoys);
    for i in 0..n_decoys {
        let account = eco.add_decoy_account(&format!("decoy-probe-{i}"));
        // Submissions land at human hours (the paper's team typed them
        // in by hand), spread across the window.
        let day = rng.below(submit_window_days.max(1));
        let at = SimTime::from_secs(day * DAY + (8 + rng.below(12)) * HOUR + rng.below(HOUR));
        let crew_idx = eco.crews.sample_crew(&mut rng);
        let crew = CrewId::from_index(crew_idx);
        eco.schedule_decoy_submission(at, account, crew);
        planned.push((account, crew, at));
    }
    eco.run();
    let outcomes = planned
        .into_iter()
        .map(|(account, crew, submitted_at)| {
            let first_attempt = eco
                .login_log
                .for_account(account)
                .filter(|r| r.at >= submitted_at && r.actor.is_hijacker())
                .map(|r| r.at)
                .min();
            DecoyOutcome { account, crew, submitted_at, first_attempt }
        })
        .collect();
    (eco, DecoyReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoys_get_accessed_with_plausible_delays() {
        let mut config = ScenarioConfig::small_test(21);
        config.days = 12;
        let (_eco, report) = run_decoy_experiment(config, 40, 5);
        assert_eq!(report.outcomes.len(), 40);
        let accessed = 1.0 - report.fraction_never_accessed();
        assert!(accessed > 0.5, "accessed fraction {accessed}");
        // Every access strictly follows its submission.
        for o in &report.outcomes {
            if let Some(t) = o.first_attempt {
                assert!(t >= o.submitted_at);
            }
        }
        // The CDF is non-degenerate: some fast, some slow.
        let within_30m = report.fraction_accessed_within(SimDuration::from_mins(30));
        let within_24h = report.fraction_accessed_within(SimDuration::from_hours(24));
        assert!(within_24h > within_30m);
        assert!(within_24h > 0.3, "within 24h {within_24h}");
    }

    #[test]
    fn deterministic_by_seed() {
        let mk = || {
            let mut config = ScenarioConfig::small_test(22);
            config.days = 8;
            run_decoy_experiment(config, 15, 4).1
        };
        let a = mk();
        let b = mk();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.first_attempt, y.first_attempt);
            assert_eq!(x.submitted_at, y.submitted_at);
        }
    }
}
