//! Day-barrier checkpoint files: versioned, checksummed resume points.
//!
//! # What a checkpoint is (and is not)
//!
//! The engine is deterministic: every shard's state at a day barrier is
//! a pure function of `(config, completed days)`. A checkpoint therefore
//! records a **verified resume point**, not a byte image of the world:
//! the scenario fingerprint, the completed-day count, the engine's
//! exchange-queue counters and raw exchange-RNG position, and — per
//! shard — the exact positions of all six RNG streams, the event-log
//! segment lengths, and an FNV-1a digest over the shard's full state
//! (logs, stats, pending queues, metric snapshot). Resume rebuilds the
//! world and replays up to the recorded barrier, then *proves* it
//! arrived at the very same state by comparing every recorded position
//! and digest — any divergence (changed binary, different config, bit
//! rot) is a typed [`EngineError::CheckpointMismatch`], never a
//! silently wrong dataset. The trade-off is honest: resume costs
//! recompute (CPU) instead of state-file I/O, and in exchange the
//! checkpoint file stays small, version-stable and verifiable.
//!
//! # File format (version 1)
//!
//! ```text
//! magic    8 bytes  b"MHWCKPT\0"
//! version  u32 LE   1
//! body     (all integers LE)
//!   seed u64 · shards u16 · days u64 · users u64 · config_fingerprint u64
//!   completed_days u64
//!   exchange_rng [u64;4] · market_trades u64 · cross_shard_lures u64
//!   seen_incidents: u32 count, then u64 each
//!   metrics_digest u64
//!   shards: u32 count, then per shard:
//!     state_digest u64 · log_lens [u64;3]
//!     rng_states: u32 count, then [u64;4] each
//! checksum u64 LE  FNV-1a over everything before it
//! ```
//!
//! Writes are atomic (temp file + rename), so a crash mid-write leaves
//! either the previous checkpoint or none — never a torn file. Readers
//! reject bad magic, unknown versions, truncation and checksum
//! mismatches with [`EngineError::CheckpointCorrupt`].

use mhw_types::{CheckpointOp, EngineError, EngineResult, ShardId};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: identifies a manual-hijacking-wild checkpoint.
pub const MAGIC: [u8; 8] = *b"MHWCKPT\0";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

use mhw_types::fnv::{fnv1a, OFFSET as FNV_OFFSET};

/// The recorded resume point of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// FNV-1a digest over the shard's full barrier state.
    pub state_digest: u64,
    /// Lengths of the login / mail / notification log segments.
    pub log_lens: [u64; 3],
    /// Raw xoshiro positions of every shard RNG stream, in the shard's
    /// canonical stream order.
    pub rng_states: Vec<[u64; 4]>,
}

/// A parsed checkpoint file; see the [module docs](self) for semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Master seed of the checkpointed run.
    pub seed: u64,
    /// Logical shard count.
    pub n_shards: ShardId,
    /// Total days the scenario runs.
    pub days: u64,
    /// Total configured users.
    pub users: u64,
    /// Digest over the full engine configuration (config debug form,
    /// spillover, decoys, shard weights).
    pub config_fingerprint: u64,
    /// Simulated days completed at this barrier.
    pub completed_days: u64,
    /// Raw position of the engine's exchange RNG stream.
    pub exchange_rng: [u64; 4],
    /// Market trades executed so far.
    pub market_trades: u64,
    /// Cross-shard lures routed so far.
    pub cross_shard_lures: u64,
    /// Per-shard incident counts already exported at barriers.
    pub seen_incidents: Vec<u64>,
    /// Digest over the merged sim-time metrics snapshot at this barrier.
    pub metrics_digest: u64,
    /// Per-shard resume points, in shard order.
    pub shards: Vec<ShardCheckpoint>,
}

impl Checkpoint {
    /// Serialize to the version-1 binary format, checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.shards.len() * 256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let w64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        let w32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        w64(&mut buf, self.seed);
        buf.extend_from_slice(&self.n_shards.to_le_bytes());
        w64(&mut buf, self.days);
        w64(&mut buf, self.users);
        w64(&mut buf, self.config_fingerprint);
        w64(&mut buf, self.completed_days);
        for w in self.exchange_rng {
            w64(&mut buf, w);
        }
        w64(&mut buf, self.market_trades);
        w64(&mut buf, self.cross_shard_lures);
        w32(&mut buf, self.seen_incidents.len() as u32);
        for v in &self.seen_incidents {
            w64(&mut buf, *v);
        }
        w64(&mut buf, self.metrics_digest);
        w32(&mut buf, self.shards.len() as u32);
        for shard in &self.shards {
            w64(&mut buf, shard.state_digest);
            for len in shard.log_lens {
                w64(&mut buf, len);
            }
            w32(&mut buf, shard.rng_states.len() as u32);
            for state in &shard.rng_states {
                for w in state {
                    w64(&mut buf, *w);
                }
            }
        }
        let checksum = fnv1a(FNV_OFFSET, &buf);
        w64(&mut buf, checksum);
        buf
    }

    /// Parse and validate a checkpoint image. `path` is only used for
    /// error messages.
    pub fn decode(bytes: &[u8], path: &Path) -> EngineResult<Checkpoint> {
        let corrupt = |reason: String| EngineError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason,
        };
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(corrupt(format!("file is only {} bytes", bytes.len())));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic (not a checkpoint file)".into()));
        }
        // Checksum covers everything before the trailing u64.
        let body_end = bytes.len() - 8;
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[body_end..]);
        let recorded = u64::from_le_bytes(tail);
        let actual = fnv1a(FNV_OFFSET, &bytes[..body_end]);
        if recorded != actual {
            return Err(corrupt(format!(
                "checksum mismatch (recorded {recorded:#018x}, computed {actual:#018x})"
            )));
        }
        let mut pos = MAGIC.len();
        let take = |pos: &mut usize, n: usize| -> EngineResult<&[u8]> {
            if *pos + n > body_end {
                return Err(corrupt(format!("truncated body at offset {pos}")));
            }
            let slice = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(slice)
        };
        let r32 = |pos: &mut usize| -> EngineResult<u32> {
            let mut b = [0u8; 4];
            b.copy_from_slice(take(pos, 4)?);
            Ok(u32::from_le_bytes(b))
        };
        let r64 = |pos: &mut usize| -> EngineResult<u64> {
            let mut b = [0u8; 8];
            b.copy_from_slice(take(pos, 8)?);
            Ok(u64::from_le_bytes(b))
        };
        let version = r32(&mut pos)?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported version {version} (this build reads version {VERSION})"
            )));
        }
        let seed = r64(&mut pos)?;
        let n_shards = {
            let mut b = [0u8; 2];
            b.copy_from_slice(take(&mut pos, 2)?);
            ShardId::from_le_bytes(b)
        };
        let days = r64(&mut pos)?;
        let users = r64(&mut pos)?;
        let config_fingerprint = r64(&mut pos)?;
        let completed_days = r64(&mut pos)?;
        let mut exchange_rng = [0u64; 4];
        for w in &mut exchange_rng {
            *w = r64(&mut pos)?;
        }
        let market_trades = r64(&mut pos)?;
        let cross_shard_lures = r64(&mut pos)?;
        let n_seen = r32(&mut pos)? as usize;
        // Counts are bounded by the body size, so a corrupt count fails
        // on `take` instead of attempting a huge allocation.
        let mut seen_incidents = Vec::with_capacity(n_seen.min(body_end / 8));
        for _ in 0..n_seen {
            seen_incidents.push(r64(&mut pos)?);
        }
        let metrics_digest = r64(&mut pos)?;
        let n_shard_entries = r32(&mut pos)? as usize;
        let mut shards = Vec::with_capacity(n_shard_entries.min(body_end / 32));
        for _ in 0..n_shard_entries {
            let state_digest = r64(&mut pos)?;
            let mut log_lens = [0u64; 3];
            for len in &mut log_lens {
                *len = r64(&mut pos)?;
            }
            let n_rngs = r32(&mut pos)? as usize;
            let mut rng_states = Vec::with_capacity(n_rngs.min(body_end / 32));
            for _ in 0..n_rngs {
                let mut state = [0u64; 4];
                for w in &mut state {
                    *w = r64(&mut pos)?;
                }
                rng_states.push(state);
            }
            shards.push(ShardCheckpoint { state_digest, log_lens, rng_states });
        }
        if pos != body_end {
            return Err(corrupt(format!(
                "{} trailing bytes after the last shard entry",
                body_end - pos
            )));
        }
        Ok(Checkpoint {
            seed,
            n_shards,
            days,
            users,
            config_fingerprint,
            completed_days,
            exchange_rng,
            market_trades,
            cross_shard_lures,
            seen_incidents,
            metrics_digest,
            shards,
        })
    }

    /// Write the checkpoint atomically: serialize to `<path>.tmp`, sync,
    /// then rename over `path`. A crash mid-write can never leave a torn
    /// checkpoint visible under the final name.
    pub fn write_atomic(&self, path: &Path) -> EngineResult<()> {
        let io_err = |detail: std::io::Error| EngineError::CheckpointIo {
            op: CheckpointOp::Write,
            path: path.display().to_string(),
            detail: detail.to_string(),
        };
        let tmp = path.with_extension("tmp");
        let bytes = self.encode();
        let mut file = fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(&bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io_err)?;
        Ok(())
    }

    /// Read and validate a checkpoint file.
    pub fn read(path: &Path) -> EngineResult<Checkpoint> {
        let bytes = fs::read(path).map_err(|e| EngineError::CheckpointIo {
            op: CheckpointOp::Read,
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Checkpoint::decode(&bytes, path)
    }
}

/// Canonical file name for the checkpoint taken after `completed_days`
/// simulated days.
pub fn file_name(completed_days: u64) -> String {
    format!("ckpt-day{completed_days:05}.mhw")
}

/// Find the newest checkpoint (highest completed-day) in a directory,
/// by canonical file name. Returns `Ok(None)` for an empty or absent
/// set of checkpoints in an existing directory.
pub fn latest_in_dir(dir: &Path) -> EngineResult<Option<PathBuf>> {
    let entries = fs::read_dir(dir).map_err(|e| EngineError::CheckpointIo {
        op: CheckpointOp::List,
        path: dir.display().to_string(),
        detail: e.to_string(),
    })?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| EngineError::CheckpointIo {
            op: CheckpointOp::List,
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(day) = name
            .strip_prefix("ckpt-day")
            .and_then(|rest| rest.strip_suffix(".mhw"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(d, _)| day > *d) {
            best = Some((day, entry.path()));
        }
    }
    Ok(best.map(|(_, path)| path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xABCD,
            n_shards: 3,
            days: 12,
            users: 500,
            config_fingerprint: 0xF00D,
            completed_days: 8,
            exchange_rng: [1, 2, 3, 4],
            market_trades: 17,
            cross_shard_lures: 9,
            seen_incidents: vec![4, 0, 2],
            metrics_digest: 0xFEED,
            shards: vec![
                ShardCheckpoint {
                    state_digest: 11,
                    log_lens: [100, 200, 50],
                    rng_states: vec![[1, 1, 1, 1], [2, 2, 2, 2]],
                },
                ShardCheckpoint {
                    state_digest: 22,
                    log_lens: [90, 180, 45],
                    rng_states: vec![[3, 3, 3, 3]],
                },
                ShardCheckpoint { state_digest: 33, log_lens: [0, 0, 0], rng_states: vec![] },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes, Path::new("test")).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let bytes = sample().encode();
        // Flip one bit at every offset: either the checksum catches it,
        // or (for flips inside the trailing checksum itself) the
        // recorded checksum no longer matches the body.
        for offset in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x40;
            let err = Checkpoint::decode(&bad, Path::new("t")).unwrap_err();
            assert!(
                matches!(err, EngineError::CheckpointCorrupt { .. }),
                "flip at {offset} produced {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..len], Path::new("t")).unwrap_err();
            assert!(
                matches!(err, EngineError::CheckpointCorrupt { .. }),
                "truncation to {len} produced {err:?}"
            );
        }
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let mut bytes = sample().encode();
        // Patch the version and re-checksum so only the version is bad.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_end = bytes.len() - 8;
        let sum = fnv1a(FNV_OFFSET, &bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        let err = Checkpoint::decode(&bytes, Path::new("t")).unwrap_err();
        match err {
            EngineError::CheckpointCorrupt { reason, .. } => {
                assert!(reason.contains("version 99"), "{reason}")
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("mhw-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(file_name(8));
        sample().write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), sample());
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");

        // latest_in_dir picks the highest day and ignores foreign files.
        sample().write_atomic(&dir.join(file_name(4))).unwrap();
        fs::write(dir.join("notes.txt"), b"not a checkpoint").unwrap();
        let latest = latest_in_dir(&dir).unwrap().unwrap();
        assert!(latest.ends_with(file_name(8)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = Checkpoint::read(Path::new("/nonexistent/nowhere.mhw")).unwrap_err();
        assert!(matches!(
            err,
            EngineError::CheckpointIo { op: CheckpointOp::Read, .. }
        ));
    }
}
