//! Overload-safe streaming replay: fault plans, admission control and
//! load shedding for the serve tier.
//!
//! The plain [`replay_stream`](crate::replay::replay_stream) assumes
//! every signal source is always present and instant. This module is
//! the production failure model on top: a [`ServeFaultPlan`] injects
//! signal-source outages, slow responses and cache wipes into the
//! stream, and [`replay_stream_resilient`] drives the service through
//! them behind a bounded admission queue with a load-shedding policy.
//!
//! **Determinism.** Nothing here reads a wall clock. Time inside the
//! loop is *virtual*: each event arrives at `index × `[`ARRIVAL_NS`]
//! virtual nanoseconds, and scoring advances the clock by the virtual
//! cost the service reports ([`mhw_defense::Assessment::virtual_ns`]
//! — nominal
//! per-source costs, injected latencies capped by the deadline
//! budget). Queueing, shedding, breaker trips and recoveries all fall
//! out of that arithmetic, so the same seed and plan produce the same
//! verdicts, the same shed set and the same digest on every run — the
//! property `tests/serve_chaos.rs` pins.
//!
//! **Why the faults matter.** A healthy assess costs
//! [`NOMINAL_ASSESS_NS`] ≪ [`ARRIVAL_NS`], so a clean stream never
//! queues. A slow source burns each request's deadline budget until
//! its circuit breaker opens, after which fallback scoring is cheap
//! again and the queue drains: breakers are what keep p99 bounded
//! under partial outage, and the chaos tests measure exactly that.
//!
//! Fault coordinates are **per-shard local event indices**: every
//! worker thread replays its own substream under its own copy of the
//! plan, the way each real frontend would experience the incident.

#![deny(missing_docs)]

use crate::replay::{adjudicate, mix_digest, placeholder_request, ReplayLogin};
use mhw_defense::{
    RiskService, RiskVerdict, SignalConditions, SignalSource, NOMINAL_ASSESS_NS,
};
use mhw_identity::LoginOutcome;
use mhw_netmodel::GeoDb;
use mhw_simclock::SimRng;
use mhw_types::faultspec;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::str::FromStr;

/// Virtual nanoseconds between consecutive event arrivals — 2× the
/// nominal assess cost, so a healthy service keeps up with margin and
/// any sustained queueing is attributable to injected faults.
pub const ARRIVAL_NS: u64 = 2 * NOMINAL_ASSESS_NS;

/// A deterministic schedule of serve-tier faults, addressed by local
/// event index within a replayed substream.
///
/// Spec grammar (shared tokenizer with the engine's `FaultPlan` via
/// [`mhw_types::faultspec`]):
///
/// * `geo-down@START..END` — the geo source fails fast for events in
///   the half-open index range;
/// * `slow-signal@SRC:NS` — source `SRC` (`geo`, `ip-cache`/`ip`,
///   `history`) answers after `NS` virtual nanoseconds for the whole
///   stream;
/// * `cache-wipe@E` — the IP fan-out cache is dropped cold just before
///   event `E` is scored;
/// * `seeded:geo=N,slow=N,wipe=N` — that many faults of each kind at
///   coordinates drawn from the run seed's `"serve-fault-plan"` stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Half-open event-index ranges where geo fails fast.
    geo_down: Vec<(u64, u64)>,
    /// Injected response latency per source (0 = nominal), indexed by
    /// [`SignalSource::index`].
    slow_ns: [u64; 3],
    /// Event indices before which the IP cache is wiped.
    cache_wipes: BTreeSet<u64>,
}

impl ServeFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// Fail geo fast for events in `start..end`.
    pub fn geo_down(mut self, start: u64, end: u64) -> Self {
        self.geo_down.push((start, end));
        self.geo_down.sort_unstable();
        self
    }

    /// Make `source` answer after `ns` virtual nanoseconds stream-wide.
    pub fn slow(mut self, source: SignalSource, ns: u64) -> Self {
        self.slow_ns[source.index()] = self.slow_ns[source.index()].max(ns);
        self
    }

    /// Wipe the IP cache just before event `index` is scored.
    pub fn wipe_at(mut self, index: u64) -> Self {
        self.cache_wipes.insert(index);
        self
    }

    /// A reproducible random schedule over `n_events` events, drawn
    /// from the dedicated `"serve-fault-plan"` RNG stream: `n_geo` geo
    /// outage windows (~10% of the stream each), `n_slow` slow-signal
    /// injections (20–50 µs on a random source — always past the
    /// default deadline, so circuit breakers must open and shedding
    /// stays transient rather than sustained) and `n_wipe` cache
    /// wipes. Sub-deadline latencies are only reachable through the
    /// explicit `slow-signal@SRC:NS` grammar.
    pub fn seeded(seed: u64, n_events: u64, n_geo: usize, n_slow: usize, n_wipe: usize) -> Self {
        let mut plan = ServeFaultPlan::default();
        if n_events == 0 {
            return plan;
        }
        let mut rng = SimRng::stream(seed, "serve-fault-plan");
        for _ in 0..n_geo {
            let start = rng.below(n_events.saturating_mul(9) / 10 + 1);
            let len = 1 + rng.below((n_events / 10).max(1));
            plan.geo_down.push((start, (start + len).min(n_events)));
        }
        plan.geo_down.sort_unstable();
        for _ in 0..n_slow {
            let source = SignalSource::ALL[rng.below(3) as usize];
            let ns = 20_000 + rng.below(30_000);
            plan.slow_ns[source.index()] = plan.slow_ns[source.index()].max(ns);
        }
        for _ in 0..n_wipe {
            plan.cache_wipes.insert(rng.below(n_events));
        }
        plan
    }

    /// Parse a CLI fault spec (see the type docs for the grammar).
    /// Errors are plain strings naming the offending entry; the CLIs
    /// turn them into usage errors (exit code 2).
    pub fn parse_spec(spec: &str, seed: u64, n_events: u64) -> Result<Self, String> {
        let entries = match faultspec::parse(spec, &["geo", "slow", "wipe"])? {
            faultspec::FaultSpec::Seeded(counts) => {
                return Ok(ServeFaultPlan::seeded(
                    seed,
                    n_events,
                    counts.get("geo") as usize,
                    counts.get("slow") as usize,
                    counts.get("wipe") as usize,
                ));
            }
            faultspec::FaultSpec::Explicit(entries) => entries,
        };
        let mut plan = ServeFaultPlan::default();
        for entry in &entries {
            let raw = entry.raw.as_str();
            let coords = entry.coords.as_str();
            match entry.kind.as_str() {
                "geo-down" => {
                    let (start, end) = faultspec::range(raw, coords)?;
                    plan.geo_down.push((start, end));
                }
                "slow-signal" => {
                    let (source, ns) =
                        faultspec::split2(raw, coords, ':', "slow-signal@SOURCE:NS")?;
                    let source = SignalSource::from_name(source.trim()).ok_or_else(|| {
                        format!(
                            "fault entry `{raw}`: `{source}` is not a signal source \
                             (expected geo, ip-cache or history)"
                        )
                    })?;
                    let ns = faultspec::num(raw, ns, "nanosecond latency")?;
                    if ns == 0 {
                        return Err(format!(
                            "fault entry `{raw}`: a slow-signal latency must be nonzero"
                        ));
                    }
                    plan.slow_ns[source.index()] = plan.slow_ns[source.index()].max(ns);
                }
                "cache-wipe" => {
                    plan.cache_wipes.insert(faultspec::num(raw, coords, "event index")?);
                }
                other => {
                    return Err(faultspec::unknown_kind(
                        other,
                        &["geo-down", "slow-signal", "cache-wipe"],
                    ))
                }
            }
        }
        plan.geo_down.sort_unstable();
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.geo_down.is_empty() && self.slow_ns == [0; 3] && self.cache_wipes.is_empty()
    }

    /// Reject coordinates outside `0..n_events`, so typo'd plans fail
    /// fast instead of silently never firing. `n_events` is the whole
    /// stream; a multi-thread replay applies the plan per shard, where
    /// high indices may simply never fire on short shards.
    pub fn validate(&self, n_events: u64) -> Result<(), String> {
        for &(start, end) in &self.geo_down {
            if start >= n_events || end > n_events {
                return Err(format!(
                    "fault plan takes geo down for events {start}..{end}, but the stream has \
                     {n_events} events"
                ));
            }
        }
        for &wipe in &self.cache_wipes {
            if wipe >= n_events {
                return Err(format!(
                    "fault plan wipes the cache at event {wipe}, but the stream has \
                     {n_events} events"
                ));
            }
        }
        Ok(())
    }

    /// The injected source conditions for one event index.
    pub fn conditions_at(&self, index: u64) -> SignalConditions {
        let mut conditions = SignalConditions::healthy();
        for source in SignalSource::ALL {
            conditions.source_mut(source).latency_ns = self.slow_ns[source.index()];
        }
        if self.geo_down.iter().any(|&(s, e)| index >= s && index < e) {
            conditions.source_mut(SignalSource::Geo).down = true;
        }
        conditions
    }

    /// Should the IP cache be wiped just before this event is scored?
    pub fn wipes_at(&self, index: u64) -> bool {
        self.cache_wipes.contains(&index)
    }
}

impl fmt::Display for ServeFaultPlan {
    /// Canonical spec rendering, parseable back via
    /// [`ServeFaultPlan::parse_spec`] (seeded plans render their
    /// concrete fault points).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            if first {
                first = false;
                Ok(())
            } else {
                f.write_str(",")
            }
        };
        for (start, end) in &self.geo_down {
            sep(f)?;
            write!(f, "geo-down@{start}..{end}")?;
        }
        for source in SignalSource::ALL {
            let ns = self.slow_ns[source.index()];
            if ns > 0 {
                sep(f)?;
                write!(f, "slow-signal@{}:{ns}", source.name())?;
            }
        }
        for wipe in &self.cache_wipes {
            sep(f)?;
            write!(f, "cache-wipe@{wipe}")?;
        }
        if first {
            f.write_str("(no faults)")?;
        }
        Ok(())
    }
}

/// Which queued request to drop when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Control policy: drop the arriving request (tail drop).
    Fifo,
    /// Drop the request with the lowest cheap risk prior among the
    /// queue and the arrival — keep scoring capacity for the logins
    /// most worth scoring.
    #[default]
    LowestRiskFirst,
}

impl ShedPolicy {
    /// The CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::Fifo => "fifo",
            ShedPolicy::LowestRiskFirst => "lowest-risk",
        }
    }
}

impl FromStr for ShedPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fifo" => Ok(ShedPolicy::Fifo),
            "lowest-risk" | "lowest-risk-first" => Ok(ShedPolicy::LowestRiskFirst),
            other => Err(format!("unknown shed policy `{other}` (expected fifo or lowest-risk)")),
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission-control tuning for one resilient replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Per-request virtual-nanosecond deadline budget (the service is
    /// constructed with this; carried here so reports can echo it).
    pub deadline_ns: u64,
    /// Bounded inflight-queue depth per service instance (≥ 1).
    pub queue_cap: usize,
    /// What to drop when the queue is full.
    pub shed_policy: ShedPolicy,
    /// The injected fault schedule.
    pub faults: ServeFaultPlan,
}

/// The serve tier's default per-request deadline budget: ~7× the
/// nominal assess cost, so only injected faults ever hit it.
pub const DEFAULT_DEADLINE_NS: u64 = 5_000;

/// The serve tier's default admission-queue depth.
pub const DEFAULT_QUEUE_CAP: usize = 64;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            deadline_ns: DEFAULT_DEADLINE_NS,
            queue_cap: DEFAULT_QUEUE_CAP,
            shed_policy: ShedPolicy::default(),
            faults: ServeFaultPlan::default(),
        }
    }
}

/// What one resilient replay did, beyond its digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Events in the substream (scored + shed).
    pub events: u64,
    /// Events scored through the full ladder.
    pub scored: u64,
    /// Events shed by admission control (never scored, never
    /// committed).
    pub shed: u64,
    /// Scored events whose verdict had at least one degraded signal.
    pub degraded_events: u64,
    /// Degraded-signal counts per source, indexed by
    /// [`SignalSource::index`].
    pub degraded_by_source: [u64; 3],
    /// Cache wipes injected.
    pub cache_wipes: u64,
    /// Deepest the admission queue got (including the request being
    /// admitted).
    pub peak_queue_depth: u64,
}

impl ReplayStats {
    /// Fold another shard's stats into this one.
    pub fn merge(&mut self, other: &ReplayStats) {
        self.events += other.events;
        self.scored += other.scored;
        self.shed += other.shed;
        self.degraded_events += other.degraded_events;
        for i in 0..3 {
            self.degraded_by_source[i] += other.degraded_by_source[i];
        }
        self.cache_wipes += other.cache_wipes;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }

    /// Shed events as a fraction of all events (0 on an empty stream).
    pub fn shed_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.shed as f64 / self.events as f64
        }
    }
}

fn fill_request(request: &mut mhw_defense::LoginRequest, event: &ReplayLogin) {
    request.at = event.at;
    request.account = event.account;
    request.ip = event.ip;
    request.device = event.device;
}

/// Replay `events` through `service` under admission control and the
/// options' fault plan, chaining the verdict digest from `digest`.
///
/// Every event ends in exactly one of two ways, and both mix into the
/// digest in completion order:
///
/// * **scored** — assessed under the injected conditions (degrading
///   rather than blocking), adjudicated, committed;
/// * **shed** — the queue was full and the policy dropped it: it gets
///   the service's cheap-prior [`shed_verdict`], is **never
///   committed**, and leaves no trace in service state.
///
/// `observe(index, event, verdict, outcome, virtual_latency_ns)` runs
/// per event at completion; `virtual_latency_ns` is queueing + scoring
/// time in the virtual clock.
///
/// [`shed_verdict`]: RiskService::shed_verdict
pub fn replay_stream_resilient<S: RiskService + ?Sized>(
    service: &mut S,
    geo: &GeoDb,
    events: &[ReplayLogin],
    digest: u64,
    opts: &ServeOptions,
    stats: &mut ReplayStats,
    mut observe: impl FnMut(usize, &ReplayLogin, &RiskVerdict, LoginOutcome, u64),
) -> u64 {
    let mut request = placeholder_request();
    let mut h = digest;
    let n = events.len();
    let cap = opts.queue_cap.max(1);
    let mut queue: VecDeque<usize> = VecDeque::with_capacity(cap + 1);
    let mut next = 0usize; // next event index to arrive
    let mut vnow = 0u64; // the virtual clock
    let arrival = |i: usize| i as u64 * ARRIVAL_NS;
    stats.events += n as u64;
    while next < n || !queue.is_empty() {
        // Admit everything that has arrived by now; shed on overflow.
        while next < n && arrival(next) <= vnow {
            queue.push_back(next);
            next += 1;
            stats.peak_queue_depth = stats.peak_queue_depth.max(queue.len() as u64);
            if queue.len() > cap {
                let victim_pos = match opts.shed_policy {
                    // Tail drop: the arrival is the newest entry.
                    ShedPolicy::Fifo => queue.len() - 1,
                    ShedPolicy::LowestRiskFirst => {
                        let mut pos = 0;
                        let mut lowest = f64::INFINITY;
                        for (p, &idx) in queue.iter().enumerate() {
                            fill_request(&mut request, &events[idx]);
                            let prior = service.cheap_prior(&request);
                            // Strict `<` keeps the earliest of equal
                            // priors, deterministically.
                            if prior < lowest {
                                lowest = prior;
                                pos = p;
                            }
                        }
                        pos
                    }
                };
                #[allow(clippy::expect_used)] // queue is non-empty: it just overflowed
                let victim = queue.remove(victim_pos).expect("victim position in bounds");
                fill_request(&mut request, &events[victim]);
                let verdict = service.shed_verdict(&request);
                let outcome = adjudicate(&events[victim], verdict.decision);
                h = mix_digest(h, &verdict, outcome);
                stats.shed += 1;
                observe(victim, &events[victim], &verdict, outcome, vnow - arrival(victim));
            }
        }
        let Some(index) = queue.pop_front() else {
            // Idle: jump the virtual clock to the next arrival.
            vnow = arrival(next);
            continue;
        };
        let local = index as u64;
        if opts.faults.wipes_at(local) {
            service.inject_cache_wipe(events[index].at);
            stats.cache_wipes += 1;
        }
        let conditions = opts.faults.conditions_at(local);
        fill_request(&mut request, &events[index]);
        let assessment = service.assess_with(&request, geo, &conditions);
        let outcome = adjudicate(&events[index], assessment.verdict.decision);
        service.commit(&request, &assessment.verdict, outcome);
        vnow += assessment.virtual_ns;
        stats.scored += 1;
        let fidelity = assessment.verdict.fidelity;
        if !fidelity.is_full() {
            stats.degraded_events += 1;
            for source in SignalSource::ALL {
                if fidelity.is_degraded(source) {
                    stats.degraded_by_source[source.index()] += 1;
                }
            }
        }
        h = mix_digest(h, &assessment.verdict, outcome);
        observe(index, &events[index], &assessment.verdict, outcome, vnow - arrival(index));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{generate_workload, replay_stream, WorkloadConfig, DIGEST_SEED};
    use mhw_defense::{ResilienceConfig, RiskEngine, ServiceLimits, StreamingRiskService};

    fn serve_service(deadline_ns: u64) -> StreamingRiskService {
        StreamingRiskService::with_resilience(
            RiskEngine::default(),
            ServiceLimits::default(),
            ResilienceConfig::with_deadline(deadline_ns),
        )
    }

    fn small_stream() -> (GeoDb, Vec<ReplayLogin>) {
        let geo = GeoDb::new();
        let events = generate_workload(&WorkloadConfig::small(21), &geo);
        (geo, events)
    }

    #[test]
    fn spec_round_trips_and_names_bad_entries() {
        let plan =
            ServeFaultPlan::parse_spec("geo-down@10..40,slow-signal@history:25000,cache-wipe@7", 0, 100)
                .unwrap();
        assert!(plan.conditions_at(10).source(SignalSource::Geo).down);
        assert!(!plan.conditions_at(40).source(SignalSource::Geo).down);
        assert_eq!(plan.conditions_at(0).source(SignalSource::History).latency_ns, 25_000);
        assert!(plan.wipes_at(7));
        assert!(plan.validate(100).is_ok());
        assert!(plan.validate(30).is_err(), "range past the stream is rejected");
        let reparsed = ServeFaultPlan::parse_spec(&plan.to_string(), 0, 100).unwrap();
        assert_eq!(plan, reparsed);

        let err = ServeFaultPlan::parse_spec("geo-down@40..10", 0, 100).unwrap_err();
        assert!(err.contains("geo-down@40..10"), "{err}");
        let err = ServeFaultPlan::parse_spec("slow-signal@dns:5", 0, 100).unwrap_err();
        assert!(err.contains("dns"), "{err}");
        let err = ServeFaultPlan::parse_spec("explode@1", 0, 100).unwrap_err();
        assert!(err.contains("explode"), "{err}");
        let err = ServeFaultPlan::parse_spec("seeded:geo=many", 0, 100).unwrap_err();
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = ServeFaultPlan::seeded(0x5E2E, 10_000, 1, 2, 1);
        let b = ServeFaultPlan::seeded(0x5E2E, 10_000, 1, 2, 1);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate(10_000).is_ok(), "seeded faults are always in range");
        let c = ServeFaultPlan::seeded(0x5E2F, 10_000, 1, 2, 1);
        assert_ne!(a, c, "a different seed draws a different schedule");
        let from_spec = ServeFaultPlan::parse_spec("seeded:geo=1,slow=2,wipe=1", 0x5E2E, 10_000)
            .unwrap();
        assert_eq!(from_spec, a);
    }

    #[test]
    fn empty_plan_resilient_replay_matches_plain_replay() {
        let (geo, events) = small_stream();
        let mut plain = StreamingRiskService::new(RiskEngine::default());
        let expected = replay_stream(&mut plain, &geo, &events, DIGEST_SEED, |_, _, _| {});
        let mut svc = serve_service(DEFAULT_DEADLINE_NS);
        let mut stats = ReplayStats::default();
        let got = replay_stream_resilient(
            &mut svc,
            &geo,
            &events,
            DIGEST_SEED,
            &ServeOptions::default(),
            &mut stats,
            |_, _, _, _, _| {},
        );
        assert_eq!(got, expected, "no faults → bit-identical to the plain path");
        assert_eq!(stats.shed, 0, "a healthy stream never sheds");
        assert_eq!(stats.degraded_events, 0);
        assert_eq!(stats.scored, events.len() as u64);
    }

    #[test]
    fn slow_signal_fills_the_queue_and_sheds_deterministically() {
        let (geo, events) = small_stream();
        let opts = ServeOptions {
            queue_cap: 4,
            faults: ServeFaultPlan::new().slow(SignalSource::History, 25_000),
            ..ServeOptions::default()
        };
        let run = |policy: ShedPolicy| {
            let mut svc = serve_service(DEFAULT_DEADLINE_NS);
            let mut stats = ReplayStats::default();
            let digest = replay_stream_resilient(
                &mut svc,
                &geo,
                &events,
                DIGEST_SEED,
                &ServeOptions { shed_policy: policy, ..opts.clone() },
                &mut stats,
                |_, _, _, _, _| {},
            );
            (digest, stats)
        };
        let (d1, s1) = run(ShedPolicy::LowestRiskFirst);
        let (d2, s2) = run(ShedPolicy::LowestRiskFirst);
        assert_eq!(d1, d2, "same plan, same seed → byte-identical");
        assert_eq!(s1, s2);
        assert!(s1.shed > 0, "a 25µs source against a 5µs deadline must shed");
        assert_eq!(s1.scored + s1.shed, s1.events);
        assert!(s1.peak_queue_depth >= 4);
        let (d3, s3) = run(ShedPolicy::Fifo);
        assert!(s3.shed > 0);
        assert_ne!(d1, d3, "the shed policy changes which events are scored");
    }

    #[test]
    fn shed_events_leave_no_service_state_trace() {
        let (geo, events) = small_stream();
        // Start from "every account was only shed" and remove accounts
        // as scored events for them complete.
        let mut shed_only: std::collections::HashSet<u32> =
            events.iter().map(|e| e.account.0).collect();
        let opts = ServeOptions {
            queue_cap: 2,
            shed_policy: ShedPolicy::Fifo,
            faults: ServeFaultPlan::new().slow(SignalSource::History, 25_000),
            ..ServeOptions::default()
        };
        let mut svc = serve_service(DEFAULT_DEADLINE_NS);
        let mut stats = ReplayStats::default();
        replay_stream_resilient(
            &mut svc,
            &geo,
            &events,
            DIGEST_SEED,
            &opts,
            &mut stats,
            |_, event, verdict, _, _| {
                if !verdict.fidelity.is_shed() {
                    shed_only.remove(&event.account.0);
                }
            },
        );
        assert!(stats.shed > 0);
        let distinct: std::collections::HashSet<u32> =
            events.iter().map(|e| e.account.0).collect();
        let scored_accounts = distinct.len() - shed_only.len();
        assert!(
            svc.state_size().accounts <= scored_accounts,
            "an account whose every event was shed must not materialize state"
        );
    }
}
