//! The persistent worker pool behind [`ShardedEngine`](crate::ShardedEngine).
//!
//! # Why a pool
//!
//! The engine's first parallel implementation spawned `workers` fresh OS
//! threads through [`std::thread::scope`] *every simulated day* — a
//! 90-day run at 8 workers paid 720 thread spawns, and the per-day
//! static shard buckets meant one slow shard stalled its whole bucket.
//! `BENCH_obs.json` showed the result: adding workers made runs
//! *slower*. [`WorkerPool`] fixes both halves: threads are spawned once
//! per run and parked between dispatches, and work is claimed by an
//! atomic next-job index so an idle worker steals whatever job is still
//! unclaimed instead of waiting on a pre-assigned bucket.
//!
//! # Protocol
//!
//! [`WorkerPool::scoped`] spawns `workers - 1` helper threads (the
//! calling thread is participant 0, so one worker means zero threads and
//! zero coordination cost) and hands the caller a handle. Each
//! [`WorkerPool::run_chunked`] dispatch:
//!
//! 1. resets the shared claim index and publishes the job closure under
//!    the state mutex, bumping a generation counter;
//! 2. wakes the helpers, which — like the coordinator itself — claim
//!    `chunk`-sized runs of job indices via `fetch_add` until the index
//!    passes `n_jobs`;
//! 3. blocks until every helper has reported done for this generation,
//!    which is what makes lending the closure's borrowed state to the
//!    helper threads sound.
//!
//! Job indices, not thread identities, address the work: a job must
//! touch only state addressed by its index (the engine gives every
//! shard its own cache-padded slot), so *which* worker runs a job can
//! never influence the output — work stealing is invisible to the
//! dataset digest.
//!
//! # Panic isolation
//!
//! Every job invocation runs under [`std::panic::catch_unwind`], so a
//! panicking job can neither tear down the process nor let unwinding
//! cross the pool's coordination mutex (which would poison it and
//! cascade secondary panics through every other worker — the exact
//! failure mode this pool used to have). On the first caught panic the
//! dispatch sets an abort flag; workers finish the job they are on,
//! stop claiming new indices, and the generation drains normally. The
//! dispatch then reports the panic as a [`JobPanic`] value — always the
//! one with the **lowest job index**, so the reported failure is
//! deterministic even when several jobs panic in one racy dispatch.
//! The few pool-internal locks that remain use explicit poison-aware
//! recovery (`PoisonError::into_inner`): coordination state is a
//! generation counter and a done-count, both valid under any
//! interleaving, so recovery is always safe.
//!
//! Determinism therefore holds by construction at any worker count,
//! and the pool's only observable side channel is wall-clock timing
//! ([`WorkerPool::take_worker_busy`]), which stays out of the
//! deterministic run report.

use mhw_types::CachePadded;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// A panic caught at the pool boundary while running one job.
///
/// `index` and `payload` are deterministic for a deterministic job set;
/// `worker` records which participant happened to claim the job and is
/// pure mechanics (it varies with scheduling).
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// The job index whose closure panicked (for the engine: the shard).
    pub index: usize,
    /// The pool participant that was running the job.
    pub worker: usize,
    /// The panic payload, stringified. `&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder.
    pub payload: String,
}

fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The job closure currently being dispatched, with its lifetime erased.
///
/// Soundness: the pointer is only dereferenced by helpers between the
/// generation bump that publishes it and the `helpers_done` report that
/// [`WorkerPool::run_chunked`] blocks on, and the closure it points to
/// lives on the dispatching caller's stack for that whole window.
struct TaskPtr(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the
// dispatch protocol above guarantees it outlives every dereference.
unsafe impl Send for TaskPtr {}

/// Coordinator/helper handshake state, guarded by one mutex.
struct State {
    /// Bumped once per dispatch; helpers run each generation exactly once.
    generation: u64,
    /// Jobs in the current dispatch.
    n_jobs: usize,
    /// Claim granularity for the current dispatch.
    chunk: usize,
    /// The published job closure, present only while a dispatch is live.
    task: Option<TaskPtr>,
    /// Helpers that have finished the current generation.
    helpers_done: usize,
    /// Set once by `scoped` teardown; helpers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Next unclaimed job index — the work-stealing heart of the pool.
    next: AtomicUsize,
    /// Set when a job panics: workers stop claiming further indices so
    /// the generation drains instead of burning CPU on a doomed run.
    aborting: AtomicBool,
    /// Panics caught during the current dispatch, collected so the
    /// dispatcher can report the lowest-index one deterministically.
    panics: Mutex<Vec<JobPanic>>,
    /// Wakes helpers for a new generation (or shutdown).
    go: Condvar,
    /// Wakes the coordinator when the last helper finishes.
    done: Condvar,
    /// Per-participant busy nanoseconds, cache-padded so workers never
    /// contend while accumulating their own timings.
    busy_ns: Vec<CachePadded<AtomicU64>>,
    helpers: usize,
}

impl Shared {
    /// Lock the coordination state with explicit poison recovery. Jobs
    /// run under `catch_unwind` and never hold this mutex, so poisoning
    /// can only come from a bug in the pool itself — and even then the
    /// handshake fields (counters and flags) are valid under any
    /// interleaving, so continuing is always sound and beats cascading
    /// a secondary panic through every worker.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_panics(&self) -> MutexGuard<'_, Vec<JobPanic>> {
        self.panics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn claim_loop(
        &self,
        worker: usize,
        job: &(dyn Fn(usize, usize) + Sync),
        n_jobs: usize,
        chunk: usize,
    ) {
        let start = Instant::now();
        'claims: loop {
            if self.aborting.load(Ordering::Relaxed) {
                break;
            }
            let lo = self.next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= n_jobs {
                break;
            }
            for i in lo..(lo + chunk).min(n_jobs) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(worker, i))) {
                    self.aborting.store(true, Ordering::Relaxed);
                    self.lock_panics().push(JobPanic {
                        index: i,
                        worker,
                        payload: payload_string(payload),
                    });
                    break 'claims;
                }
            }
        }
        self.busy_ns[worker].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn helper_loop(&self, worker: usize) {
        let mut seen_generation = 0u64;
        loop {
            let (task, n_jobs, chunk) = {
                let mut state = self.lock_state();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.generation != seen_generation {
                        break;
                    }
                    state = self.go.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                seen_generation = state.generation;
                let Some(task) = state.task.as_ref() else {
                    unreachable!("live generation has a task");
                };
                (task.0, state.n_jobs, state.chunk)
            };
            // SAFETY: see `TaskPtr` — the dispatcher blocks until this
            // helper reports done, keeping the closure alive.
            let job = unsafe { &*task };
            self.claim_loop(worker, job, n_jobs, chunk);
            let mut state = self.lock_state();
            state.helpers_done += 1;
            if state.helpers_done == self.helpers {
                self.done.notify_one();
            }
        }
    }

    /// Drain the panics recorded during the dispatch that just finished
    /// and turn them into the dispatch result: `Err` carrying the
    /// lowest-index panic if any job panicked.
    fn dispatch_result(&self) -> Result<(), JobPanic> {
        let mut panics = std::mem::take(&mut *self.lock_panics());
        if panics.is_empty() {
            return Ok(());
        }
        panics.sort_by_key(|p| p.index);
        Err(panics.swap_remove(0))
    }
}

/// A persistent pool of worker threads scoped to one engine run; see
/// the [module docs](self) for the dispatch protocol.
pub struct WorkerPool<'pool> {
    shared: &'pool Shared,
    workers: usize,
}

impl WorkerPool<'_> {
    /// Run `f` with a pool of `workers` total participants: the calling
    /// thread plus `workers - 1` helper threads that live until `f`
    /// returns. With one worker no threads are spawned at all and every
    /// dispatch runs inline on the caller.
    pub fn scoped<R>(workers: usize, f: impl FnOnce(&WorkerPool<'_>) -> R) -> R {
        let workers = workers.max(1);
        let shared = Shared {
            state: Mutex::new(State {
                generation: 0,
                n_jobs: 0,
                chunk: 1,
                task: None,
                helpers_done: 0,
                shutdown: false,
            }),
            next: AtomicUsize::new(0),
            aborting: AtomicBool::new(false),
            panics: Mutex::new(Vec::new()),
            go: Condvar::new(),
            done: Condvar::new(),
            busy_ns: (0..workers).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            helpers: workers - 1,
        };
        thread::scope(|scope| {
            for worker in 1..workers {
                let shared = &shared;
                scope.spawn(move || shared.helper_loop(worker));
            }
            let pool = WorkerPool { shared: &shared, workers };
            let out = f(&pool);
            let mut state = shared.lock_state();
            state.shutdown = true;
            drop(state);
            shared.go.notify_all();
            out
        })
    }

    /// Total participants (coordinator plus helpers).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatch `n_jobs` jobs claimed one index at a time — maximum
    /// balance, right for small job counts like shards-per-day.
    ///
    /// Returns `Err` with the lowest-index caught panic if any job
    /// panicked; the remaining jobs' effects are intact (each job owns
    /// its index-addressed state), so callers can salvage partial
    /// results.
    pub fn run(&self, n_jobs: usize, job: &(dyn Fn(usize, usize) + Sync)) -> Result<(), JobPanic> {
        self.run_chunked(n_jobs, 1, job)
    }

    /// Dispatch `n_jobs` jobs over the pool. Workers (the calling
    /// thread included) repeatedly claim `chunk` consecutive job
    /// indices from a shared atomic counter and invoke
    /// `job(worker, index)` for each; the call returns once the
    /// generation has drained. Larger chunks amortise claim traffic for
    /// big job lists; chunk 1 maximises balance.
    ///
    /// `job` must confine its effects to state addressed by its job
    /// index — that is what keeps worker scheduling invisible to the
    /// produced data.
    ///
    /// A panicking job aborts the remainder of the dispatch (in-flight
    /// jobs finish, unclaimed indices are skipped) and is reported as
    /// `Err(JobPanic)`; every pool thread survives to serve the next
    /// dispatch.
    pub fn run_chunked(
        &self,
        n_jobs: usize,
        chunk: usize,
        job: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), JobPanic> {
        if n_jobs == 0 {
            return Ok(());
        }
        let chunk = chunk.max(1);
        self.shared.aborting.store(false, Ordering::Relaxed);
        if self.workers == 1 || n_jobs == 1 {
            // Inline fast path: nothing to coordinate, but panics are
            // still caught so single-worker runs fail identically to
            // parallel ones.
            let start = Instant::now();
            for i in 0..n_jobs {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(0, i))) {
                    self.shared.busy_ns[0]
                        .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    return Err(JobPanic { index: i, worker: 0, payload: payload_string(payload) });
                }
            }
            self.shared.busy_ns[0]
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return Ok(());
        }
        self.shared.next.store(0, Ordering::Relaxed);
        // SAFETY: erases the closure's borrow lifetime to publish it to
        // the helper threads; see `TaskPtr` — this call blocks below
        // until every helper is done with it.
        let task: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut state = self.shared.lock_state();
            state.task = Some(TaskPtr(task));
            state.n_jobs = n_jobs;
            state.chunk = chunk;
            state.helpers_done = 0;
            state.generation += 1;
        }
        self.shared.go.notify_all();
        self.shared.claim_loop(0, job, n_jobs, chunk);
        let mut state = self.shared.lock_state();
        while state.helpers_done < self.shared.helpers {
            state = self.shared.done.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.task = None;
        drop(state);
        self.shared.dispatch_result()
    }

    /// Per-worker busy wall-clock time accumulated since the last call
    /// (coordinator first), resetting the accumulators. Pure mechanics
    /// for profiling — never part of deterministic output.
    pub fn take_worker_busy(&self) -> Vec<Duration> {
        self.shared
            .busy_ns
            .iter()
            .map(|ns| Duration::from_nanos(ns.swap(0, Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_job_runs_exactly_once() {
        for workers in [1usize, 2, 3, 8] {
            let hits: Vec<CachePadded<AtomicU64>> =
                (0..37).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
            WorkerPool::scoped(workers, |pool| {
                pool.run(hits.len(), &|_w, i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                })
                .expect("no job panics");
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "job {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let counter = AtomicU64::new(0);
        WorkerPool::scoped(4, |pool| {
            for round in 1..=5u64 {
                pool.run(16, &|_w, _i| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .expect("no job panics");
                assert_eq!(counter.load(Ordering::Relaxed), round * 16);
            }
        });
    }

    #[test]
    fn chunked_claiming_covers_ragged_tails() {
        // n_jobs not divisible by chunk: the tail chunk is partial.
        let hits: Vec<CachePadded<AtomicU64>> =
            (0..23).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        WorkerPool::scoped(3, |pool| {
            pool.run_chunked(hits.len(), 4, &|_w, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .expect("no job panics");
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_dispatch_is_a_no_op() {
        WorkerPool::scoped(2, |pool| {
            pool.run(0, &|_w, _i| panic!("no jobs to run")).expect("zero jobs cannot panic");
            assert_eq!(pool.workers(), 2);
        });
    }

    #[test]
    fn busy_timings_cover_all_participants_and_reset() {
        WorkerPool::scoped(2, |pool| {
            pool.run(8, &|_w, _i| {
                std::hint::black_box((0..1000u64).sum::<u64>());
            })
            .expect("no job panics");
            let busy = pool.take_worker_busy();
            assert_eq!(busy.len(), 2);
            assert!(busy.iter().any(|d| !d.is_zero()), "someone did the work");
            let reset = pool.take_worker_busy();
            assert!(reset.iter().all(Duration::is_zero), "take resets accumulators");
        });
    }

    #[test]
    fn single_worker_runs_inline() {
        let thread_id = std::thread::current().id();
        WorkerPool::scoped(1, |pool| {
            pool.run(4, &|w, _i| {
                assert_eq!(w, 0);
                assert_eq!(std::thread::current().id(), thread_id);
            })
            .expect("no job panics");
        });
    }

    #[test]
    fn panic_is_caught_and_reported_with_payload() {
        for workers in [1usize, 2, 4] {
            let err = WorkerPool::scoped(workers, |pool| {
                pool.run(8, &|_w, i| {
                    if i == 3 {
                        panic!("job {i} exploded");
                    }
                })
            })
            .expect_err("job 3 panics");
            assert_eq!(err.index, 3, "at {workers} workers");
            assert!(err.payload.contains("job 3 exploded"), "payload: {}", err.payload);
        }
    }

    #[test]
    fn pool_survives_a_panicking_dispatch() {
        // The load-bearing regression test for the old poisoned-mutex
        // cascade: after a panicking generation, every thread must still
        // be alive and the next dispatch must run normally.
        let counter = AtomicU64::new(0);
        WorkerPool::scoped(4, |pool| {
            let err = pool.run(12, &|_w, i| {
                if i == 5 {
                    panic!("mid-run failure");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert!(err.is_err(), "the panic must surface");
            let before = counter.load(Ordering::Relaxed);
            assert!(before < 12, "dispatch aborted early");
            pool.run(16, &|_w, _i| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .expect("pool recovered for the next generation");
            assert_eq!(counter.load(Ordering::Relaxed), before + 16);
        });
    }

    #[test]
    fn lowest_index_panic_wins_deterministically() {
        // Every job panics; whichever worker gets there first, the
        // report must always name job 0.
        for workers in [1usize, 3, 8] {
            let err = WorkerPool::scoped(workers, |pool| {
                pool.run(16, &|_w, i| panic!("boom {i}"))
            })
            .expect_err("all jobs panic");
            // With >1 worker several panics may be recorded; index 0 is
            // always among them because abort only stops *new* claims
            // and index 0 is claimed first.
            assert_eq!(err.index, 0, "at {workers} workers");
            assert!(err.payload.contains("boom 0"));
        }
    }

    #[test]
    fn non_string_payloads_get_a_placeholder() {
        let err = WorkerPool::scoped(1, |pool| {
            pool.run(1, &|_w, _i| std::panic::panic_any(42_u32))
        })
        .expect_err("job panics");
        assert_eq!(err.payload, "non-string panic payload");
    }
}
