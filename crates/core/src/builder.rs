//! Scenario construction — the one front door to the simulator.
//!
//! [`ScenarioBuilder`] assembles a [`ScenarioConfig`], applies optional
//! post-build tweaks (e.g. overriding a crew tactic for an ablation),
//! and produces a ready [`Ecosystem`]. Experiments, examples and tests
//! go through it rather than mutating `Ecosystem` fields directly, so
//! the report stores (`pages`, `takedowns`, `incidents`, `sessions`)
//! can stay crate-private and every run is described by one value.

use crate::config::{DefenseConfig, ScenarioConfig};
use crate::ecosystem::Ecosystem;
use crate::engine::{default_workers, ShardedEngine};
use mhw_adversary::{CrewRoster, Era};
use mhw_types::ShardId;

/// A deferred adjustment applied to the crew roster after the world is
/// built (the ablation hook).
type CrewTweak = Box<dyn FnOnce(&mut CrewRoster)>;

/// Fluent builder for a scenario run.
///
/// ```
/// use mhw_core::ScenarioBuilder;
///
/// let eco = ScenarioBuilder::small_test(7).days(3).run();
/// assert!(eco.stats.organic_logins > 0);
/// ```
pub struct ScenarioBuilder {
    config: ScenarioConfig,
    crew_tweaks: Vec<CrewTweak>,
    workers: usize,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new(ScenarioConfig::default())
    }
}

impl ScenarioBuilder {
    /// Start from an explicit configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        ScenarioBuilder { config, crew_tweaks: Vec::new(), workers: default_workers() }
    }

    /// Start from [`ScenarioConfig::small_test`] (fast; unit tests).
    pub fn small_test(seed: u64) -> Self {
        ScenarioBuilder::new(ScenarioConfig::small_test(seed))
    }

    /// Start from [`ScenarioConfig::measurement`] (experiment scale).
    pub fn measurement(seed: u64) -> Self {
        ScenarioBuilder::new(ScenarioConfig::measurement(seed))
    }

    /// Override the RNG seed. Same config + same seed ⇒ bit-identical
    /// datasets.
    ///
    /// ```
    /// use mhw_core::ScenarioBuilder;
    ///
    /// let a = ScenarioBuilder::small_test(1).seed(42).days(2).run();
    /// let b = ScenarioBuilder::small_test(1).seed(42).days(2).run();
    /// assert_eq!(a.stats.lures_delivered, b.stats.lures_delivered);
    /// assert_eq!(a.stats.incidents, b.stats.incidents);
    /// ```
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Logical shard id for this instance (see [`ScenarioConfig::shard`]).
    pub fn shard(mut self, shard: ShardId) -> Self {
        self.config.shard = shard;
        self
    }

    /// Fraction of captured credentials offered to the cross-shard
    /// market (see [`ScenarioConfig::market_share`]).
    pub fn market_share(mut self, share: f64) -> Self {
        self.config.market_share = share;
        self
    }

    /// Number of simulated days [`run`](Self::run) executes.
    pub fn days(mut self, days: u64) -> Self {
        self.config.days = days;
        self
    }

    /// Select the simulated era (the paper contrasts 2011's weak
    /// defenses with 2012's hardened ones).
    pub fn era(mut self, era: Era) -> Self {
        self.config.era = era;
        self
    }

    /// Total user population size.
    ///
    /// ```
    /// use mhw_core::ScenarioBuilder;
    ///
    /// let eco = ScenarioBuilder::small_test(3).population(150).days(1).run();
    /// assert_eq!(eco.population.len(), 150);
    /// ```
    pub fn population(mut self, n_users: usize) -> Self {
        self.config.population.n_users = n_users;
        self
    }

    /// Replace the whole defense configuration (risk analysis, scam
    /// classifier, activity monitor, notifications).
    ///
    /// ```
    /// use mhw_core::{DefenseConfig, ScenarioBuilder};
    ///
    /// // An undefended world never challenges its users at login.
    /// let eco = ScenarioBuilder::small_test(5)
    ///     .defense(DefenseConfig::none())
    ///     .days(2)
    ///     .run();
    /// assert_eq!(eco.stats.organic_challenges, 0);
    /// ```
    pub fn defense(mut self, defense: DefenseConfig) -> Self {
        self.config.defense = defense;
        self
    }

    /// Phishing pressure: expected lures per user per day.
    pub fn lures_per_user_day(mut self, rate: f64) -> Self {
        self.config.lures_per_user_day = rate;
        self
    }

    /// Arbitrary configuration access for knobs without a dedicated
    /// setter.
    pub fn configure(mut self, f: impl FnOnce(&mut ScenarioConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Worker threads for [`sharded`](Self::sharded) runs (defaults to
    /// the machine's available parallelism). Pure mechanics: never
    /// affects the produced datasets; ignored by the single-world
    /// [`run`](Self::run)/[`build`](Self::build) paths, which have no
    /// parallel phase.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Mutate the built crew roster before the run starts — the hook for
    /// ablations that override a single tactic probability without
    /// defining a whole new [`mhw_adversary::CrewSpec`].
    pub fn tweak_crews(mut self, f: impl FnOnce(&mut CrewRoster) + 'static) -> Self {
        self.crew_tweaks.push(Box::new(f));
        self
    }

    /// The configuration as currently assembled.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Consume the builder, yielding the configuration — for entry
    /// points that still take a [`ScenarioConfig`] value (e.g.
    /// [`crate::decoy::run_decoy_experiment`]).
    pub fn into_config(self) -> ScenarioConfig {
        self.config
    }

    /// Build the world without running it (day 0 state).
    pub fn build(self) -> Ecosystem {
        let mut eco = Ecosystem::build(self.config);
        for tweak in self.crew_tweaks {
            tweak(&mut eco.crews);
        }
        eco
    }

    /// Build and run all configured days.
    pub fn run(self) -> Ecosystem {
        let mut eco = self.build();
        eco.run();
        eco
    }

    /// Hand the assembled configuration to a [`ShardedEngine`] over
    /// `n_shards` logical shards, carrying the builder's
    /// [`workers`](Self::workers) setting. Panics if crew tweaks were
    /// queued — the sharded engine builds its worlds on worker threads
    /// and cannot apply single-world `FnOnce` tweaks.
    pub fn sharded(self, n_shards: u16) -> ShardedEngine {
        assert!(
            self.crew_tweaks.is_empty(),
            "crew tweaks are not supported on the sharded path"
        );
        ShardedEngine::new(self.config, n_shards).workers(self.workers)
    }

    /// Fork a divergent continuation from a frozen [`WorldSnapshot`](crate::WorldSnapshot)
    /// instead of building a world from scratch: the snapshot's
    /// expensive prefix (population, contact graph, warmed-up user
    /// state, completed days) is reused, and only the continuation's
    /// remaining days are simulated. The returned [`ForkBuilder`](crate::ForkBuilder)
    /// defaults to reproducing the snapshot's own run byte-for-byte;
    /// its setters diverge the seed, defense config, or fault plan.
    pub fn fork_from(snapshot: &crate::WorldSnapshot) -> crate::ForkBuilder<'_> {
        snapshot.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters_land_in_config() {
        let b = ScenarioBuilder::small_test(5)
            .days(3)
            .population(120)
            .shard(2)
            .market_share(0.25)
            .lures_per_user_day(0.7)
            .defense(DefenseConfig::none())
            .configure(|c| c.contact_leniency = 0.0);
        let c = b.config();
        assert_eq!(c.seed, 5);
        assert_eq!(c.days, 3);
        assert_eq!(c.population.n_users, 120);
        assert_eq!(c.shard, 2);
        assert_eq!(c.market_share, 0.25);
        assert_eq!(c.lures_per_user_day, 0.7);
        assert!(!c.defense.login_risk_analysis);
        assert_eq!(c.contact_leniency, 0.0);
    }

    #[test]
    fn builder_build_equals_direct_build() {
        let mut direct = Ecosystem::build(ScenarioConfig::small_test(9));
        direct.run();
        let built = ScenarioBuilder::small_test(9).run();
        assert_eq!(direct.stats.lures_delivered, built.stats.lures_delivered);
        assert_eq!(direct.stats.incidents, built.stats.incidents);
        assert_eq!(direct.sessions().len(), built.sessions().len());
    }

    #[test]
    fn sharded_path_carries_workers_and_matches_engine() {
        let mut config = ScenarioConfig::small_test(21);
        config.days = 2;
        config.population.n_users = 90;
        let via_builder =
            ScenarioBuilder::new(config.clone()).workers(2).sharded(3).run().unwrap();
        let direct = crate::engine::ShardedEngine::new(config, 3).workers(1).run().unwrap();
        assert_eq!(via_builder.dataset_digest(), direct.dataset_digest());
    }

    #[test]
    #[should_panic(expected = "crew tweaks")]
    fn sharded_path_rejects_crew_tweaks() {
        let _ = ScenarioBuilder::small_test(1).tweak_crews(|_| {}).sharded(2);
    }

    #[test]
    fn crew_tweaks_apply_before_run() {
        let eco = ScenarioBuilder::small_test(11)
            .days(1)
            .tweak_crews(|roster| {
                for crew in &mut roster.crews {
                    crew.tactics.p_twofactor_lockout = 1.0;
                }
            })
            .build();
        assert!(eco.crews.crews.iter().all(|c| c.tactics.p_twofactor_lockout == 1.0));
    }
}
