//! # mhw-core
//!
//! The ecosystem orchestrator: wires every substrate into one closed
//! simulated world and runs scenarios.
//!
//! * [`config`] — scenario configuration: era (2011/2012 tactics),
//!   population size, crew roster, attack volume, and defense toggles
//!   (for the §8 ablations);
//! * [`ecosystem`] — the [`Ecosystem`]: the main
//!   day-by-day simulation loop interleaving organic user activity,
//!   phishing campaigns, crew work shifts, defense reactions and
//!   account recovery;
//! * [`world`] — the adapter implementing the adversary's
//!   [`HijackerWorld`](mhw_adversary::HijackerWorld) over the real
//!   substrates;
//! * [`campaigns`] — standalone external phishing-form campaigns (the
//!   §4.2 Google-Forms dataset generator behind Figures 3–6);
//! * [`engine`] — the sharded parallel engine: logical shards with
//!   deterministic per-shard RNG streams, worker threads, cross-shard
//!   exchange at day barriers, and globally ordered merged logs;
//! * [`pool`] — the persistent work-stealing worker pool the engine
//!   (and the experiment context) dispatch parallel phases on, with
//!   per-job panic isolation;
//! * [`checkpoint`] — versioned, checksummed day-barrier checkpoint
//!   files for crash-safe resume of long runs;
//! * [`fault`] — the deterministic fault-injection harness
//!   ([`FaultPlan`]) behind the chaos tests and `--fault-plan`;
//! * [`replay`] — serve-mode login-log replay: synthetic workload
//!   generation, recorded-log conversion, and the chained verdict
//!   digest behind the batch/serve parity tests;
//! * [`resilience`] — overload-safe replay: [`ServeFaultPlan`]
//!   signal-source faults, bounded admission queues with load
//!   shedding, and the deterministic virtual-time loop behind
//!   `tests/serve_chaos.rs`;
//! * [`decoy`] — the §5.1 decoy-credential experiment (Figure 7);
//! * [`datasets`] — extraction of the paper's 14 datasets (Table 1)
//!   from the raw logs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod campaigns;
pub mod checkpoint;
pub mod config;
pub mod datasets;
pub mod decoy;
pub mod ecosystem;
pub mod engine;
pub mod fault;
pub mod pool;
pub mod replay;
pub mod resilience;
pub mod world;

pub use builder::ScenarioBuilder;
pub use campaigns::{run_form_campaigns, FormCampaignOutput};
pub use checkpoint::Checkpoint;
pub use config::{DefenseConfig, RecoveryConfig, ScenarioConfig};
pub use datasets::DatasetInventory;
pub use decoy::{run_decoy_experiment, DecoyOutcome, DecoyReport};
pub use ecosystem::{Ecosystem, Incident, RunStats};
pub use engine::{
    default_workers, CheckpointPolicy, ForkBuilder, RunFailure, ShardedEngine, ShardedRun,
    WorldSnapshot,
};
pub use fault::FaultPlan;
pub use mhw_types::{EngineError, EngineResult};
pub use pool::{JobPanic, WorkerPool};
pub use replay::{
    generate_workload, replay_stream, verdict_digest_from_log, ReplayLog, ReplayLogin,
    WorkloadConfig,
};
pub use resilience::{
    replay_stream_resilient, ReplayStats, ServeFaultPlan, ServeOptions, ShedPolicy,
};
