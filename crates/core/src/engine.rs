//! The sharded scenario engine: one scenario, many logical shards,
//! any number of worker threads — identical output at every
//! parallelism level.
//!
//! # Shards are semantics, workers are mechanics
//!
//! A [`ShardedEngine`] partitions the user population into `n_shards`
//! **logical shards**. Each shard is a full [`Ecosystem`] with its own
//! deterministic RNG streams derived from `(seed, shard_id)` via
//! [`mhw_simclock::SimRng::shard_stream`], its own id namespaces (the
//! shard id rides in the high byte of session/message ids), and its own
//! per-shard log segments keyed `(SimTime, shard, seq)`.
//!
//! The shard count is part of the scenario definition, exactly like the
//! seed: changing it changes the world. The **worker** count is pure
//! mechanics: shards advance one simulated day at a time, and within a
//! day each shard's events touch only shard-local state, so any
//! assignment of shards to threads produces the same per-shard logs.
//! Cross-shard traffic is exchanged only at day barriers, single
//! threaded, in shard order. The result: the merged dataset digest is
//! byte-identical for `workers = 1` and `workers = N`.
//!
//! Execution runs on a persistent [`WorkerPool`]: threads are spawned
//! once per run (not once per day) and each phase — world build, every
//! shard-day — is dispatched as index-addressed jobs that idle workers
//! *steal* from a shared atomic claim counter, so one slow shard never
//! stalls a statically assigned bucket. Shards live in cache-line
//! padded slots ([`mhw_types::CachePadded`]) so neighbouring shards'
//! hot state never false-shares a line across workers.
//!
//! # Cross-shard effects
//!
//! Three effects cross shard boundaries, all via per-day exchange
//! queues drained at the barrier:
//!
//! * **credential market** — each crew sells a `market_share` fraction
//!   of fresh captures; buyers are rotated over the *global* offer
//!   sequence (crews are global actors; exploitation runs in the
//!   victim's shard under the buying crew's flag);
//! * **contact-graph mail** — a fraction of each exploited victim's
//!   phishing blast targets contacts living in other shards, queued as
//!   next-day lures there;
//! * **decoy pickups** — engine-scheduled decoy submissions are spread
//!   round-robin over shards, so Figure 7-style probes land in every
//!   segment of the merged log.

use crate::checkpoint::{self, Checkpoint, ShardCheckpoint};
use crate::config::{DefenseConfig, RecoveryConfig, ScenarioConfig};
use crate::ecosystem::{Ecosystem, Incident, RunStats};
use crate::fault::FaultPlan;
use crate::pool::WorkerPool;
use mhw_adversary::SessionReport;
use mhw_defense::NotificationRecord;
use mhw_identity::LoginRecord;
use mhw_mailsys::MailEvent;
use mhw_obs::{
    span, EngineProfile, MetricId, MetricsSnapshot, PhaseProfiler, Registry, RunReport,
};
use mhw_simclock::SimRng;
use mhw_types::{
    CachePadded, CheckpointOp, CrewId, EngineError, EngineResult, Entry, Fnv1a, LogStore,
    RetryPolicy, SimDuration, SimTime, SpillFile, DAY,
};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Credentials that changed hands on the cross-shard market (mirrors
/// [`ShardedRun::market_trades`] in the metrics snapshot).
pub const M_MARKET_TRADES: MetricId = MetricId("engine.market_trades");
/// Lures routed across shard boundaries at day barriers (mirrors
/// [`ShardedRun::cross_shard_lures`]).
pub const M_CROSS_SHARD_LURES: MetricId = MetricId("engine.cross_shard_lures");
/// Decoy-credential probes scheduled by the engine.
pub const M_DECOY_PROBES: MetricId = MetricId("engine.decoy_probes");
/// Peak per-barrier exchange-queue depth (market offers drained at a
/// single day barrier). A sim-time quantity: deterministic per scenario.
pub const M_EXCHANGE_QUEUE_PEAK: MetricId = MetricId("engine.exchange_queue_peak");

// Crash-safety metrics. These count *mechanics* — faults fired, panics
// caught, checkpoint files written — so they live in the separate ops
// registry ([`ShardedRun::ops_metrics`]) and are deliberately excluded
// from [`ShardedRun::metrics_snapshot`]/[`RunReport`]: a resumed run
// must serialize the very same report as an uninterrupted one.
/// Faults the [`FaultPlan`] actually injected (panics, slowdowns,
/// checkpoint-write failures).
pub const M_FAULTS_INJECTED: MetricId = MetricId("engine.ops.faults_injected");
/// Shard-job panics caught at the worker-pool boundary.
pub const M_PANICS_CAUGHT: MetricId = MetricId("engine.ops.panics_caught");
/// Checkpoint files successfully written.
pub const M_CHECKPOINTS_WRITTEN: MetricId = MetricId("engine.ops.checkpoints_written");
/// Checkpoints restored (resume replays verified against the file).
pub const M_CHECKPOINTS_RESTORED: MetricId = MetricId("engine.ops.checkpoints_restored");
/// Transient checkpoint-write failures absorbed by the bounded retry.
pub const M_CHECKPOINT_RETRIES: MetricId = MetricId("engine.ops.checkpoint_retries");

/// Checkpoint writes give up after this many failed attempts; the
/// sleep between attempts doubles each time (bounded backoff).
const CHECKPOINT_WRITE_ATTEMPTS: u32 = 3;

/// The shared bounded-backoff policy applied to every durable write in
/// the engine: day-barrier checkpoints and fork-point records. The 4ms
/// base doubling to 8ms reproduces the historical `2 << attempt`
/// schedule of the original inline loop.
const CHECKPOINT_RETRY: RetryPolicy = RetryPolicy {
    attempts: CHECKPOINT_WRITE_ATTEMPTS,
    base_delay: Duration::from_millis(4),
};

/// Worker threads used when [`ShardedEngine::workers`] is never
/// called: everything the machine offers.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Where and how often the engine writes day-barrier checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory checkpoint files land in (created if missing).
    pub dir: PathBuf,
    /// Write a checkpoint every this many completed days (must be ≥ 1;
    /// the final barrier is never checkpointed — the run is done).
    pub every: u64,
}

/// Everything salvageable from an aborted run: the typed cause, the
/// shards that were alive when it died, and a degraded forensic
/// [`RunReport`]. Returned by [`ShardedEngine::run_salvage`];
/// [`ShardedEngine::run`] keeps only the [`error`](RunFailure::error).
pub struct RunFailure {
    /// The typed failure cause.
    pub error: EngineError,
    /// Shards built when the run aborted, in shard order. A panicked
    /// shard is still present, frozen at its last completed activity;
    /// shards whose build never ran are absent.
    pub partial_shards: Vec<Ecosystem>,
    /// Simulated days every shard fully completed (barrier included)
    /// before the failure.
    pub completed_days: u64,
    /// End-of-run report over the partial shards, with
    /// `degraded: true` and the failure cause recorded.
    pub report: RunReport,
}

impl std::fmt::Debug for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFailure")
            .field("error", &self.error)
            .field("partial_shards", &self.partial_shards.len())
            .field("completed_days", &self.completed_days)
            .field("report", &self.report)
            .finish()
    }
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.error, f)
    }
}

impl std::error::Error for RunFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Package an abort into a [`RunFailure`] with a degraded report over
/// whatever shards survived.
fn salvage(
    error: EngineError,
    partial_shards: Vec<Ecosystem>,
    completed_days: u64,
    seed: u64,
    n_shards: u16,
    days: u64,
    users: u32,
) -> Box<RunFailure> {
    let metrics =
        MetricsSnapshot::merge_all(partial_shards.iter().map(|e| e.metrics_snapshot()));
    let report = RunReport::new(seed, n_shards, days as u32, users, metrics)
        .with_failure(error.to_string());
    Box::new(RunFailure { error, partial_shards, completed_days, report })
}

/// Snapshot the engine's full barrier state as a [`Checkpoint`]. Used
/// both to write checkpoint files and — on resume — to verify that the
/// replayed state reproduces the recorded one exactly.
#[allow(clippy::too_many_arguments)] // one call site; a struct would just rename the list
fn barrier_checkpoint(
    shards: &[&mut Ecosystem],
    seed: u64,
    n_shards: u16,
    days: u64,
    users: u64,
    config_fingerprint: u64,
    completed_days: u64,
    rng_exchange: &SimRng,
    seen_incidents: &[usize],
    market_trades: u64,
    cross_shard_lures: u64,
    engine_metrics: &Registry,
) -> Checkpoint {
    let merged = MetricsSnapshot::merge_all(
        shards
            .iter()
            .map(|e| e.metrics_snapshot())
            .chain(std::iter::once(engine_metrics.snapshot())),
    );
    let metrics_digest =
        mhw_types::fnv::digest(format!("{merged:?}").as_bytes());
    Checkpoint {
        seed,
        n_shards,
        days,
        users,
        config_fingerprint,
        completed_days,
        exchange_rng: rng_exchange.state(),
        market_trades,
        cross_shard_lures,
        seen_incidents: seen_incidents.iter().map(|n| *n as u64).collect(),
        metrics_digest,
        shards: shards
            .iter()
            .map(|e| ShardCheckpoint {
                state_digest: e.state_digest(),
                log_lens: e.log_lens(),
                rng_states: e.rng_states(),
            })
            .collect(),
    }
}

/// Compare the replayed barrier state against the checkpoint file's
/// record, field by field, naming the first disagreement.
fn verify_resume(path: &str, recorded: &Checkpoint, current: &Checkpoint) -> EngineResult<()> {
    macro_rules! check {
        ($field:ident) => {
            if recorded.$field != current.$field {
                return Err(EngineError::CheckpointMismatch {
                    path: path.to_string(),
                    field: stringify!($field).to_string(),
                    expected: format!("{:?}", recorded.$field),
                    found: format!("{:?}", current.$field),
                });
            }
        };
    }
    check!(exchange_rng);
    check!(market_trades);
    check!(cross_shard_lures);
    check!(seen_incidents);
    check!(metrics_digest);
    for (s, (rec, cur)) in recorded.shards.iter().zip(current.shards.iter()).enumerate() {
        if rec != cur {
            return Err(EngineError::CheckpointMismatch {
                path: path.to_string(),
                field: format!("shards[{s}]"),
                expected: format!("{rec:?}"),
                found: format!("{cur:?}"),
            });
        }
    }
    Ok(())
}

/// Configures and runs a sharded scenario.
pub struct ShardedEngine {
    base: ScenarioConfig,
    n_shards: u16,
    workers: usize,
    contact_spillover: f64,
    decoys: Option<(usize, u64)>,
    shard_weights: Option<Vec<u64>>,
    checkpoints: Option<CheckpointPolicy>,
    resume: Option<PathBuf>,
    faults: FaultPlan,
}

impl ShardedEngine {
    /// A sharded scenario over `n_shards` logical shards. The base
    /// config's `population.n_users` is the *total* population; it is
    /// split as evenly as possible over the shards. Workers default to
    /// the machine's [available parallelism](default_workers). Panics
    /// if `n_shards == 0`.
    pub fn new(base: ScenarioConfig, n_shards: u16) -> Self {
        assert!(n_shards > 0, "a sharded scenario needs at least one shard");
        ShardedEngine {
            base,
            n_shards,
            workers: default_workers(),
            contact_spillover: 0.25,
            decoys: None,
            shard_weights: None,
            checkpoints: None,
            resume: None,
            faults: FaultPlan::new(),
        }
    }

    /// Number of worker threads (clamped to `1..=n_shards`, and at run
    /// time to the hardware's available parallelism — oversubscribing
    /// CPU-bound shard work is always a loss). Pure mechanics: never
    /// affects the produced datasets.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Split the population over shards proportionally to `weights`
    /// instead of evenly — one weight per shard, deterministic largest-
    /// prefix rounding. Like the shard count itself this is scenario
    /// *semantics* (it changes the world), not mechanics; it exists so
    /// load-imbalance experiments (and the work-stealing tests) can
    /// make one shard arbitrarily heavier than its peers. Panics if the
    /// weight count does not match the shard count or all weights are
    /// zero.
    pub fn shard_weights(mut self, weights: Vec<u64>) -> Self {
        assert_eq!(
            weights.len(),
            self.n_shards as usize,
            "need exactly one weight per shard"
        );
        assert!(weights.iter().any(|w| *w > 0), "at least one weight must be positive");
        self.shard_weights = Some(weights);
        self
    }

    /// Fraction of each exploited victim's phishing messages that
    /// target contacts in *other* shards (default 0.25; irrelevant for
    /// a single shard).
    pub fn contact_spillover(mut self, fraction: f64) -> Self {
        self.contact_spillover = fraction.clamp(0.0, 1.0);
        self
    }

    /// Schedule `total` decoy-credential submissions spread round-robin
    /// over the shards and uniformly over the first `over_days` days.
    pub fn decoys(mut self, total: usize, over_days: u64) -> Self {
        self.decoys = Some((total, over_days.max(1)));
        self
    }

    /// Write a day-barrier checkpoint into `dir` every `every`
    /// completed days. Like the worker count this is pure mechanics —
    /// the produced datasets and [`RunReport`] are byte-identical with
    /// checkpointing on or off. `every == 0` is rejected at run time as
    /// [`EngineError::InvalidConfig`].
    pub fn checkpoint_to(mut self, dir: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoints = Some(CheckpointPolicy { dir: dir.into(), every });
        self
    }

    /// Resume from a checkpoint file previously written under
    /// [`checkpoint_to`](Self::checkpoint_to). Days up to the recorded
    /// barrier are *replayed* deterministically (no faults injected, no
    /// checkpoints written), then every recorded digest and RNG
    /// position is verified against the file before the run continues;
    /// any disagreement aborts with
    /// [`EngineError::CheckpointMismatch`]. The file must come from the
    /// same scenario: seed, shard count, days, population and the full
    /// engine configuration are fingerprint-checked up front.
    pub fn resume_from(mut self, file: impl Into<PathBuf>) -> Self {
        self.resume = Some(file.into());
        self
    }

    /// Inject a deterministic [`FaultPlan`] (shard panics, slow
    /// workers, checkpoint-write failures). Faults are crash mechanics,
    /// never world events: a slowed shard still produces byte-identical
    /// datasets, and replayed days (under
    /// [`resume_from`](Self::resume_from)) skip the plan entirely.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// FNV-1a fingerprint over the full engine configuration, recorded
    /// in checkpoints so a resume against a different scenario fails
    /// loudly instead of replaying garbage.
    fn config_fingerprint(&self) -> u64 {
        let desc = format!(
            "{:?}|{:?}|{:?}|{:?}|{}",
            self.base, self.contact_spillover, self.decoys, self.shard_weights, self.n_shards
        );
        mhw_types::fnv::digest(desc.as_bytes())
    }

    /// Per-shard scenario configs (shard ids `0..n_shards`, population
    /// split evenly — or by [`ShardedEngine::shard_weights`] — and
    /// everything else inherited from the base).
    fn shard_configs(&self) -> Vec<ScenarioConfig> {
        let k = self.n_shards as usize;
        let n = self.base.population.n_users;
        let sizes: Vec<usize> = match &self.shard_weights {
            None => (0..k).map(|s| n / k + usize::from(s < n % k)).collect(),
            Some(weights) => {
                // Cumulative-prefix rounding: shard s gets
                // round(prefix_s/total · n) − round(prefix_{s-1}/total · n),
                // which sums to exactly n and is order-deterministic.
                let total: u128 = weights.iter().map(|w| *w as u128).sum();
                let mut prefix = 0u128;
                let mut allocated = 0usize;
                weights
                    .iter()
                    .map(|w| {
                        prefix += *w as u128;
                        let upto = (prefix * n as u128 / total) as usize;
                        let size = upto - allocated;
                        allocated = upto;
                        size
                    })
                    .collect()
            }
        };
        sizes
            .into_iter()
            .enumerate()
            .map(|(s, n_users)| {
                let mut c = self.base.clone();
                c.shard = s as u16;
                c.population.n_users = n_users;
                c
            })
            .collect()
    }

    /// Build all shards and run every configured day, exchanging
    /// cross-shard traffic at each day barrier.
    ///
    /// Parallel phases run on one persistent [`WorkerPool`] for the
    /// whole run. Every phase is a list of index-addressed jobs the
    /// workers claim from a shared atomic counter (work stealing), and
    /// each job touches only its own shard's cache-padded slot — which
    /// is why scheduling can never leak into the produced datasets.
    ///
    /// # Errors
    ///
    /// * [`EngineError::InvalidConfig`] — bad checkpoint policy or
    ///   out-of-range fault plan, rejected before anything runs;
    /// * [`EngineError::ShardPanicked`] — a shard job panicked (organic
    ///   or injected); the pool drains cleanly and other shards'
    ///   partial state survives (see [`run_salvage`](Self::run_salvage));
    /// * [`EngineError::CheckpointIo`] / [`CheckpointCorrupt`](EngineError::CheckpointCorrupt) /
    ///   [`CheckpointMismatch`](EngineError::CheckpointMismatch) —
    ///   checkpoint writes exhausted their bounded retries, or the
    ///   resume file is unreadable, corrupt, or disagrees with the
    ///   replayed state.
    pub fn run(self) -> EngineResult<ShardedRun> {
        self.run_salvage().map_err(|failure| failure.error)
    }

    /// Like [`run`](Self::run), but on failure hands back the whole
    /// [`RunFailure`] — the typed error, every shard that survived, and
    /// a degraded forensic [`RunReport`] — instead of just the error.
    // The `expect`s below are claim-protocol invariants, not error
    // handling: every build job claims its config index exactly once,
    // and every slot a day-job locks was filled by the build phase
    // (a failed build aborts before the day loop).
    #[allow(clippy::expect_used)]
    pub fn run_salvage(self) -> Result<ShardedRun, Box<RunFailure>> {
        let seed = self.base.seed;
        let days = self.base.days;
        let users32 = self.base.population.n_users as u32;
        let n_shards = self.n_shards;
        let executed = self.execute(RunMode::Full)?;
        Ok(finish_run(executed, seed, days, users32, n_shards))
    }

    /// Run the scenario through `day` complete days, then freeze the
    /// world at that barrier as a copy-on-write [`WorldSnapshot`]
    /// instead of finishing the run.
    ///
    /// The snapshot is captured *mid-run of this scenario* — the
    /// barrier spillover horizon and decoy schedule are those of the
    /// full `days`-day run — so a continuation forked with the original
    /// seed and config reproduces the uninterrupted run's dataset
    /// byte-for-byte. The barrier state is also recorded as a
    /// [`Checkpoint`] ([`WorldSnapshot::checkpoint`]); every fork is
    /// digest-verified against it before diverging.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] if `day` is not a mid-run barrier
    /// (`1..days`), plus everything [`run`](Self::run) can return.
    pub fn snapshot_after(self, day: u64) -> EngineResult<WorldSnapshot> {
        let fingerprint = self.config_fingerprint();
        let mut executed =
            self.execute(RunMode::SnapshotAfter(day)).map_err(|failure| failure.error)?;
        let checkpoint = {
            let refs: Vec<&mut Ecosystem> = executed.shards.iter_mut().collect();
            barrier_checkpoint(
                &refs,
                self.base.seed,
                self.n_shards,
                self.base.days,
                self.base.population.n_users as u64,
                fingerprint,
                day,
                &executed.exchange_rng,
                &executed.seen_incidents,
                executed.market_trades,
                executed.cross_shard_lures,
                &executed.metrics,
            )
        };
        Ok(WorldSnapshot {
            base: self.base,
            n_shards: self.n_shards,
            contact_spillover: self.contact_spillover,
            decoys: self.decoys,
            shard_weights: self.shard_weights,
            shards: executed.shards.into_iter().map(Arc::new).collect(),
            seen_incidents: executed.seen_incidents,
            market_trades: executed.market_trades,
            cross_shard_lures: executed.cross_shard_lures,
            decoy_probes: executed.metrics.counter_value(M_DECOY_PROBES).unwrap_or(0),
            exchange_queue_peak: executed
                .metrics
                .gauge_value(M_EXCHANGE_QUEUE_PEAK)
                .unwrap_or(0),
            checkpoint,
        })
    }

    /// The shared execution core behind [`run_salvage`](Self::run_salvage)
    /// (`RunMode::Full`), [`snapshot_after`](Self::snapshot_after)
    /// (`RunMode::SnapshotAfter`) and forked continuations
    /// (`RunMode::Forked`): build or install the shard worlds, then
    /// drive the day loop from `first_day` to either `days` or the
    /// snapshot barrier.
    #[allow(clippy::expect_used)]
    fn execute(&self, mode: RunMode) -> Result<Executed, Box<RunFailure>> {
        let k = self.n_shards as usize;
        let seed = self.base.seed;
        let days = self.base.days;
        let users32 = self.base.population.n_users as u32;
        let first_day = match &mode {
            RunMode::Forked(f) => f.start_day,
            _ => 0,
        };
        let (stop_after, fork) = match mode {
            RunMode::Full => (None, None),
            RunMode::SnapshotAfter(p) => (Some(p), None),
            RunMode::Forked(f) => (None, Some(*f)),
        };

        // ---- validation: reject bad plans before any thread spawns.
        let fail_early = |error: EngineError| {
            salvage(error, Vec::new(), 0, seed, self.n_shards, days, users32)
        };
        if let Some(policy) = &self.checkpoints {
            if policy.every == 0 {
                return Err(fail_early(EngineError::InvalidConfig {
                    reason: "checkpoint interval must be at least 1 day (got 0)".to_string(),
                }));
            }
            if let Err(e) = std::fs::create_dir_all(&policy.dir) {
                return Err(fail_early(EngineError::CheckpointIo {
                    op: CheckpointOp::Write,
                    path: policy.dir.display().to_string(),
                    detail: e.to_string(),
                }));
            }
        }
        if let Err(e) = self.faults.validate(days, self.n_shards) {
            return Err(fail_early(e));
        }
        if let Some(p) = stop_after {
            if p == 0 || p >= days {
                return Err(fail_early(EngineError::InvalidConfig {
                    reason: format!(
                        "snapshot day must be a mid-run barrier (1..{days}), got {p}"
                    ),
                }));
            }
        }
        let fingerprint = self.config_fingerprint();
        let resume: Option<(Checkpoint, String)> = match &self.resume {
            None => None,
            Some(path) => {
                let ckpt = match Checkpoint::read(path) {
                    Ok(c) => c,
                    Err(e) => return Err(fail_early(e)),
                };
                let p = path.display().to_string();
                let mismatch = |field: &str, expected: String, found: String| {
                    EngineError::CheckpointMismatch {
                        path: p.clone(),
                        field: field.to_string(),
                        expected,
                        found,
                    }
                };
                // The file must describe *this* scenario, at a barrier
                // this run will actually cross.
                let identity: [(&str, u64, u64); 5] = [
                    ("seed", ckpt.seed, seed),
                    ("n_shards", ckpt.n_shards as u64, self.n_shards as u64),
                    ("days", ckpt.days, days),
                    ("users", ckpt.users, self.base.population.n_users as u64),
                    ("config_fingerprint", ckpt.config_fingerprint, fingerprint),
                ];
                for (field, recorded, ours) in identity {
                    if recorded != ours {
                        return Err(fail_early(mismatch(
                            field,
                            recorded.to_string(),
                            ours.to_string(),
                        )));
                    }
                }
                if ckpt.completed_days == 0 || ckpt.completed_days >= days {
                    return Err(fail_early(mismatch(
                        "completed_days",
                        format!("1..{days}"),
                        ckpt.completed_days.to_string(),
                    )));
                }
                if ckpt.shards.len() != k {
                    return Err(fail_early(mismatch(
                        "shards.len",
                        k.to_string(),
                        ckpt.shards.len().to_string(),
                    )));
                }
                Some((ckpt, p))
            }
        };

        let workers = self.workers.min(k).max(1);
        // Never oversubscribe: shard days are CPU-bound, so threads
        // beyond the hardware's parallelism only add context-switch and
        // cache churn (half of the original inverse-scaling bug). The
        // requested count is still what the profile reports — it is the
        // scenario-independent knob — but the pool spawns at most one
        // participant per hardware thread.
        let threads = workers.min(default_workers());
        let mut profiler = PhaseProfiler::new();
        let metrics = Registry::new()
            .with_counter(M_MARKET_TRADES)
            .with_counter(M_CROSS_SHARD_LURES)
            .with_counter(M_DECOY_PROBES)
            .with_gauge(M_EXCHANGE_QUEUE_PEAK);
        // Crash-safety mechanics live in their own registry, never
        // merged into the sim-time snapshot: a resumed run's report
        // must byte-equal an uninterrupted one.
        let ops = Registry::new()
            .with_counter(M_FAULTS_INJECTED)
            .with_counter(M_PANICS_CAUGHT)
            .with_counter(M_CHECKPOINTS_WRITTEN)
            .with_counter(M_CHECKPOINTS_RESTORED)
            .with_counter(M_CHECKPOINT_RETRIES);

        // One padded slot per shard: the slot (and the hot head of the
        // ecosystem inside it) starts on its own cache line, so two
        // workers advancing neighbouring shards never false-share.
        // Slot `i` always holds shard `i` — results need no sorting.
        let slots: Vec<CachePadded<Mutex<Option<Ecosystem>>>> =
            (0..k).map(|_| CachePadded::new(Mutex::new(None))).collect();
        // Claim granularity: single jobs for small shard counts (max
        // balance), short runs for huge ones (less claim traffic).
        let claim_chunk = (k / (workers * 8)).max(1);

        let mut completed_days = first_day;
        let start_day = resume.as_ref().map_or(0, |(ckpt, _)| ckpt.completed_days);
        let (mut rng_exchange, mut seen_incidents, mut market_trades, mut cross_shard_lures);
        let forked = fork.is_some();
        match fork {
            Some(f) => {
                rng_exchange = f.exchange_rng;
                seen_incidents = f.seen_incidents;
                market_trades = f.market_trades;
                cross_shard_lures = f.cross_shard_lures;
                // Resume the engine registry at the snapshot's values so
                // a same-config forked run's report byte-equals an
                // uninterrupted run's.
                metrics.add(M_MARKET_TRADES, f.market_trades);
                metrics.add(M_CROSS_SHARD_LURES, f.cross_shard_lures);
                metrics.add(M_DECOY_PROBES, f.decoy_probes);
                metrics.gauge_max(M_EXCHANGE_QUEUE_PEAK, f.exchange_queue_peak);
                for (slot, eco) in slots.iter().zip(f.shards) {
                    *slot.lock() = Some(eco);
                }
            }
            None => {
                rng_exchange = SimRng::stream(self.base.seed, "exchange");
                seen_incidents = vec![0usize; k];
                market_trades = 0;
                cross_shard_lures = 0;
            }
        }
        let configs: Vec<Mutex<Option<ScenarioConfig>>> = if forked {
            Vec::new()
        } else {
            self.shard_configs().into_iter().map(|c| Mutex::new(Some(c))).collect()
        };

        let run_result: EngineResult<()> = WorkerPool::scoped(threads, |pool| {
            // A forked continuation's shards arrive pre-built (installed
            // into the slots above) with their decoy schedule already in
            // flight, so both the build and setup phases are skipped —
            // that skip is exactly the fork speedup.
            let n_crews = if forked {
                slots[0].lock().as_ref().map_or(0, |e| e.crews.crews.len())
            } else {
                // ---- build: each worker steals unbuilt shards by index.
                let built = profiler.time("build", || {
                    pool.run(k, &|_worker, i| {
                        let config = configs[i].lock().take().expect("build job claimed once");
                        let shard = config.shard;
                        let _span = span!("engine.build_shard", shard);
                        *slots[i].lock() = Some(Ecosystem::build(config));
                    })
                });
                profiler.set_build_workers(pool.take_worker_busy());
                if let Err(p) = built {
                    ops.inc(M_PANICS_CAUGHT);
                    return Err(EngineError::ShardPanicked {
                        shard: p.index as u16,
                        day: 0,
                        payload: p.payload,
                    });
                }

                // ---- setup: decoy probes, round-robin over shards
                // (single-threaded; helpers are parked, locks uncontended).
                let mut guards: Vec<_> = slots.iter().map(|s| s.lock()).collect();
                let mut shards: Vec<&mut Ecosystem> =
                    guards.iter_mut().map(|g| g.as_mut().expect("shard built")).collect();
                if let Some((total, over_days)) = self.decoys {
                    let mut rng = SimRng::stream(self.base.seed, "engine-decoys");
                    let horizon = over_days.min(self.base.days.max(1));
                    for i in 0..total {
                        let shard = i % k;
                        let account =
                            shards[shard].add_decoy_account(&format!("decoy-probe-{i}"));
                        let crew_count = shards[shard].crews.crews.len() as u64;
                        let crew = CrewId::from_index(rng.below(crew_count) as usize);
                        let at = SimTime::from_secs(
                            rng.below(horizon) * DAY + rng.below(DAY),
                        );
                        shards[shard].schedule_decoy_submission(at, account, crew);
                        metrics.inc(M_DECOY_PROBES);
                    }
                }
                shards.first().map_or(0, |e| e.crews.crews.len())
            };

            for day in first_day..self.base.days {
                // Resume replays days before the recorded barrier
                // exactly as the original run computed them — which
                // means fault-free and checkpoint-free.
                let replaying = day < start_day;

                // ---- parallel section: one day, shard-local state
                // only. Workers steal shard-days from the claim index;
                // any claim order yields the same logs because shards
                // never touch each other mid-day.
                let day_result = profiler.time("shard_day", || {
                    pool.run_chunked(k, claim_chunk, &|_worker, i| {
                        if !replaying {
                            // Injected faults fire before the shard's
                            // slot is even locked: a panicking job
                            // never unwinds holding shard state, and a
                            // slowdown only delays identical work.
                            if self.faults.should_panic(day, i as u16) {
                                ops.inc(M_FAULTS_INJECTED);
                                panic!("injected fault: shard {i} panicked on day {day}");
                            }
                            if let Some(ms) = self.faults.slowdown_ms(day, i as u16) {
                                ops.inc(M_FAULTS_INJECTED);
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                        }
                        let mut slot = slots[i].lock();
                        let eco = slot.as_mut().expect("shard built");
                        let shard = eco.config.shard;
                        let _span = span!("engine.shard_day", shard);
                        eco.run_day(day);
                    })
                });
                if let Err(p) = day_result {
                    ops.inc(M_PANICS_CAUGHT);
                    return Err(EngineError::ShardPanicked {
                        shard: p.index as u16,
                        day,
                        payload: p.payload,
                    });
                }

                // ---- day barrier: single-threaded exchange in shard
                // order, on the coordinator, over all slots at once.
                let mut guards: Vec<_> = slots.iter().map(|s| s.lock()).collect();
                let mut shards: Vec<&mut Ecosystem> =
                    guards.iter_mut().map(|g| g.as_mut().expect("shard built")).collect();
                profiler.time("barrier_exchange", || {
                // Credential market. Buyers rotate over the global offer
                // sequence, so the volume any shard sells shifts who buys
                // everywhere else — shards are genuinely coupled — while
                // exploitation stays in the victim's shard (the account
                // lives there; crews are global).
                let mut offer_seq = 0usize;
                for shard in shards.iter_mut() {
                    for (seller, credential) in shard.drain_market_outbox() {
                        let buyer = if n_crews > 1 {
                            CrewId::from_index(
                                (seller.index() + 1 + offer_seq % (n_crews - 1)) % n_crews,
                            )
                        } else {
                            seller
                        };
                        offer_seq += 1;
                        if shard.import_market_credential(buyer, credential) {
                            market_trades += 1;
                            metrics.inc(M_MARKET_TRADES);
                        }
                    }
                }
                metrics.gauge_max(M_EXCHANGE_QUEUE_PEAK, offer_seq as u64);

                // Contact-graph mail: new exploited incidents spill part of
                // their phishing blast into other shards as next-day lures.
                let spill = self.contact_spillover;
                if k > 1 && spill > 0.0 && day + 1 < self.base.days {
                    let next_day = SimTime::from_secs((day + 1) * DAY);
                    let mut exports: Vec<(usize, SimTime, CrewId)> = Vec::new();
                    for s in 0..k {
                        let eco = &shards[s];
                        for inc in &eco.incidents()[seen_incidents[s]..] {
                            let session = &eco.sessions()[inc.session];
                            if !session.exploited || session.phishing_messages == 0 {
                                continue;
                            }
                            let n_out =
                                (session.phishing_messages as f64 * spill).round() as u64;
                            for _ in 0..n_out {
                                let mut dest = rng_exchange.below(k as u64 - 1) as usize;
                                if dest >= s {
                                    dest += 1;
                                }
                                let at = next_day
                                    .plus(SimDuration::from_secs(rng_exchange.below(DAY)));
                                exports.push((dest, at, inc.crew));
                            }
                        }
                        seen_incidents[s] = eco.incidents().len();
                    }
                    for (dest, at, crew) in exports {
                        let n_users = shards[dest].population.len() as u64;
                        if n_users == 0 {
                            continue;
                        }
                        let target = shards[dest].population.users
                            [rng_exchange.below(n_users) as usize]
                            .account;
                        shards[dest].queue_external_lure(at, target, crew);
                        cross_shard_lures += 1;
                        metrics.inc(M_CROSS_SHARD_LURES);
                    }
                } else {
                    for s in 0..k {
                        seen_incidents[s] = shards[s].incidents().len();
                    }
                }
                });

                let completed = day + 1;
                completed_days = completed;

                // ---- resume verification: at the recorded barrier the
                // replayed state must reproduce the file exactly —
                // digests, log lengths, RNG positions, counters.
                if let Some((ckpt, path)) = &resume {
                    if completed == ckpt.completed_days {
                        let current = profiler.time("checkpoint", || {
                            barrier_checkpoint(
                                &shards,
                                seed,
                                self.n_shards,
                                days,
                                self.base.population.n_users as u64,
                                fingerprint,
                                completed,
                                &rng_exchange,
                                &seen_incidents,
                                market_trades,
                                cross_shard_lures,
                                &metrics,
                            )
                        });
                        verify_resume(path, ckpt, &current)?;
                        ops.inc(M_CHECKPOINTS_RESTORED);
                    }
                }

                // ---- checkpoint write: bounded-backoff retries absorb
                // transient I/O failures; exhaustion aborts the run
                // with the last error.
                if let Some(policy) = &self.checkpoints {
                    if !replaying && completed % policy.every == 0 && completed < days {
                        let written: EngineResult<()> = profiler.time("checkpoint", || {
                            let ckpt = barrier_checkpoint(
                                &shards,
                                seed,
                                self.n_shards,
                                days,
                                self.base.population.n_users as u64,
                                fingerprint,
                                completed,
                                &rng_exchange,
                                &seen_incidents,
                                market_trades,
                                cross_shard_lures,
                                &metrics,
                            );
                            let path = policy.dir.join(checkpoint::file_name(completed));
                            let mut to_inject = self.faults.checkpoint_failures_at(day);
                            let mut attempt = 0u32;
                            let outcome = CHECKPOINT_RETRY.run_with(
                                &mut || {
                                    attempt += 1;
                                    if to_inject > 0 {
                                        to_inject -= 1;
                                        ops.inc(M_FAULTS_INJECTED);
                                        return Err(EngineError::CheckpointIo {
                                            op: CheckpointOp::Write,
                                            path: path.display().to_string(),
                                            detail: format!(
                                                "injected transient write failure \
                                                 (attempt {attempt})"
                                            ),
                                        });
                                    }
                                    ckpt.write_atomic(&path)
                                },
                                |_| ops.inc(M_CHECKPOINT_RETRIES),
                            );
                            if outcome.is_ok() {
                                ops.inc(M_CHECKPOINTS_WRITTEN);
                            }
                            outcome
                        });
                        written?;
                    }
                }

                // ---- snapshot stop: freeze the world at this barrier;
                // the caller packages the slots as a [`WorldSnapshot`].
                if stop_after == Some(completed) {
                    break;
                }
            }
            Ok(())
        });

        // All helpers have parked and joined; unwrap whatever shards
        // exist (slot i is shard i, so the order is already right — and
        // on a clean run every slot is occupied).
        let shards: Vec<Ecosystem> = slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().into_inner())
            .collect();

        if let Err(error) = run_result {
            return Err(salvage(
                error,
                shards,
                completed_days,
                seed,
                self.n_shards,
                days,
                users32,
            ));
        }

        Ok(Executed {
            shards,
            market_trades,
            cross_shard_lures,
            seen_incidents,
            exchange_rng: rng_exchange,
            workers,
            metrics,
            ops,
            profiler,
        })
    }
}

/// How [`ShardedEngine::execute`] drives the day loop.
enum RunMode {
    /// Build every shard and run all days (the normal path).
    Full,
    /// Build every shard, run through this many complete days, then
    /// stop at the barrier so the caller can freeze a [`WorldSnapshot`].
    SnapshotAfter(u64),
    /// Install pre-built shard worlds and continue from a snapshot
    /// barrier — no build phase, no replay.
    Forked(Box<ForkState>),
}

/// The state a forked continuation resumes from: deep-cloned shard
/// worlds plus the engine-level barrier state captured in the snapshot.
struct ForkState {
    shards: Vec<Ecosystem>,
    start_day: u64,
    exchange_rng: SimRng,
    seen_incidents: Vec<usize>,
    market_trades: u64,
    cross_shard_lures: u64,
    decoy_probes: u64,
    exchange_queue_peak: u64,
}

/// What [`ShardedEngine::execute`] hands back: everything a
/// [`ShardedRun`] needs, plus the barrier state a snapshot captures.
struct Executed {
    shards: Vec<Ecosystem>,
    market_trades: u64,
    cross_shard_lures: u64,
    seen_incidents: Vec<usize>,
    exchange_rng: SimRng,
    workers: usize,
    metrics: Registry,
    ops: Registry,
    profiler: PhaseProfiler,
}

/// Package an [`Executed`] core result as the public [`ShardedRun`],
/// timing a representative merge of the three event logs so the profile
/// reflects end-to-end cost (the merged views are cheap borrows and are
/// rebuilt on demand by the accessors).
fn finish_run(mut executed: Executed, seed: u64, days: u64, users: u32, n_shards: u16) -> ShardedRun {
    let shards = &executed.shards;
    executed.profiler.time("log_merge", || {
        let _ = LogStore::merge(shards.iter().map(|e| e.login_log.store()));
        let _ = LogStore::merge(shards.iter().map(|e| e.provider.log_store()));
        let _ = LogStore::merge(shards.iter().map(|e| e.notifications.log_store()));
    });
    ShardedRun {
        shards: executed.shards,
        market_trades: executed.market_trades,
        cross_shard_lures: executed.cross_shard_lures,
        seed,
        days,
        users,
        n_shards,
        workers: executed.workers,
        metrics: executed.metrics,
        ops: executed.ops,
        profiler: executed.profiler,
    }
}

/// A frozen, copy-on-write world at a day barrier — the expensive
/// common prefix of a sweep, built once and forked N times.
///
/// Produced by [`ShardedEngine::snapshot_after`]. The per-shard worlds
/// live behind `Arc`, and each [`Ecosystem`]'s structural state (geo
/// plan, domain model, population + contact graph) is itself
/// `Arc`-shared, so forking copies only the dynamic simulation state
/// (logs, stores, per-user columns, RNG streams) — O(changed-state),
/// not O(world). The snapshot also records the barrier as a
/// [`Checkpoint`]; [`ForkBuilder::run`] re-derives the clone's barrier
/// state and digest-verifies it against that record before diverging,
/// so a corrupted or stale snapshot fails loudly with
/// [`EngineError::CheckpointMismatch`] naming the first divergent
/// field (the PR 4 resume taxonomy, reused verbatim).
pub struct WorldSnapshot {
    base: ScenarioConfig,
    n_shards: u16,
    contact_spillover: f64,
    decoys: Option<(usize, u64)>,
    shard_weights: Option<Vec<u64>>,
    shards: Vec<Arc<Ecosystem>>,
    seen_incidents: Vec<usize>,
    market_trades: u64,
    cross_shard_lures: u64,
    decoy_probes: u64,
    exchange_queue_peak: u64,
    checkpoint: Checkpoint,
}

impl std::fmt::Debug for WorldSnapshot {
    /// Compact summary (the shard worlds are megabytes of state).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("seed", &self.base.seed)
            .field("n_shards", &self.n_shards)
            .field("days", &self.base.days)
            .field("completed_days", &self.checkpoint.completed_days)
            .field("market_trades", &self.market_trades)
            .field("cross_shard_lures", &self.cross_shard_lures)
            .finish_non_exhaustive()
    }
}

impl WorldSnapshot {
    /// The master seed the prefix was built with.
    pub fn seed(&self) -> u64 {
        self.base.seed
    }

    /// Total days of the scenario the snapshot belongs to.
    pub fn days(&self) -> u64 {
        self.base.days
    }

    /// Complete days simulated before the world was frozen.
    pub fn completed_days(&self) -> u64 {
        self.checkpoint.completed_days
    }

    /// Shard count of the frozen world.
    pub fn n_shards(&self) -> u16 {
        self.n_shards
    }

    /// The scenario configuration the prefix was built with.
    pub fn config(&self) -> &ScenarioConfig {
        &self.base
    }

    /// The recorded barrier state at the fork point. Every fork is
    /// verified against this record; it can also be written to disk
    /// ([`WorldSnapshot::write_record`]) so a later process can rebuild
    /// the prefix and prove it reached the identical barrier.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// Write the fork-point record to `path` in the PR 4 checkpoint
    /// format (atomic tmp-file + rename), absorbing transient I/O
    /// failures with the same bounded-backoff retry policy the engine
    /// applies to day-barrier checkpoints.
    ///
    /// # Errors
    ///
    /// [`EngineError::CheckpointIo`] once every retry attempt has
    /// failed.
    pub fn write_record(&self, path: &Path) -> EngineResult<()> {
        CHECKPOINT_RETRY.run(|| self.checkpoint.write_atomic(path))
    }

    /// Verify that `recorded` (a fork-point record read back from
    /// `path`) describes exactly this snapshot's barrier — identity
    /// fields first, then the digest comparison the resume path uses.
    ///
    /// # Errors
    ///
    /// [`EngineError::CheckpointMismatch`] naming the first divergent
    /// field.
    pub fn verify_record(&self, recorded: &Checkpoint, path: &str) -> EngineResult<()> {
        let ours = &self.checkpoint;
        let identity: [(&str, u64, u64); 6] = [
            ("seed", recorded.seed, ours.seed),
            ("n_shards", recorded.n_shards as u64, ours.n_shards as u64),
            ("days", recorded.days, ours.days),
            ("users", recorded.users, ours.users),
            ("config_fingerprint", recorded.config_fingerprint, ours.config_fingerprint),
            ("completed_days", recorded.completed_days, ours.completed_days),
        ];
        for (field, rec, cur) in identity {
            if rec != cur {
                return Err(EngineError::CheckpointMismatch {
                    path: path.to_string(),
                    field: field.to_string(),
                    expected: rec.to_string(),
                    found: cur.to_string(),
                });
            }
        }
        verify_resume(path, recorded, ours)
    }

    /// Start a forked continuation of this world. The defaults
    /// reproduce the uninterrupted run exactly; use the builder's
    /// setters to diverge on seed, defense config, or fault plan.
    pub fn fork(&self) -> ForkBuilder<'_> {
        ForkBuilder {
            snapshot: self,
            seed: None,
            defense: None,
            recovery: None,
            faults: FaultPlan::new(),
            checkpoints: None,
            workers: None,
        }
    }
}

/// A divergent continuation of a [`WorldSnapshot`], built by
/// [`WorldSnapshot::fork`] (or
/// [`ScenarioBuilder::fork_from`](crate::ScenarioBuilder::fork_from)).
///
/// Defaults reproduce the uninterrupted run byte-for-byte; each setter
/// diverges one axis. [`run`](Self::run) deep-clones the snapshot's
/// shards (cheap: structural state is `Arc`-shared), digest-verifies
/// the clones against the snapshot's fork-point [`Checkpoint`], applies
/// the divergence, and resumes the day loop at the barrier — no
/// rebuild, no replay.
pub struct ForkBuilder<'a> {
    snapshot: &'a WorldSnapshot,
    seed: Option<u64>,
    defense: Option<DefenseConfig>,
    recovery: Option<RecoveryConfig>,
    faults: FaultPlan,
    checkpoints: Option<(PathBuf, u64)>,
    workers: Option<usize>,
}

impl<'a> ForkBuilder<'a> {
    /// Continue with a different master seed: every shard RNG stream
    /// (and the exchange stream) is deterministically perturbed from
    /// its snapshot position mixed with the new seed, so the
    /// continuation diverges immediately but reproducibly — the same
    /// `(snapshot, seed)` pair always yields the same world. Passing
    /// the snapshot's own seed is a no-op.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Continue under a different defense configuration (the §8
    /// ablation surface): per-event toggles switch instantly, and the
    /// login risk engine is swapped in place when
    /// `login_risk_analysis` flips.
    pub fn defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Continue under a different recovery risk policy (claim scoring
    /// posture + adversary pivot — the `sweep` grid's second axis).
    /// Nothing recovery-side is baked at build time, so the swap is a
    /// plain config write on every shard.
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Inject deterministic faults into the continuation (days are
    /// absolute scenario days, as in [`ShardedEngine::fault_plan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Checkpoint the continuation every `every` days into `dir`.
    pub fn checkpoint_to(mut self, dir: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoints = Some((dir.into(), every));
        self
    }

    /// Worker threads for the continuation (mechanics, never
    /// semantics). Defaults to the engine's hardware-derived default.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Verify the fork point and run the continuation to the end of
    /// the scenario.
    ///
    /// # Errors
    ///
    /// * [`EngineError::CheckpointMismatch`] — the deep-cloned shards
    ///   do not reproduce the snapshot's recorded barrier state (a
    ///   corrupted snapshot or a clone bug), naming the first
    ///   divergent field;
    /// * everything [`ShardedEngine::run`] can return.
    pub fn run(self) -> EngineResult<ShardedRun> {
        let snap = self.snapshot;

        // Deep-clone the shard worlds. Structural state (population,
        // contact graph, geo, domains) is shared via `Arc`; only the
        // dynamic state is copied.
        let mut shards: Vec<Ecosystem> = snap.shards.iter().map(|a| (**a).clone()).collect();

        // Digest-verify the fork point: the clones must reproduce the
        // snapshot's recorded barrier exactly before any divergence is
        // applied.
        {
            let metrics = Registry::new()
                .with_counter(M_MARKET_TRADES)
                .with_counter(M_CROSS_SHARD_LURES)
                .with_counter(M_DECOY_PROBES)
                .with_gauge(M_EXCHANGE_QUEUE_PEAK);
            metrics.add(M_MARKET_TRADES, snap.market_trades);
            metrics.add(M_CROSS_SHARD_LURES, snap.cross_shard_lures);
            metrics.add(M_DECOY_PROBES, snap.decoy_probes);
            metrics.gauge_max(M_EXCHANGE_QUEUE_PEAK, snap.exchange_queue_peak);
            let refs: Vec<&mut Ecosystem> = shards.iter_mut().collect();
            let current = barrier_checkpoint(
                &refs,
                snap.checkpoint.seed,
                snap.n_shards,
                snap.checkpoint.days,
                snap.checkpoint.users,
                snap.checkpoint.config_fingerprint,
                snap.checkpoint.completed_days,
                &SimRng::from_state(snap.checkpoint.exchange_rng),
                &snap.seen_incidents,
                snap.market_trades,
                snap.cross_shard_lures,
                &metrics,
            );
            verify_resume("<fork>", &snap.checkpoint, &current)?;
        }

        // Apply the divergence.
        let mut base = snap.base.clone();
        let mut exchange = SimRng::from_state(snap.checkpoint.exchange_rng);
        if let Some(defense) = self.defense {
            base.defense = defense;
            for eco in &mut shards {
                eco.set_defense(defense);
            }
        }
        if let Some(recovery) = self.recovery {
            base.recovery = recovery;
            for eco in &mut shards {
                eco.set_recovery(recovery);
            }
        }
        if let Some(seed) = self.seed {
            if seed != snap.base.seed {
                base.seed = seed;
                for eco in &mut shards {
                    let shard = u64::from(eco.config.shard);
                    eco.config.seed = seed;
                    eco.perturb_rngs(seed ^ (shard + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                }
                exchange.perturb(seed);
            }
        }

        // Resume the day loop at the barrier.
        let mut engine = ShardedEngine::new(base, snap.n_shards)
            .contact_spillover(snap.contact_spillover)
            .fault_plan(self.faults);
        if let Some(w) = self.workers {
            engine = engine.workers(w);
        }
        if let Some(weights) = snap.shard_weights.clone() {
            engine = engine.shard_weights(weights);
        }
        if let Some((total, over_days)) = snap.decoys {
            engine = engine.decoys(total, over_days);
        }
        if let Some((dir, every)) = self.checkpoints {
            engine = engine.checkpoint_to(dir, every);
        }
        let seed = engine.base.seed;
        let days = engine.base.days;
        let users32 = engine.base.population.n_users as u32;
        let n_shards = engine.n_shards;
        let state = ForkState {
            shards,
            start_day: snap.checkpoint.completed_days,
            exchange_rng: exchange,
            seen_incidents: snap.seen_incidents.clone(),
            market_trades: snap.market_trades,
            cross_shard_lures: snap.cross_shard_lures,
            decoy_probes: snap.decoy_probes,
            exchange_queue_peak: snap.exchange_queue_peak,
        };
        let executed = engine
            .execute(RunMode::Forked(Box::new(state)))
            .map_err(|failure| failure.error)?;
        Ok(finish_run(executed, seed, days, users32, n_shards))
    }
}

/// A finished sharded run: the per-shard worlds plus merged views.
pub struct ShardedRun {
    shards: Vec<Ecosystem>,
    /// Credentials that changed hands on the cross-shard market.
    pub market_trades: u64,
    /// Lures routed across shard boundaries at day barriers.
    pub cross_shard_lures: u64,
    seed: u64,
    days: u64,
    users: u32,
    n_shards: u16,
    workers: usize,
    metrics: Registry,
    ops: Registry,
    profiler: PhaseProfiler,
}

impl std::fmt::Debug for ShardedRun {
    /// Compact summary (shard worlds elided — each is megabytes of
    /// Debug output); mainly so `Result<ShardedRun, _>` works with
    /// `expect_err` in the chaos suite.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRun")
            .field("seed", &self.seed)
            .field("n_shards", &self.n_shards)
            .field("days", &self.days)
            .field("users", &self.users)
            .field("workers", &self.workers)
            .field("market_trades", &self.market_trades)
            .field("cross_shard_lures", &self.cross_shard_lures)
            .finish_non_exhaustive()
    }
}

impl ShardedRun {
    /// The per-shard worlds, in shard order.
    pub fn shards(&self) -> &[Ecosystem] {
        &self.shards
    }

    /// Consume the run, yielding the per-shard worlds in shard order
    /// (for callers that carry a single-shard world onward, e.g. the
    /// experiment context's checkpointable path).
    pub fn into_shards(self) -> Vec<Ecosystem> {
        self.shards
    }

    /// All login records, globally ordered by `(SimTime, shard, seq)`.
    pub fn merged_logins(&self) -> Vec<Entry<'_, LoginRecord>> {
        LogStore::merge(self.shards.iter().map(|e| e.login_log.store()))
    }

    /// All mail-provider events, globally ordered.
    pub fn merged_mail_events(&self) -> Vec<Entry<'_, MailEvent>> {
        LogStore::merge(self.shards.iter().map(|e| e.provider.log_store()))
    }

    /// All notification records, globally ordered.
    pub fn merged_notifications(&self) -> Vec<Entry<'_, NotificationRecord>> {
        LogStore::merge(self.shards.iter().map(|e| e.notifications.log_store()))
    }

    /// Stream the three merged event logs to `dir` (one file each:
    /// `logins.log`, `mail_events.log`, `notifications.log`) and return
    /// the spill receipts in that order. The bytes written are exactly
    /// what [`dataset_digest`](Self::dataset_digest) hashes for each
    /// log, so long-horizon runs can drop the in-memory merged views
    /// and re-verify the datasets from disk later via
    /// [`mhw_types::read_spilled_digest`].
    pub fn spill_logs(&self, dir: &Path) -> std::io::Result<Vec<SpillFile>> {
        std::fs::create_dir_all(dir)?;
        Ok(vec![
            LogStore::spill(self.merged_logins(), &dir.join("logins.log"))?,
            LogStore::spill(self.merged_mail_events(), &dir.join("mail_events.log"))?,
            LogStore::spill(self.merged_notifications(), &dir.join("notifications.log"))?,
        ])
    }

    /// All incidents, tagged with their shard id.
    pub fn incidents(&self) -> impl Iterator<Item = (u16, &Incident)> {
        self.shards
            .iter()
            .flat_map(|e| e.incidents().iter().map(move |i| (e.config.shard, i)))
    }

    /// All hijack-session reports, tagged with their shard id.
    pub fn sessions(&self) -> impl Iterator<Item = (u16, &SessionReport)> {
        self.shards
            .iter()
            .flat_map(|e| e.sessions().iter().map(move |s| (e.config.shard, s)))
    }

    /// Aggregate run counters, summed over shards.
    pub fn total_stats(&self) -> RunStats {
        let mut total = RunStats::default();
        for s in self.shards.iter().map(|e| &e.stats) {
            total.organic_logins += s.organic_logins;
            total.organic_challenges += s.organic_challenges;
            total.organic_challenge_failures += s.organic_challenge_failures;
            total.lures_delivered += s.lures_delivered;
            total.lures_spam_foldered += s.lures_spam_foldered;
            total.credentials_captured += s.credentials_captured;
            total.contact_lure_captures += s.contact_lure_captures;
            total.contact_lures_read += s.contact_lures_read;
            total.sessions_run += s.sessions_run;
            total.incidents += s.incidents;
            total.exploited += s.exploited;
            total.recovered += s.recovered;
            total.recovery_lockouts += s.recovery_lockouts;
            total.recovery_step_ups += s.recovery_step_ups;
            total.pivot_attempts += s.pivot_attempts;
            total.pivot_takeovers += s.pivot_takeovers;
        }
        total
    }

    /// A digest over every produced dataset: the three merged event
    /// logs (in global order, keys included), every incident and
    /// session report, and the aggregate counters. Two runs of the same
    /// sharded scenario must produce the same digest regardless of
    /// worker count — this is the engine's determinism contract and is
    /// what `tests/sharding.rs` pins.
    pub fn dataset_digest(&self) -> u64 {
        let mut line = String::new();
        let mut h = Fnv1a::new();
        for r in self.merged_logins() {
            line.clear();
            let _ = write!(line, "{:?}|{:?}", r.key, r.record);
            h.write(line.as_bytes());
        }
        for e in self.merged_mail_events() {
            line.clear();
            let _ = write!(line, "{:?}|{:?}", e.key, e.record);
            h.write(line.as_bytes());
        }
        for n in self.merged_notifications() {
            line.clear();
            let _ = write!(line, "{:?}|{:?}", n.key, n.record);
            h.write(line.as_bytes());
        }
        for (shard, inc) in self.incidents() {
            line.clear();
            let _ = write!(line, "{shard}|{inc:?}");
            h.write(line.as_bytes());
        }
        for (shard, sess) in self.sessions() {
            line.clear();
            let _ = write!(line, "{shard}|{sess:?}");
            h.write(line.as_bytes());
        }
        line.clear();
        let _ = write!(line, "{:?}", self.total_stats());
        h.write(line.as_bytes());
        h.finish()
    }

    /// The engine's own metrics registry (market trades, cross-shard
    /// lures, decoy probes, exchange-queue peak).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The crash-safety ops registry: faults injected, panics caught,
    /// checkpoints written/restored, checkpoint-write retries. Pure
    /// run *mechanics* — deliberately kept out of
    /// [`metrics_snapshot`](Self::metrics_snapshot) and the
    /// [`RunReport`], which must not change when a run is resumed or
    /// fault-injected.
    pub fn ops_metrics(&self) -> &Registry {
        &self.ops
    }

    /// Sim-time metrics merged over every shard plus the engine's own
    /// counters. All quantities are functions of the scenario (seed,
    /// shards, days, population) alone — the worker count never appears,
    /// so two runs of the same scenario produce identical snapshots at
    /// any parallelism level.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merge_all(
            self.shards
                .iter()
                .map(|e| e.metrics_snapshot())
                .chain(std::iter::once(self.metrics.snapshot())),
        )
    }

    /// The deterministic end-of-run report. Serialises byte-identically
    /// across worker counts for a fixed scenario — this is the report
    /// half of the determinism contract, pinned alongside
    /// [`dataset_digest`](Self::dataset_digest) by
    /// `tests/observability.rs`.
    pub fn run_report(&self) -> RunReport {
        RunReport::new(self.seed, self.n_shards, self.days as u32, self.users, self.metrics_snapshot())
    }

    /// Wall-clock per-phase profile of the run (world build, parallel
    /// shard days, barrier exchange, log merge). Pure mechanics: useful
    /// for benchmarking, deliberately **not** part of [`RunReport`].
    pub fn profile(&self) -> EngineProfile {
        self.profiler.report(self.n_shards, self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn tiny(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::small_test(seed);
        c.days = 4;
        c.population.n_users = 120;
        c.market_share = 0.3;
        c
    }

    #[test]
    fn single_shard_matches_plain_ecosystem() {
        // One shard, no market: the engine is the plain simulator.
        let mut config = tiny(3);
        config.market_share = 0.0;
        let mut direct = Ecosystem::build(config.clone());
        direct.run();
        let run = ShardedEngine::new(config, 1).run().unwrap();
        assert_eq!(run.shards().len(), 1);
        let eco = &run.shards()[0];
        assert_eq!(eco.login_log.len(), direct.login_log.len());
        assert_eq!(eco.stats.lures_delivered, direct.stats.lures_delivered);
        assert_eq!(eco.stats.incidents, direct.stats.incidents);
    }

    #[test]
    fn population_splits_evenly() {
        let mut c = tiny(5);
        c.population.n_users = 10;
        let engine = ShardedEngine::new(c, 3);
        let sizes: Vec<usize> =
            engine.shard_configs().iter().map(|c| c.population.n_users).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn weighted_split_is_proportional_and_exact() {
        let mut c = tiny(5);
        c.population.n_users = 130;
        let engine = ShardedEngine::new(c, 4).shard_weights(vec![10, 1, 1, 1]);
        let sizes: Vec<usize> =
            engine.shard_configs().iter().map(|c| c.population.n_users).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 130, "no user lost to rounding");
        assert!(sizes[0] >= 9 * sizes[1], "shard 0 carries ~10x the load");
        // Zero-weight shards end up empty.
        let mut c = tiny(5);
        c.population.n_users = 50;
        let engine = ShardedEngine::new(c, 2).shard_weights(vec![1, 0]);
        let sizes: Vec<usize> =
            engine.shard_configs().iter().map(|c| c.population.n_users).collect();
        assert_eq!(sizes, vec![50, 0]);
    }

    #[test]
    fn worker_count_does_not_change_the_digest() {
        let a = ShardedEngine::new(tiny(7), 3).workers(1).run().unwrap();
        let b = ShardedEngine::new(tiny(7), 3).workers(3).run().unwrap();
        assert_eq!(a.dataset_digest(), b.dataset_digest());
        assert_eq!(a.market_trades, b.market_trades);
        assert_eq!(a.cross_shard_lures, b.cross_shard_lures);
    }

    #[test]
    fn shard_count_is_scenario_semantics() {
        // Different shard counts are different scenarios.
        let a = ShardedEngine::new(tiny(7), 2).run().unwrap();
        let b = ShardedEngine::new(tiny(7), 3).run().unwrap();
        assert_ne!(a.dataset_digest(), b.dataset_digest());
    }

    #[test]
    fn merged_logs_are_globally_ordered_and_complete() {
        let run = ShardedEngine::new(tiny(11), 3).workers(2).run().unwrap();
        let merged = run.merged_logins();
        let total: usize = run.shards().iter().map(|e| e.login_log.len()).sum();
        assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key, "merged log out of order");
        }
        // Shard ids really appear in the keys.
        let shards_seen: std::collections::HashSet<u16> =
            merged.iter().map(|r| r.key.shard).collect();
        assert_eq!(shards_seen.len(), 3);
    }

    #[test]
    fn run_report_is_byte_identical_across_worker_counts() {
        let a = ShardedEngine::new(tiny(7), 3).workers(1).run().unwrap();
        let b = ShardedEngine::new(tiny(7), 3).workers(3).run().unwrap();
        assert_eq!(a.run_report().to_json(), b.run_report().to_json());
        let snap = a.metrics_snapshot();
        assert_eq!(
            snap.counters.iter().find(|c| c.name == "engine.market_trades").map(|c| c.value),
            Some(a.market_trades),
        );
    }

    #[test]
    fn profile_covers_every_engine_phase() {
        let run = ShardedEngine::new(tiny(9), 2).workers(2).run().unwrap();
        let profile = run.profile();
        let phases: Vec<&str> = profile.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(phases, vec!["build", "shard_day", "barrier_exchange", "log_merge"]);
        assert_eq!(profile.workers, 2);
        // One timing per day for the in-loop phases.
        assert_eq!(profile.phases[1].calls, 4);
    }

    #[test]
    fn engine_decoys_land_in_every_shard() {
        let run = ShardedEngine::new(tiny(13), 3).decoys(9, 2).run().unwrap();
        for eco in run.shards() {
            assert_eq!(eco.decoy_accounts.len(), 3);
        }
    }
}
