//! Dataset extraction — the simulator's version of Table 1.
//!
//! Each of the paper's 14 datasets is an extraction over raw logs. The
//! functions here pull exactly the same shapes out of a finished
//! [`Ecosystem`] run so the experiments (and Table 1 itself) never poke
//! at internals directly.

use crate::ecosystem::Ecosystem;
use mhw_identity::LoginRecord;
use mhw_mailsys::{MailEventKind, MessageKind};
use mhw_types::{AccountId, IpAddr, PhoneNumber, SimTime};
use std::collections::HashSet;

/// Dataset 1-style extraction: messages users reported as
/// spam/phishing, with ground-truth kind for curation.
pub fn reported_messages(eco: &Ecosystem) -> Vec<(AccountId, mhw_types::MessageId, MessageKind)> {
    eco.provider
        .log()
        .iter()
        .filter_map(|e| match &e.kind {
            MailEventKind::ReportedSpam { message } => {
                let kind = eco
                    .provider
                    .mailbox(e.account)
                    .get(*message)
                    .map(|m| m.kind)?;
                Some((e.account, *message, kind))
            }
            _ => None,
        })
        .collect()
}

/// Dataset 5/13: login records with hijacker ground truth.
pub fn hijacker_logins(eco: &Ecosystem) -> Vec<&LoginRecord> {
    eco.login_log
        .records()
        .filter(|r| r.actor.is_hijacker())
        .map(|e| e.record)
        .collect()
}

/// Distinct IPs used by hijackers.
pub fn hijacker_ips(eco: &Ecosystem) -> Vec<IpAddr> {
    let mut set: HashSet<IpAddr> = HashSet::new();
    for r in hijacker_logins(eco) {
        set.insert(r.ip);
    }
    let mut v: Vec<_> = set.into_iter().collect();
    v.sort();
    v
}

/// Dataset 6: raw search queries issued by hijackers.
pub fn hijacker_search_queries(eco: &Ecosystem) -> Vec<String> {
    eco.provider
        .log()
        .iter()
        .filter(|e| e.actor.is_hijacker())
        .filter_map(|e| match &e.kind {
            MailEventKind::Searched { query } => Some(query.clone()),
            _ => None,
        })
        .collect()
}

/// Dataset 14: phone numbers hijackers enrolled for the 2FA lockout.
pub fn hijacker_phones(eco: &Ecosystem) -> Vec<PhoneNumber> {
    eco.twofactor.hijacker_enrolled_phones_since(SimTime::EPOCH)
}

/// Dataset 11: recovery latency in hours per recovered incident,
/// measured from the risk system's flag to the successful reclaim (the
/// Figure 9 clock; DESIGN.md "Figure 9 anchor"). Incidents never
/// flagged or never recovered are excluded.
pub fn recovery_latency_hours(eco: &Ecosystem) -> Vec<f64> {
    eco.real_incidents()
        .filter_map(|i| {
            let recovered = i.recovered_at?;
            let flagged = i.flagged_at?;
            Some(recovered.since(flagged).as_hours_f64())
        })
        .collect()
}

/// Dataset 8-style: messages sent from hijacked accounts during their
/// hijack windows that recipients reported.
pub fn hijack_sent_and_reported(eco: &Ecosystem) -> Vec<(AccountId, MessageKind)> {
    // Reported message ids (in the recipient's mailbox) whose sender is
    // a hijacked account and whose kind is abusive.
    eco.provider
        .log()
        .iter()
        .filter_map(|e| match &e.kind {
            MailEventKind::ReportedSpam { message } => {
                let m = eco.provider.mailbox(e.account).get(*message)?;
                let sender = eco.provider.resolve(&m.from)?;
                let was_hijacked = eco
                    .incidents
                    .iter()
                    .any(|i| i.account == sender && m.at >= i.hijack_start);
                (was_hijacked && m.kind.is_abusive()).then_some((sender, m.kind))
            }
            _ => None,
        })
        .collect()
}

/// One row of the Table 1 inventory.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    pub id: u8,
    pub name: &'static str,
    pub samples: usize,
    pub section: &'static str,
}

/// The Table 1 inventory computed from a finished run.
#[derive(Debug, Clone)]
pub struct DatasetInventory {
    pub rows: Vec<DatasetRow>,
}

impl DatasetInventory {
    /// Build the inventory. Datasets produced by companion experiments
    /// (form campaigns, decoys, the 2011-era comparison run) are passed
    /// in as counts where applicable; zero means "not run".
    pub fn from_run(
        eco: &Ecosystem,
        form_pages: usize,
        decoys: usize,
        era_2011_cases: usize,
    ) -> Self {
        let reported = reported_messages(eco);
        let phishing_reports = reported
            .iter()
            .filter(|(_, _, k)| *k == MessageKind::PhishingLure)
            .count();
        let incidents = eco.real_incidents().count();
        let recovered = eco
            .real_incidents()
            .filter(|i| i.recovered_at.is_some())
            .count();
        let rows = vec![
            DatasetRow { id: 1, name: "Phishing emails (user-reported)", samples: phishing_reports, section: "4.1" },
            DatasetRow { id: 2, name: "Phishing pages detected", samples: eco.takedowns.len(), section: "4.1" },
            DatasetRow { id: 3, name: "Hosted forms taken down", samples: form_pages, section: "4.2" },
            DatasetRow { id: 4, name: "Decoy credentials injected", samples: decoys, section: "5.1" },
            DatasetRow { id: 5, name: "Hijacker login IPs", samples: hijacker_ips(eco).len(), section: "5.1" },
            DatasetRow { id: 6, name: "Hijacker search keywords", samples: hijacker_search_queries(eco).len(), section: "5.2" },
            DatasetRow { id: 7, name: "High-confidence hijacked accounts", samples: incidents, section: "5.2" },
            DatasetRow { id: 8, name: "Hijack-sent mail reported as spam", samples: hijack_sent_and_reported(eco).len(), section: "5.3" },
            DatasetRow { id: 9, name: "Hijacked-contact vs random cohorts", samples: eco.population.len(), section: "5.3" },
            DatasetRow { id: 10, name: "High-confidence hijacked accounts (2011 era)", samples: era_2011_cases, section: "5.4" },
            DatasetRow { id: 11, name: "Recovered hijacked accounts", samples: recovered, section: "6.2" },
            DatasetRow { id: 12, name: "Account recovery claims", samples: eco.recovery.claims().len(), section: "6.3" },
            DatasetRow { id: 13, name: "Hijack-case IPs geolocated", samples: hijacker_logins(eco).len(), section: "7" },
            DatasetRow { id: 14, name: "Hijacker 2FA phone numbers", samples: hijacker_phones(eco).len(), section: "7" },
        ];
        DatasetInventory { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn run() -> Ecosystem {
        let mut config = ScenarioConfig::small_test(31);
        config.days = 10;
        let mut eco = Ecosystem::build(config);
        eco.run();
        eco
    }

    #[test]
    fn inventory_has_14_rows() {
        let eco = run();
        let inv = DatasetInventory::from_run(&eco, 100, 200, 600);
        assert_eq!(inv.rows.len(), 14);
        for (i, row) in inv.rows.iter().enumerate() {
            assert_eq!(row.id as usize, i + 1);
        }
    }

    #[test]
    fn extractors_return_consistent_data() {
        let eco = run();
        let logins = hijacker_logins(&eco);
        assert!(!logins.is_empty());
        for r in &logins {
            assert!(r.actor.is_hijacker());
        }
        let ips = hijacker_ips(&eco);
        assert!(!ips.is_empty());
        let queries = hijacker_search_queries(&eco);
        assert!(!queries.is_empty());
        // Queries come only from hijack sessions; every one must appear
        // in some session report.
        let session_queries: HashSet<&String> =
            eco.sessions.iter().flat_map(|s| s.searches.iter()).collect();
        for q in &queries {
            assert!(session_queries.contains(q), "orphan query {q}");
        }
    }

    #[test]
    fn reported_messages_have_kinds() {
        let eco = run();
        let reported = reported_messages(&eco);
        // Users report lures and scams; at this scale some reports exist.
        assert!(!reported.is_empty());
        assert!(reported.iter().all(|(_, _, k)| k.is_abusive()));
    }

    #[test]
    fn recovery_latencies_are_positive_and_bounded_by_run() {
        let eco = run();
        let latencies = recovery_latency_hours(&eco);
        assert!(!latencies.is_empty());
        for l in &latencies {
            assert!(*l >= 0.0, "negative recovery latency {l}");
            assert!(*l <= eco.config.days as f64 * 24.0, "latency beyond run end {l}");
        }
        let recovered_and_flagged = eco
            .real_incidents()
            .filter(|i| i.recovered_at.is_some() && i.flagged_at.is_some())
            .count();
        assert_eq!(latencies.len(), recovered_and_flagged);
    }

    #[test]
    fn phones_only_from_lockout_crews() {
        let eco = run();
        for p in hijacker_phones(&eco) {
            let c = p.country().expect("crew phones have modelled countries");
            assert!(
                matches!(
                    c,
                    mhw_types::CountryCode::NG
                        | mhw_types::CountryCode::CI
                        | mhw_types::CountryCode::ZA
                        | mhw_types::CountryCode::ML
                ),
                "{c}"
            );
        }
    }
}
