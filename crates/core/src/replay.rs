//! Login-log replay plumbing for serve mode.
//!
//! The `serve` binary treats login traffic as the first-class workload:
//! a stream of [`ReplayLogin`] events is pushed through a
//! [`RiskService`] one at a time, the way the paper's engine scored
//! logins online. This module provides the three pieces that sit
//! between a login log and the service:
//!
//! * **workloads** — [`generate_workload`] synthesizes a deterministic
//!   login stream (organic diurnal traffic plus hijack-style attempts)
//!   from a [`WorkloadConfig`], and [`from_login_log`] converts a
//!   simulation's recorded [`LoginLog`] into the same event shape;
//! * **replay** — [`replay_stream`]/[`score_event`] drive the service
//!   and adjudicate outcomes ([`adjudicate`]), chaining a FNV-1a
//!   verdict digest so chunked and sharded replays compose;
//! * **parity** — [`verdict_digest_from_log`] computes the batch-side
//!   digest from recorded scores, letting `tests/serve_parity.rs` pin
//!   that streaming replay reproduces the simulation's verdicts
//!   bit-for-bit.

#![deny(missing_docs)]

use mhw_types::fnv::{fnv1a, OFFSET as FNV_OFFSET};
use mhw_defense::{
    AnswererCapabilities, LoginRequest, RiskDecision, RiskEngine, RiskService, RiskVerdict,
};
use mhw_identity::{LoginLog, LoginOutcome};
use mhw_netmodel::GeoDb;
use mhw_simclock::SimRng;
use mhw_types::{AccountId, Actor, CountryCode, DeviceId, IpAddr, SimTime, DAY, HOUR};
use serde::{Deserialize, Serialize};

/// Schema tag for serialized replay logs.
pub const REPLAY_SCHEMA: &str = "mhw-replay-log/v1";

/// Seed value for the chained verdict digest.
pub const DIGEST_SEED: u64 = FNV_OFFSET;

/// One login event as the replay harness sees it.
///
/// Provider-visible request fields plus the pre-adjudicated parts the
/// service does not decide itself: whether the password was right, how
/// a challenge would go, and — when replaying a recorded log — the
/// already-known outcome (2FA and challenge RNG happened in the batch
/// run; replay must not re-roll them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayLogin {
    /// Simulated arrival time.
    pub at: SimTime,
    /// Target account.
    pub account: AccountId,
    /// Source address.
    pub ip: IpAddr,
    /// Client device identity.
    pub device: DeviceId,
    /// Whether the presented password was correct.
    pub password_correct: bool,
    /// Whether the answerer would pass a served challenge.
    pub challenge_pass: bool,
    /// Fixed outcome when replaying a recorded log (wins over
    /// [`adjudicate`]'s decision logic); `None` for synthetic streams.
    pub outcome: Option<LoginOutcome>,
}

/// A serializable replay log (schema tag + events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayLog {
    /// Schema tag ([`REPLAY_SCHEMA`]).
    pub schema: String,
    /// Seed the workload was generated from (0 for recorded logs).
    pub seed: u64,
    /// Time-ordered login events.
    pub events: Vec<ReplayLogin>,
}

impl ReplayLog {
    /// Wrap events with the schema tag.
    pub fn new(seed: u64, events: Vec<ReplayLogin>) -> Self {
        ReplayLog { schema: REPLAY_SCHEMA.to_string(), seed, events }
    }

    /// Canonical JSON form (deterministic field order).
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)] // every field is serializable by construction
        serde_json::to_string(self).expect("replay log serializes")
    }

    /// Parse back from [`ReplayLog::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Parameters for a synthetic serve-mode workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Simulated user population.
    pub users: u32,
    /// Days of traffic to generate.
    pub days: u32,
    /// Organic logins per user per day.
    pub logins_per_user_day: u32,
    /// Chance an organic login presents a wrong password.
    pub wrong_password_rate: f64,
    /// Chance an organic login originates from a foreign country.
    pub travel_rate: f64,
    /// Per-user-per-day chance of a hijack-style attempt (fresh device,
    /// foreign proxy IP, correct password — the §5 capture scenario).
    pub attack_rate: f64,
    /// RNG seed; equal configs generate byte-identical streams.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small default workload (used by `serve --smoke` and tests).
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            users: 200,
            days: 3,
            logins_per_user_day: 2,
            wrong_password_rate: 0.03,
            travel_rate: 0.02,
            attack_rate: 0.01,
            seed,
        }
    }

    /// Expected event count (organic only; attacks add ~`attack_rate`
    /// per user-day on top).
    pub fn organic_events(&self) -> u64 {
        self.users as u64 * self.days as u64 * self.logins_per_user_day as u64
    }
}

/// Deterministically synthesize a time-ordered login stream.
///
/// Every user gets a stable home country/IP/device and a preferred
/// daily login hour; travel, wrong passwords and hijack attempts are
/// drawn from `cfg.seed` in fixed loop order, so equal configs yield
/// identical streams on every machine and thread count.
pub fn generate_workload(cfg: &WorkloadConfig, geo: &GeoDb) -> Vec<ReplayLogin> {
    let mut rng = SimRng::shard_stream(cfg.seed, 0, "serve-workload");
    let n_countries = CountryCode::ALL.len() as u64;
    // Fresh attacker devices come from a namespace far above user devices.
    let mut next_attack_device = cfg.users + 1_000_000;
    let mut events = Vec::with_capacity(cfg.organic_events() as usize);
    for day in 0..cfg.days as u64 {
        for u in 0..cfg.users {
            let home = CountryCode::ALL[(u as u64 % n_countries) as usize];
            let account = AccountId(u);
            let device = DeviceId(u);
            for k in 0..cfg.logins_per_user_day as u64 {
                // Spread each user's logins over a personal hour band.
                let hour = (8 + (u as u64 + 5 * k) % 12) % 24;
                let at = SimTime::from_secs(day * DAY + hour * HOUR + rng.below(HOUR));
                let travelling = rng.chance(cfg.travel_rate);
                let ip = if travelling {
                    let away = CountryCode::ALL
                        [((u as u64 + 1 + rng.below(n_countries - 1)) % n_countries) as usize];
                    geo.random_ip(away, &mut rng)
                } else {
                    geo.stable_ip(home, u as u64)
                };
                events.push(ReplayLogin {
                    at,
                    account,
                    ip,
                    device,
                    password_correct: !rng.chance(cfg.wrong_password_rate),
                    challenge_pass: rng.chance(0.9),
                    outcome: None,
                });
            }
            if rng.chance(cfg.attack_rate) {
                // Crew attempt: correct (captured) password, fresh
                // device, proxy exit in a random foreign country.
                let away = CountryCode::ALL
                    [((u as u64 + 1 + rng.below(n_countries - 1)) % n_countries) as usize];
                let at = SimTime::from_secs(day * DAY + rng.below(DAY));
                let device = DeviceId(next_attack_device);
                next_attack_device += 1;
                events.push(ReplayLogin {
                    at,
                    account,
                    ip: geo.random_ip(away, &mut rng),
                    device,
                    password_correct: true,
                    challenge_pass: rng.chance(0.18),
                    outcome: None,
                });
            }
        }
    }
    events.sort_by_key(|e| (e.at, e.account.0, e.device.0));
    events
}

/// Convert a simulation's recorded login log into replay events.
///
/// Outcomes are carried over verbatim (the batch run already rolled
/// 2FA/challenge randomness), which is what makes replay a pure
/// re-scoring of the same state trajectory.
pub fn from_login_log(log: &LoginLog) -> Vec<ReplayLogin> {
    log.records()
        .map(|r| ReplayLogin {
            at: r.at,
            account: r.account,
            ip: r.ip,
            device: r.device,
            password_correct: r.password_correct,
            challenge_pass: r.challenge.map(|c| c.passed).unwrap_or(false),
            outcome: Some(r.outcome),
        })
        .collect()
}

/// Decide an event's outcome from the service's decision.
///
/// A recorded outcome wins (replay must not re-adjudicate randomness);
/// otherwise: wrong password fails outright, `Allow` succeeds, `Block`
/// blocks, and a challenge resolves by the event's pre-rolled
/// `challenge_pass`.
pub fn adjudicate(event: &ReplayLogin, decision: RiskDecision) -> LoginOutcome {
    if let Some(outcome) = event.outcome {
        return outcome;
    }
    if !event.password_correct {
        return LoginOutcome::WrongPassword;
    }
    match decision {
        RiskDecision::Allow => LoginOutcome::Success,
        RiskDecision::Block => LoginOutcome::Blocked,
        RiskDecision::Challenge => {
            if event.challenge_pass {
                LoginOutcome::Success
            } else {
                LoginOutcome::ChallengeFailed
            }
        }
    }
}

/// A reusable request buffer for replay (the password/actor/capability
/// fields are never read by a [`RiskService`]; allocate once).
pub fn placeholder_request() -> LoginRequest {
    LoginRequest {
        at: SimTime::EPOCH,
        account: AccountId(0),
        ip: IpAddr(0),
        device: DeviceId(0),
        password: String::new(),
        actor: Actor::Owner,
        capabilities: AnswererCapabilities::owner(false, 0.0),
    }
}

/// Score one event end to end: assess → adjudicate → commit.
///
/// `request` is a scratch buffer from [`placeholder_request`], reused
/// across calls to keep the hot path allocation-free.
pub fn score_event<S: RiskService + ?Sized>(
    service: &mut S,
    geo: &GeoDb,
    event: &ReplayLogin,
    request: &mut LoginRequest,
) -> (RiskVerdict, LoginOutcome) {
    request.at = event.at;
    request.account = event.account;
    request.ip = event.ip;
    request.device = event.device;
    let verdict = service.assess(request, geo);
    let outcome = adjudicate(event, verdict.decision);
    service.commit(request, &verdict, outcome);
    (verdict, outcome)
}

fn decision_code(decision: RiskDecision) -> u8 {
    match decision {
        RiskDecision::Allow => 0,
        RiskDecision::Challenge => 1,
        RiskDecision::Block => 2,
    }
}

fn outcome_code(outcome: LoginOutcome) -> u8 {
    match outcome {
        LoginOutcome::Success => 0,
        LoginOutcome::WrongPassword => 1,
        LoginOutcome::Blocked => 2,
        LoginOutcome::ChallengeFailed => 3,
        LoginOutcome::SecondFactorFailed => 4,
    }
}

/// Fold one verdict into the chained digest: exact score bits, the
/// threshold decision, the adjudicated outcome, and the verdict's
/// fidelity byte — so degraded or shed scoring changes the digest and
/// is pinned by byte-identity checks, never silent.
pub fn mix_digest(digest: u64, verdict: &RiskVerdict, outcome: LoginOutcome) -> u64 {
    let h = fnv1a(digest, &verdict.score.to_bits().to_le_bytes());
    fnv1a(
        h,
        &[decision_code(verdict.decision), outcome_code(outcome), verdict.fidelity.byte()],
    )
}

/// Replay `events` through `service`, chaining the verdict digest from
/// `digest` (pass [`DIGEST_SEED`] for a fresh stream; pass the previous
/// chunk's return value to continue a chunked replay). `observe` runs
/// after each event (latency sampling, per-event assertions).
pub fn replay_stream<S: RiskService + ?Sized>(
    service: &mut S,
    geo: &GeoDb,
    events: &[ReplayLogin],
    digest: u64,
    mut observe: impl FnMut(&ReplayLogin, &RiskVerdict, LoginOutcome),
) -> u64 {
    let mut request = placeholder_request();
    let mut h = digest;
    for event in events {
        let (verdict, outcome) = score_event(service, geo, event, &mut request);
        h = mix_digest(h, &verdict, outcome);
        observe(event, &verdict, outcome);
    }
    h
}

/// The batch-side digest over a recorded login log: recorded score
/// bits, the engine's threshold decision for that score, and the
/// recorded outcome — the exact sequence a 1-shard streaming replay
/// must reproduce.
pub fn verdict_digest_from_log(log: &LoginLog, engine: &RiskEngine) -> u64 {
    let mut h = DIGEST_SEED;
    // Batch scoring always runs full-fidelity, so the batch side mixes
    // the empty fidelity byte — clean-arm serve digests match exactly.
    let fidelity = mhw_defense::Fidelity::FULL.byte();
    for r in log.records() {
        h = fnv1a(h, &r.risk_score.to_bits().to_le_bytes());
        h = fnv1a(
            h,
            &[decision_code(engine.decide(r.risk_score)), outcome_code(r.outcome), fidelity],
        );
    }
    h
}

/// Combine per-shard digests into one order-sensitive fingerprint
/// (shard order is the partition order, which is deterministic).
pub fn fold_digests(parts: &[u64]) -> u64 {
    let mut h = DIGEST_SEED;
    for p in parts {
        h = fnv1a(h, &p.to_le_bytes());
    }
    h
}

/// Partition events across `shards` service instances by account, so
/// every account's state trajectory stays on one shard. Relative event
/// order is preserved within each shard.
pub fn shard_events(events: &[ReplayLogin], shards: usize) -> Vec<Vec<ReplayLogin>> {
    let shards = shards.max(1);
    let mut out = vec![Vec::new(); shards];
    for e in events {
        out[e.account.index() % shards].push(*e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_defense::StreamingRiskService;

    fn small_events() -> (GeoDb, Vec<ReplayLogin>) {
        let geo = GeoDb::new();
        let events = generate_workload(&WorkloadConfig::small(7), &geo);
        (geo, events)
    }

    #[test]
    fn workload_is_deterministic_and_time_ordered() {
        let (_, a) = small_events();
        let (_, b) = small_events();
        assert_eq!(a, b);
        assert!(a.len() as u64 >= WorkloadConfig::small(7).organic_events());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        // A different seed produces a different stream.
        let geo = GeoDb::new();
        let c = generate_workload(&WorkloadConfig::small(8), &geo);
        assert_ne!(a, c);
    }

    #[test]
    fn replay_log_round_trips_through_json() {
        let (_, events) = small_events();
        let log = ReplayLog::new(7, events[..50].to_vec());
        let back = ReplayLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.schema, REPLAY_SCHEMA);
    }

    #[test]
    fn replay_digest_is_reproducible_and_chains() {
        let (geo, events) = small_events();
        let mut svc = StreamingRiskService::new(RiskEngine::default());
        let whole = replay_stream(&mut svc, &geo, &events, DIGEST_SEED, |_, _, _| {});
        // Same stream, fresh service → same digest.
        let mut svc2 = StreamingRiskService::new(RiskEngine::default());
        let again = replay_stream(&mut svc2, &geo, &events, DIGEST_SEED, |_, _, _| {});
        assert_eq!(whole, again);
        // Chunked replay chains to the identical digest.
        let mut svc3 = StreamingRiskService::new(RiskEngine::default());
        let (head, tail) = events.split_at(events.len() / 2);
        let mid = replay_stream(&mut svc3, &geo, head, DIGEST_SEED, |_, _, _| {});
        let chunked = replay_stream(&mut svc3, &geo, tail, mid, |_, _, _| {});
        assert_eq!(whole, chunked);
    }

    #[test]
    fn adjudicate_honours_fixed_outcomes_and_decisions() {
        let mut e = ReplayLogin {
            at: SimTime::EPOCH,
            account: AccountId(0),
            ip: IpAddr(1),
            device: DeviceId(0),
            password_correct: true,
            challenge_pass: false,
            outcome: None,
        };
        assert_eq!(adjudicate(&e, RiskDecision::Allow), LoginOutcome::Success);
        assert_eq!(adjudicate(&e, RiskDecision::Block), LoginOutcome::Blocked);
        assert_eq!(adjudicate(&e, RiskDecision::Challenge), LoginOutcome::ChallengeFailed);
        e.challenge_pass = true;
        assert_eq!(adjudicate(&e, RiskDecision::Challenge), LoginOutcome::Success);
        e.password_correct = false;
        assert_eq!(adjudicate(&e, RiskDecision::Allow), LoginOutcome::WrongPassword);
        // A recorded outcome wins over everything.
        e.outcome = Some(LoginOutcome::SecondFactorFailed);
        assert_eq!(adjudicate(&e, RiskDecision::Allow), LoginOutcome::SecondFactorFailed);
    }

    #[test]
    fn sharding_partitions_by_account_preserving_order() {
        let (_, events) = small_events();
        let shards = shard_events(&events, 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), events.len());
        for (i, shard) in shards.iter().enumerate() {
            assert!(shard.iter().all(|e| e.account.index() % 4 == i));
            assert!(shard.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }
}
