//! The ecosystem: one closed world, simulated day by day.
//!
//! Each simulated day interleaves, in time order:
//!
//! 1. **phishing lures** delivered to users (through the mail
//!    classifier — most land in Spam, §4.2's delivery asymmetry);
//! 2. **organic user activity** — logins through the risk engine,
//!    personal mail, mailbox searches, spam reporting, and the
//!    occasional fatal click on a lure;
//! 3. **crew shifts** — during office hours, crews drain their
//!    credential dropboxes and run the §5 playbook against each one;
//! 4. **victim awareness and recovery** — notifications, dead
//!    passwords and disabled accounts lead to claims, verification,
//!    password resets and §6.4 remission.
//!
//! Everything measurable by the paper falls out of the logs this loop
//! produces.

use crate::config::ScenarioConfig;
use crate::world::{WorldAdapter, VARIANT_CORRECT};
use mhw_adversary::{CrewRoster, HijackPlaybook, SessionReport};
use mhw_defense::{
    ActivityMonitor, AnswererCapabilities, LoginContext, LoginPipeline, LoginRequest,
    MailClassifier,
    NotificationEngine, RiskEngine,
};
use mhw_identity::{
    CredentialStore, LoginLog, LoginOutcome, RecoveryOptions, TwoFactorState,
};
use mhw_mailsys::{Folder, MailProvider, MessageDraft, MessageKind};
use mhw_netmodel::{DomainModel, GeoDb, PhonePlan, ReferrerModel};
use mhw_obs::{MetricId, MetricsSnapshot, Registry, RunReport};
use mhw_phishkit::{
    CapturedCredential, CredentialExactness, DetectionPipeline, Dropbox, PageQuality,
    PhishingPage, TakedownRecord,
};
use mhw_population::{Population, PopulationBuilder};
use mhw_recovery::{
    hijacker_takeover_probability, run_remission, ClaimAssessment, ClaimTrigger,
    RecoveryRiskService, RecoveryService, RecoveryVerdict, RemissionReport,
};
use mhw_simclock::SimRng;
use mhw_types::{
    AccountId, Actor, CampaignId, CrewId, DenseMap, EmailAddress, IncidentId, MessageId, PageId,
    SimDuration, SimTime, Span, StrArena, DAY, HOUR,
};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Credentials sitting unclaimed in crew dropboxes at end of run (the
/// queue-depth gauge; per-shard values sum on merge).
pub const M_DROPBOX_PENDING: MetricId = MetricId("ecosystem.dropbox_pending");
/// Credentials lost to dropbox takedowns/rotation over the whole run.
pub const M_DROPBOX_LOST: MetricId = MetricId("ecosystem.dropbox_lost");
/// Confirmed manual-hijacking incidents opened.
pub const M_INCIDENTS: MetricId = MetricId("ecosystem.incidents");

/// Where a delivered lure leads, for credential-capture mechanics.
#[derive(Debug, Clone, Copy)]
enum LureSource {
    /// Link lure to a crew's phishing page (index into `pages`).
    Page(usize, CrewId),
    /// Reply-with-credentials lure straight to the crew dropbox.
    Direct(CrewId),
}

/// Sentinel for "no active incident" in the dense incident column.
const NO_INCIDENT: u32 = u32::MAX;

/// Per-user dynamic state, stored struct-of-arrays and indexed by the
/// dense account index.
///
/// The daily loop touches every user several times (travel flag at
/// scheduling, password + incident checks per login, awareness and
/// claim timers at every sweep), so each field lives in its own column:
/// a scan reads only the bytes it needs, and a million users cost a
/// handful of flat allocations instead of a million scattered structs.
/// Known passwords are spans into one shared [`StrArena`]; the rare
/// cold field (failed recovery methods for an open incident) lives in a
/// side table keyed by account index.
#[derive(Debug, Clone, Default)]
struct UserStates {
    /// The password each user believes is theirs (span into `arena`).
    known_password: Vec<Span>,
    arena: StrArena,
    travelling_today: Vec<bool>,
    /// When the user (will) realize the account is hijacked.
    aware_at: Vec<Option<SimTime>>,
    /// Next recovery-claim attempt.
    next_claim_at: Vec<Option<SimTime>>,
    claim_attempts: Vec<u32>,
    /// Index into [`Ecosystem::incidents`], or [`NO_INCIDENT`].
    active_incident: Vec<u32>,
    /// Cold side table: methods that already failed for the active
    /// incident (empty for almost every user on almost every day).
    failed_methods: HashMap<u32, Vec<mhw_recovery::RecoveryMethod>>,
}

impl UserStates {
    fn len(&self) -> usize {
        self.known_password.len()
    }

    /// Append the next user's state (users are registered densely in
    /// account order).
    fn push(&mut self, password: &str) {
        let span = self.arena.push(password);
        self.known_password.push(span);
        self.travelling_today.push(false);
        self.aware_at.push(None);
        self.next_claim_at.push(None);
        self.claim_attempts.push(0);
        self.active_incident.push(NO_INCIDENT);
    }

    fn password(&self, i: usize) -> &str {
        self.arena.get(self.known_password[i])
    }

    fn set_password(&mut self, i: usize, password: &str) {
        self.known_password[i] = self.arena.push(password);
    }

    /// The user's active incident, if any (in-range and set).
    fn active_incident(&self, i: usize) -> Option<usize> {
        match self.active_incident.get(i) {
            Some(&idx) if idx != NO_INCIDENT => Some(idx as usize),
            _ => None,
        }
    }

    fn failed_methods(&self, i: usize) -> &[mhw_recovery::RecoveryMethod] {
        self.failed_methods.get(&(i as u32)).map_or(&[], Vec::as_slice)
    }

    fn note_failed_method(&mut self, i: usize, method: mhw_recovery::RecoveryMethod) {
        let methods = self.failed_methods.entry(i as u32).or_default();
        if !methods.contains(&method) {
            methods.push(method);
        }
    }

    /// Reset all per-incident state after a successful recovery.
    fn clear_incident(&mut self, i: usize) {
        self.active_incident[i] = NO_INCIDENT;
        self.aware_at[i] = None;
        self.next_claim_at[i] = None;
        self.claim_attempts[i] = 0;
        self.failed_methods.remove(&(i as u32));
    }
}

/// The `Copy` slice of a profile an organic session needs, extracted up
/// front so the hot path never clones a full `UserProfile` (address and
/// other heap fields) once per login.
#[derive(Debug, Clone, Copy)]
struct UserVitals {
    device: mhw_types::DeviceId,
    report_propensity: f64,
    gullibility: f64,
    sends_per_day: f64,
    logins_per_day: f64,
    searches_per_day: f64,
}

impl UserVitals {
    fn of(u: &mhw_population::UserProfile) -> Self {
        UserVitals {
            device: u.device,
            report_propensity: u.report_propensity,
            gullibility: u.gullibility,
            sends_per_day: u.sends_per_day,
            logins_per_day: u.logins_per_day,
            searches_per_day: u.searches_per_day,
        }
    }
}

/// One confirmed manual-hijacking incident.
#[derive(Debug, Clone)]
pub struct Incident {
    pub id: IncidentId,
    pub account: AccountId,
    pub crew: CrewId,
    /// First successful hijacker login.
    pub hijack_start: SimTime,
    /// Index into [`Ecosystem::sessions`].
    pub session: usize,
    /// When anti-abuse disabled the account mid-exploitation, if it did.
    pub disabled_at: Option<SimTime>,
    /// When the provider's systems flagged the account as hijacked
    /// (monitor disable, or first claim filing) — the Figure 9 anchor.
    pub flagged_at: Option<SimTime>,
    pub recovered_at: Option<SimTime>,
    pub remission: Option<RemissionReport>,
    pub is_decoy: bool,
}

/// Aggregate counters for a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub organic_logins: u64,
    pub organic_challenges: u64,
    pub organic_challenge_failures: u64,
    pub lures_delivered: u64,
    pub lures_spam_foldered: u64,
    pub credentials_captured: u64,
    /// Captures attributable to lures sent from a hijacked contact.
    pub contact_lure_captures: u64,
    /// Lures from hijacked contacts that reached an inbox and were read.
    pub contact_lures_read: u64,
    pub sessions_run: u64,
    pub incidents: u64,
    pub exploited: u64,
    pub recovered: u64,
    /// Owner claims denied outright by recovery risk scoring — the
    /// frontier's false-positive cost. Always 0 when
    /// `RecoveryConfig::claim_risk_scoring` is off.
    pub recovery_lockouts: u64,
    /// Owner claims that hit a step-up challenge.
    pub recovery_step_ups: u64,
    /// Recovery-pivot claims filed by crews stopped at the login
    /// challenge. Always 0 when `RecoveryConfig::adversary_pivot` is
    /// off.
    pub pivot_attempts: u64,
    /// Pivot claims that took the account over.
    pub pivot_takeovers: u64,
}

/// The assembled world.
///
/// `Clone` is the copy-on-write fork primitive: the `Arc`-shared
/// structural fields below (geo plan, domain model, population +
/// contact graph) are shared by pointer, while all mutable simulation
/// state (logs, stores, RNG streams, per-user columns) is deep-copied,
/// so a forked world costs O(dynamic state), not O(world).
#[derive(Clone)]
pub struct Ecosystem {
    pub config: ScenarioConfig,
    /// Immutable after build; shared across forks.
    pub geo: Arc<GeoDb>,
    /// Immutable after build; shared across forks.
    pub domains: Arc<DomainModel>,
    pub phones: PhonePlan,
    pub provider: MailProvider,
    pub credentials: CredentialStore,
    pub options: RecoveryOptions,
    pub twofactor: TwoFactorState,
    /// Immutable after build (profiles + contact graph); shared across
    /// forks.
    pub population: Arc<Population>,
    pub crews: CrewRoster,
    pub playbook: HijackPlaybook,
    pub login: LoginPipeline,
    pub login_log: LoginLog,
    pub classifier: MailClassifier,
    pub monitor: ActivityMonitor,
    pub notifications: NotificationEngine,
    pub recovery: RecoveryService,
    pub detection: DetectionPipeline,
    pub referrers: ReferrerModel,
    /// Report stores are crate-private: external readers go through the
    /// [`Ecosystem::pages`]/[`Ecosystem::takedowns`]/[`Ecosystem::incidents`]/
    /// [`Ecosystem::sessions`] accessors so only the simulation loop can
    /// mutate them.
    pub(crate) pages: Vec<PhishingPage>,
    pub(crate) takedowns: Vec<TakedownRecord>,
    pub(crate) incidents: Vec<Incident>,
    pub(crate) sessions: Vec<SessionReport>,
    pub disabled: HashSet<AccountId>,
    pub stats: RunStats,
    /// Ecosystem-level metrics not owned by any subsystem (queue depth,
    /// incident counts); merged into [`Ecosystem::metrics_snapshot`].
    pub obs: Registry,
    /// Decoy accounts injected by the Figure 7 experiment.
    pub decoy_accounts: HashSet<AccountId>,
    users: UserStates,
    /// Decoy submissions scheduled by the Figure 7 experiment.
    pending_decoys: Vec<(SimTime, AccountId, CrewId)>,
    /// Lures queued from outside this shard (cross-shard contact-graph
    /// mail routed by the sharded engine at day barriers).
    pending_external_lures: Vec<(SimTime, AccountId, CrewId)>,
    /// Captured credentials diverted to the cross-shard market instead
    /// of the local dropbox; drained by the engine at day barriers.
    market_outbox: Vec<(CrewId, CapturedCredential)>,
    /// Prompt dropbox pickups queued by capture_credential, run between
    /// events (never re-entrantly).
    pending_pickups: Vec<(usize, CapturedCredential, SimTime)>,
    /// Which crew a delivered lure feeds, keyed by dense message index.
    /// Shard-0 message ids fill the dense region; ids carrying a shard
    /// tag in the high byte land in the map's overflow region.
    lure_index: DenseMap<LureSource>,
    /// Per-crew current link-lure page (index into `pages`).
    crew_pages: Vec<Option<usize>>,
    /// Per-crew (hour index, sessions run that hour) budget tracker.
    crew_hour_used: Vec<(u64, u64)>,
    log_cursor: usize,
    now: SimTime,
    next_campaign: u32,
    rng_world: SimRng,
    rng_organic: SimRng,
    rng_crew: SimRng,
    rng_campaign: SimRng,
    rng_recovery: SimRng,
    rng_market: SimRng,
}

/// A day's worth of scheduled happenings, processed in time order.
enum Event {
    Lure { at: SimTime, target: AccountId, crew: CrewId },
    OrganicLogin { at: SimTime, user: AccountId },
    CrewShift { at: SimTime, crew_index: usize },
    ClaimSweep { at: SimTime },
    DecoySubmission { at: SimTime, account: AccountId, crew: CrewId },
}

impl Event {
    fn at(&self) -> SimTime {
        match self {
            Event::Lure { at, .. }
            | Event::OrganicLogin { at, .. }
            | Event::CrewShift { at, .. }
            | Event::ClaimSweep { at }
            | Event::DecoySubmission { at, .. } => *at,
        }
    }
}

impl Ecosystem {
    /// Build the world (population day 0 content is backdated).
    pub fn build(config: ScenarioConfig) -> Self {
        let geo = GeoDb::new();
        let domains = DomainModel::standard();
        let mut phones = PhonePlan::new();
        let mut provider = MailProvider::for_shard(config.shard);
        let mut credentials = CredentialStore::new();
        let mut options = RecoveryOptions::new();
        let mut twofactor = TwoFactorState::new();
        let mut rng_pop = SimRng::shard_stream(config.seed, config.shard, "population");
        let population = PopulationBuilder {
            provider: &mut provider,
            credentials: &mut credentials,
            options: &mut options,
            twofactor: &mut twofactor,
            phones: &mut phones,
            geo: &geo,
            domains: &domains,
        }
        .build(&config.population, SimTime::EPOCH, &mut rng_pop);

        let engine = if config.defense.login_risk_analysis {
            RiskEngine::default()
        } else {
            RiskEngine::disabled()
        };
        let mut login = LoginPipeline::new(engine);
        for u in &population.users {
            login.register(u.account);
        }
        // Seed login histories so day-0 organic logins are not all
        // cold-start: replay 10 synthetic home logins per user.
        let mut login_log = LoginLog::for_shard(config.shard);
        for u in &population.users {
            // Invariant: the population generator only assigns home IPs
            // drawn from the geo plan.
            #[allow(clippy::expect_used)]
            let country = geo.locate(u.home_ip).expect("home IP is in plan");
            login.warm_up_standard(u.account, country, u.device);
            let _ = &mut login_log; // appended during the run only
        }

        let mut rng_crews = SimRng::shard_stream(config.seed, config.shard, "crews");
        let crews = CrewRoster::build(config.crews.clone(), config.era, &geo, &mut rng_crews);
        let crew_pages = vec![None; crews.crews.len()];
        let crew_hour_used = vec![(u64::MAX, 0); crews.crews.len()];

        let mut users = UserStates::default();
        for u in &population.users {
            users.push(credentials.password_for_capture(u.account));
        }

        Ecosystem {
            geo: Arc::new(geo),
            domains: Arc::new(domains),
            phones,
            provider,
            credentials,
            options,
            twofactor,
            population: Arc::new(population),
            crews,
            playbook: HijackPlaybook::default(),
            login,
            login_log,
            classifier: MailClassifier::default(),
            monitor: ActivityMonitor::default(),
            notifications: NotificationEngine::for_shard(config.shard),
            recovery: RecoveryService::new(),
            detection: DetectionPipeline::paper_calibrated(),
            referrers: ReferrerModel::paper_calibrated(),
            pages: Vec::new(),
            takedowns: Vec::new(),
            incidents: Vec::new(),
            sessions: Vec::new(),
            disabled: HashSet::new(),
            stats: RunStats::default(),
            obs: Registry::new()
                .with_gauge(M_DROPBOX_PENDING)
                .with_counter(M_DROPBOX_LOST)
                .with_counter(M_INCIDENTS),
            decoy_accounts: HashSet::new(),
            users,
            pending_decoys: Vec::new(),
            pending_external_lures: Vec::new(),
            market_outbox: Vec::new(),
            pending_pickups: Vec::new(),
            lure_index: DenseMap::new(),
            crew_pages,
            crew_hour_used,
            log_cursor: 0,
            now: SimTime::EPOCH,
            next_campaign: 0,
            rng_world: SimRng::shard_stream(config.seed, config.shard, "world"),
            rng_organic: SimRng::shard_stream(config.seed, config.shard, "organic"),
            rng_crew: SimRng::shard_stream(config.seed, config.shard, "crew"),
            rng_campaign: SimRng::shard_stream(config.seed, config.shard, "campaign"),
            rng_recovery: SimRng::shard_stream(config.seed, config.shard, "recovery"),
            rng_market: SimRng::shard_stream(config.seed, config.shard, "market"),
            config,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Phishing pages stood up by crews so far (Dataset 2's raw feed).
    pub fn pages(&self) -> &[PhishingPage] {
        &self.pages
    }

    /// Takedown records for detected phishing pages.
    pub fn takedowns(&self) -> &[TakedownRecord] {
        &self.takedowns
    }

    /// All hijacking incidents, including decoy-account incidents.
    /// [`Ecosystem::real_incidents`] filters to the organic population.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Hijack-session reports, indexed by [`Incident::session`].
    pub fn sessions(&self) -> &[SessionReport] {
        &self.sessions
    }

    /// Register an extra (decoy) account that is not part of the organic
    /// population. Returns its id.
    pub fn add_decoy_account(&mut self, local: &str) -> AccountId {
        let address = EmailAddress::new(local, self.domains.home.name.clone());
        let account = self.provider.create_account(address);
        self.credentials
            .register(account, &format!("decoy-pw-{}", account.index()));
        self.options.register(account);
        self.twofactor.register(account);
        self.login.register(account);
        self.decoy_accounts.insert(account);
        account
    }

    /// Deliver a captured credential into a crew's dropbox (used by the
    /// lure-click path and the decoy experiment). If the crew is at its
    /// desks with hourly budget left, an operator picks the head of the
    /// queue up within minutes — the fast quantile of Figure 7.
    pub fn capture_credential(&mut self, crew: CrewId, credential: CapturedCredential) -> bool {
        // Professional crews trade a share of their fresh captures on
        // the credential market (§5's specialized underground roles).
        // `market_share` defaults to 0, so unsharded runs never draw
        // from `rng_market` and stay bit-identical to earlier builds.
        if self.rng_market.chance(self.config.market_share) {
            self.market_outbox.push((crew, credential));
            return true;
        }
        let at = credential.captured_at;
        let delivered = self.crews.crews[crew.index()].dropbox.deliver(credential);
        if !delivered {
            return false;
        }
        self.stats.credentials_captured += 1;
        let idx = crew.index();
        if self.crews.crews[idx].is_working(at) && self.hour_budget_left(idx, at) {
            if let Some(next) = self.crews.crews[idx].dropbox.pop() {
                self.note_hour_use(idx, at);
                // Operator reaction time: minutes, occasionally longer
                // when busy (log-normal, median ≈ 35 min). The session
                // itself runs after the current event finishes (no
                // re-entrancy into in-flight organic activity).
                let delay = self
                    .rng_crew
                    .lognormal((25.0 * 60.0f64).ln(), 1.0)
                    .clamp(120.0, 3.0 * 3600.0) as u64;
                let start = at.plus(SimDuration::from_secs(delay));
                self.pending_pickups.push((idx, next, start));
            }
        }
        true
    }

    fn hour_budget_left(&self, crew_index: usize, at: SimTime) -> bool {
        let hour = at.as_secs() / HOUR;
        let (h, used) = self.crew_hour_used[crew_index];
        h != hour || used < self.config.crew_creds_per_hour
    }

    fn note_hour_use(&mut self, crew_index: usize, at: SimTime) {
        let hour = at.as_secs() / HOUR;
        let entry = &mut self.crew_hour_used[crew_index];
        if entry.0 != hour {
            *entry = (hour, 1);
        } else {
            entry.1 += 1;
        }
    }

    /// Run the full scenario.
    pub fn run(&mut self) {
        for day in 0..self.config.days {
            self.run_day(day);
        }
    }

    /// Run one day.
    pub fn run_day(&mut self, day: u64) {
        let day_start = SimTime::from_secs(day * DAY);
        self.now = self.now.max(day_start);
        self.rotate_dropboxes(day_start);
        let mut events = self.schedule_day(day);
        events.sort_by_key(|e| e.at());
        for event in events {
            self.now = self.now.max(event.at());
            match event {
                Event::Lure { at, target, crew } => self.deliver_lure(at, target, crew),
                Event::OrganicLogin { at, user } => self.organic_session(at, user),
                Event::CrewShift { at, crew_index } => self.crew_shift(at, crew_index),
                Event::ClaimSweep { at } => self.claim_sweep(at),
                Event::DecoySubmission { at, account, crew } => {
                    self.submit_credential(account, crew, PageId(u32::MAX), at)
                }
            }
            // Prompt pickups triggered by this event (operators grabbing
            // freshly captured credentials off the dropbox).
            while let Some((idx, credential, start)) = self.pending_pickups.pop() {
                self.run_hijack_session(idx, &credential, start, true);
            }
        }
        // End-of-day queue depth: credentials captured but not yet picked
        // up by any operator (a simulated-time quantity, so it belongs in
        // the deterministic report).
        let depth: usize = self.crews.crews.iter().map(|c| c.dropbox.pending()).sum();
        self.obs.gauge_set(M_DROPBOX_PENDING, depth as u64);
    }

    /// Merge every subsystem registry (login log, mail provider, risk
    /// pipeline, behavioral monitor, notifications, detection, playbook,
    /// recovery, plus [`Ecosystem::obs`]) into one name-sorted snapshot.
    ///
    /// Every value is a pure function of the simulated events, so for a
    /// fixed `(seed, config)` the snapshot is identical no matter how
    /// the run was scheduled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merge_all([
            self.login_log.metrics().snapshot(),
            self.provider.metrics().snapshot(),
            self.login.metrics().snapshot(),
            self.monitor.metrics().snapshot(),
            self.notifications.metrics().snapshot(),
            self.detection.metrics().snapshot(),
            self.playbook.metrics().snapshot(),
            self.recovery.metrics().snapshot(),
            self.obs.snapshot(),
        ])
    }

    /// The deterministic end-of-run report for this (unsharded) world.
    /// Sharded runs build theirs via `ShardedRun::run_report`, which
    /// merges the per-shard snapshots instead.
    pub fn run_report(&self) -> RunReport {
        RunReport::new(
            self.config.seed,
            1,
            self.config.days as u32,
            self.config.population.n_users as u32,
            self.metrics_snapshot(),
        )
    }

    // ---- fork support ----

    /// Swap the active defense configuration mid-world. Most defenses
    /// (mail classifier, activity monitor, notifications) are read from
    /// `config.defense` per event, but the login risk engine is baked
    /// into the pipeline at build time, so flipping
    /// `login_risk_analysis` swaps the engine in place. Used by forked
    /// continuations diverging on defense config.
    pub fn set_defense(&mut self, defense: crate::config::DefenseConfig) {
        if defense.login_risk_analysis != self.config.defense.login_risk_analysis {
            *self.login.engine_mut() = if defense.login_risk_analysis {
                RiskEngine::default()
            } else {
                RiskEngine::disabled()
            };
        }
        self.config.defense = defense;
    }

    /// Swap the active recovery risk policy mid-world. Unlike the login
    /// risk engine, nothing recovery-side is baked at build time —
    /// claims are scored per filing against `config.recovery` — so the
    /// swap is a plain config write. Used by forked continuations
    /// diverging on recovery posture (the `sweep` grid's second axis).
    pub fn set_recovery(&mut self, recovery: crate::config::RecoveryConfig) {
        self.config.recovery = recovery;
    }

    /// Deterministically perturb every shard RNG stream from its
    /// current position mixed with `salt`. Used by forked continuations
    /// diverging on seed: the same `(snapshot, salt)` pair always
    /// produces the same divergent world, while distinct salts (or
    /// distinct fork points) produce unrelated draw sequences.
    pub(crate) fn perturb_rngs(&mut self, salt: u64) {
        let streams = [
            &mut self.rng_world,
            &mut self.rng_organic,
            &mut self.rng_crew,
            &mut self.rng_campaign,
            &mut self.rng_recovery,
            &mut self.rng_market,
        ];
        for (i, rng) in streams.into_iter().enumerate() {
            rng.perturb(salt ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
    }

    // ---- checkpoint support ----

    /// Raw positions of every shard RNG stream, in canonical order
    /// (world, organic, crew, campaign, recovery, market). The
    /// engine's checkpoint layer records these at day barriers and, on
    /// resume, proves the replayed streams sit at exactly the recorded
    /// positions.
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        vec![
            self.rng_world.state(),
            self.rng_organic.state(),
            self.rng_crew.state(),
            self.rng_campaign.state(),
            self.rng_recovery.state(),
            self.rng_market.state(),
        ]
    }

    /// Lengths of the three event-log segments (logins, mail events,
    /// notifications) — the checkpointed "how far has this shard
    /// logged" coordinates.
    pub fn log_lens(&self) -> [u64; 3] {
        [
            self.login_log.len() as u64,
            self.provider.log_store().len() as u64,
            self.notifications.log_store().len() as u64,
        ]
    }

    /// FNV-1a digest over this shard's barrier state: the event-log
    /// extents and boundary keys, the aggregate counters, every report
    /// store's extent and latest entry, the pending cross-shard queues,
    /// the clock and the RNG stream positions.
    ///
    /// This is a verification digest, not a serialization: any
    /// behavioral divergence during a resume replay moves at least one
    /// RNG stream (and almost always several logs), so comparing this
    /// digest against the checkpointed one catches a changed binary,
    /// config drift or bit rot before the engine continues the run.
    pub fn state_digest(&self) -> u64 {
        use mhw_types::fnv::{fnv1a, OFFSET as FNV_OFFSET};
        let mut h = FNV_OFFSET;
        let mut line = String::new();
        macro_rules! mix {
            ($($arg:tt)*) => {{
                line.clear();
                let _ = write!(line, $($arg)*);
                h = fnv1a(h, line.as_bytes());
            }};
        }
        mix!("lens{:?}", self.log_lens());
        mix!("login-edge{:?}{:?}",
            self.login_log.store().first().map(|e| e.key),
            self.login_log.store().last().map(|e| e.key));
        mix!("mail-edge{:?}", self.provider.log_store().last().map(|e| e.key));
        mix!("notif-edge{:?}", self.notifications.log_store().last().map(|e| e.key));
        mix!("stats{:?}", self.stats);
        mix!("pages{}|takedowns{}", self.pages.len(), self.takedowns.len());
        mix!("incidents{}|{:?}", self.incidents.len(), self.incidents.last());
        mix!("sessions{}|{:?}", self.sessions.len(), self.sessions.last());
        mix!("disabled{}", self.disabled.len());
        mix!("ext-lures{:?}", self.pending_external_lures);
        mix!("market-outbox{:?}", self.market_outbox);
        mix!("decoys{:?}", self.pending_decoys);
        mix!("now{:?}|campaign{}", self.now, self.next_campaign);
        for state in self.rng_states() {
            mix!("rng{state:?}");
        }
        h
    }

    // ---- scheduling ----

    fn schedule_day(&mut self, day: u64) -> Vec<Event> {
        let day_start = SimTime::from_secs(day * DAY);
        let mut events = Vec::new();

        // Organic logins, diurnal per user timezone.
        for u in &self.population.users {
            self.users.travelling_today[u.account.index()] =
                self.rng_organic.chance(u.travel_propensity);
            let n = self.rng_organic.poisson(u.logins_per_day);
            for _ in 0..n {
                // Local waking hours 7..23.
                let local_hour = 7 + self.rng_organic.below(16);
                let utc_hour =
                    (local_hour as i64 - u.country.utc_offset_hours() as i64).rem_euclid(24) as u64;
                let at = day_start
                    .plus(SimDuration::from_secs(utc_hour * HOUR + self.rng_organic.below(HOUR)));
                events.push(Event::OrganicLogin { at, user: u.account });
            }
        }

        // Lure blasts.
        let n_users = self.population.users.len();
        let expected = self.config.lures_per_user_day * n_users as f64;
        let n_lures = self.rng_campaign.poisson(expected);
        for _ in 0..n_lures {
            let target =
                self.population.users[self.rng_campaign.below(n_users as u64) as usize].account;
            let crew_idx = self.crews.sample_crew(&mut self.rng_campaign);
            let at = day_start.plus(SimDuration::from_secs(self.rng_campaign.below(DAY)));
            events.push(Event::Lure { at, target, crew: CrewId::from_index(crew_idx) });
        }

        // Crew shifts: one per working hour per crew.
        for (i, crew) in self.crews.crews.iter().enumerate() {
            for h in 0..24u64 {
                let at = day_start.plus(SimDuration::from_secs(h * HOUR));
                if crew.is_working(at) {
                    events.push(Event::CrewShift { at, crew_index: i });
                }
            }
        }

        // Claim sweeps every 20 minutes (victims file as soon as they
        // are aware; coarse sweeps would quantize Figure 9's fast tail).
        for h in 0..24u64 {
            for m in [10u64, 30, 50] {
                events.push(Event::ClaimSweep {
                    at: day_start.plus(SimDuration::from_secs(h * HOUR + m * 60)),
                });
            }
        }

        // Decoy submissions due today.
        let day_end = day_start.plus(SimDuration::from_days(1));
        let mut remaining = Vec::new();
        for (at, account, crew) in self.pending_decoys.drain(..) {
            if at < day_end {
                events.push(Event::DecoySubmission { at: at.max(day_start), account, crew });
            } else {
                remaining.push((at, account, crew));
            }
        }
        self.pending_decoys = remaining;

        // Cross-shard contact-graph lures due today (queued at a day
        // barrier by the sharded engine; empty in unsharded runs).
        let mut later = Vec::new();
        for (at, target, crew) in self.pending_external_lures.drain(..) {
            if at < day_end {
                events.push(Event::Lure { at: at.max(day_start), target, crew });
            } else {
                later.push((at, target, crew));
            }
        }
        self.pending_external_lures = later;
        events
    }

    // ---- cross-shard exchange (driven by the sharded engine at day
    // ---- barriers; every method is deterministic in shard-local state)

    /// Queue a lure delivered from another shard's hijacked contact.
    /// It fires on the day containing `at`.
    pub fn queue_external_lure(&mut self, at: SimTime, target: AccountId, crew: CrewId) {
        self.pending_external_lures.push((at, target, crew));
    }

    /// Take the credentials this shard's crews put up for sale since
    /// the last barrier, in capture order.
    pub fn drain_market_outbox(&mut self) -> Vec<(CrewId, CapturedCredential)> {
        std::mem::take(&mut self.market_outbox)
    }

    /// Deliver a market-bought credential into `crew`'s dropbox. Unlike
    /// [`Ecosystem::capture_credential`] there is no prompt operator
    /// pickup — purchases wait for the next crew shift — and no re-sale.
    pub fn import_market_credential(&mut self, crew: CrewId, credential: CapturedCredential) -> bool {
        let delivered = self.crews.crews[crew.index()].dropbox.deliver(credential);
        if delivered {
            self.stats.credentials_captured += 1;
        }
        delivered
    }

    /// Schedule a decoy-credential submission (the §5.1 honeypot
    /// experiment): at time `at` the defender "types" the decoy's valid
    /// credentials into a phishing page belonging to `crew`.
    pub fn schedule_decoy_submission(&mut self, at: SimTime, account: AccountId, crew: CrewId) {
        assert!(
            self.decoy_accounts.contains(&account),
            "decoy submissions need a registered decoy account"
        );
        self.pending_decoys.push((at, account, crew));
    }

    fn rotate_dropboxes(&mut self, day_start: SimTime) {
        for crew in &mut self.crews.crews {
            if !crew.dropbox.is_active(day_start) {
                // The crew stands up a fresh dropbox overnight. Anything
                // still queued in the torn-down one never reaches an
                // operator — account for it before the count resets.
                self.obs
                    .add(M_DROPBOX_LOST, (crew.dropbox.lost() + crew.dropbox.pending()) as u64);
                crew.dropbox = Dropbox::new(crew.id);
            } else if self.rng_campaign.chance(self.config.dropbox_suspension_per_day) {
                crew.dropbox.suspend(day_start.plus(SimDuration::from_secs(
                    self.rng_campaign.below(DAY),
                )));
            }
        }
    }

    // ---- lures ----

    /// Ensure crew `idx` has a live phishing page; returns its index.
    fn ensure_crew_page(&mut self, idx: usize, at: SimTime) -> usize {
        if let Some(p) = self.crew_pages[idx] {
            if self.pages[p].is_live(at) {
                return p;
            }
        }
        let id = PageId(self.pages.len() as u32);
        let campaign = CampaignId(self.next_campaign);
        self.next_campaign += 1;
        let mut page = PhishingPage::new(
            id,
            campaign,
            mhw_types::AccountCategory::Mail,
            PageQuality::sample(&mut self.rng_campaign),
            at,
        );
        let takedown = self.detection.process(&mut page, &mut self.rng_campaign);
        self.takedowns.push(takedown);
        self.pages.push(page);
        let index = self.pages.len() - 1;
        self.crew_pages[idx] = Some(index);
        index
    }

    fn deliver_lure(&mut self, at: SimTime, target: AccountId, crew: CrewId) {
        let link = self.rng_campaign.chance(0.62); // §4.1 structure mix
        let source = if link {
            let page = self.ensure_crew_page(crew.index(), at);
            LureSource::Page(page, crew)
        } else {
            LureSource::Direct(crew)
        };
        let structure = if link {
            mhw_phishkit::targets::LureStructure::LinkToPage
        } else {
            mhw_phishkit::targets::LureStructure::ReplyWithCredentials
        };
        // Phishers A/B-test wording; a minority of lures use evasive
        // phrasing that slips past the content classifier (no filter is
        // perfect — §8.1's false-negative side).
        let evasive = self.rng_campaign.chance(0.25);
        let (subject, body) = if evasive {
            match structure {
                mhw_phishkit::targets::LureStructure::LinkToPage => (
                    "Important notice about your mailbox".to_string(),
                    "Due to a system migration, your mailbox access will be \
                     interrupted. Kindly re-validate your access at \
                     http://mail-migration.example/start to avoid any \
                     inconvenience."
                        .to_string(),
                ),
                mhw_phishkit::targets::LureStructure::ReplyWithCredentials => (
                    "Mailbox re-validation".to_string(),
                    "Due to a system migration, kindly send back your mailbox \
                     sign-in details so our team can migrate your data without \
                     interruption."
                        .to_string(),
                ),
            }
        } else {
            mhw_phishkit::targets::lure_text(mhw_types::AccountCategory::Mail, structure)
        };
        let draft = MessageDraft {
            to: vec![self.provider.address_of(target).clone()],
            subject,
            body,
            attachments: Vec::new(),
            kind: MessageKind::PhishingLure,
            reply_to: None,
        };
        let from = EmailAddress::new(
            format!("security-team{}", self.rng_campaign.below(50)),
            "account-alerts.net",
        );
        let classifier_enabled = self.config.defense.mail_classifier;
        let classifier = &self.classifier;
        let id = self.provider.deliver_external(target, from, &draft, at, |m| {
            classifier_enabled && classifier.should_spam_folder(m)
        });
        self.stats.lures_delivered += 1;
        if self.provider.mailbox(target).folder_of(id) == Some(Folder::Spam) {
            self.stats.lures_spam_foldered += 1;
        }
        self.lure_index.insert(id.index() as u32, source);
        self.drain_monitor_top();
    }

    fn drain_monitor_top(&mut self) {
        if !self.config.defense.activity_monitor {
            self.log_cursor = self.provider.log().len();
            return;
        }
        let log = self.provider.log();
        let mut flagged = Vec::new();
        for event in log.iter_from(self.log_cursor) {
            let v = self.monitor.observe(&event);
            if v.flagged && !self.disabled.contains(&event.account) {
                flagged.push((event.account, event.at));
            }
        }
        self.log_cursor = log.len();
        for (account, at) in flagged {
            self.disabled.insert(account);
            if self.config.defense.notifications {
                self.notifications.notify(
                    account,
                    mhw_defense::NotificationEvent::UnusualActivity,
                    &self.options,
                    at,
                    &mut self.rng_world,
                );
            }
            // Anti-abuse disable interrupts any ongoing incident.
            if let Some(idx) = self.users.active_incident(account.index()) {
                let inc = &mut self.incidents[idx];
                if inc.disabled_at.is_none() {
                    inc.disabled_at = Some(at);
                }
            }
        }
    }

    // ---- organic activity ----

    fn owner_capabilities(&self, account: AccountId) -> AnswererCapabilities {
        let opts = self.options.get(account);
        let phone_ok = opts.phone.as_ref().map(|p| p.up_to_date).unwrap_or(false);
        let recall = opts.question.as_ref().map(|q| q.owner_recall).unwrap_or(0.75);
        // The owner controls the enrolled second factor unless a crew
        // swapped the enrolled phone (the 2FA-lockout tactic).
        let controls_2fa = self
            .twofactor
            .audit(account)
            .last()
            .map(|e| !e.actor.is_hijacker())
            .unwrap_or(true);
        AnswererCapabilities::owner(phone_ok, recall).with_second_factor(controls_2fa)
    }

    fn organic_session(&mut self, at: SimTime, account: AccountId) {
        // Skip decoys (they have no owner).
        if self.decoy_accounts.contains(&account) {
            return;
        }
        if self.disabled.contains(&account) {
            // The provider disabled the account; the owner finds out now.
            self.mark_aware(account, at);
            return;
        }
        let idx = account.index();
        // Copy out the profile scalars the session needs instead of
        // cloning the whole profile (address and friends) per login.
        let vitals = UserVitals::of(&self.population.users[idx]);
        let travelling = self.users.travelling_today[idx];
        let (ip, _) =
            self.population.users[idx].login_origin(&self.geo, &mut self.rng_organic, travelling);
        let password = self.users.password(idx).to_string();
        let request = LoginRequest {
            at,
            account,
            ip,
            device: vitals.device,
            password,
            actor: Actor::Owner,
            capabilities: self.owner_capabilities(account),
        };
        let ctx = LoginContext {
            credentials: &self.credentials,
            options: &self.options,
            twofactor: &self.twofactor,
            geo: &self.geo,
        };
        let outcome =
            self.login
                .attempt(&request, &ctx, &mut self.login_log, &mut self.rng_organic);
        self.stats.organic_logins += 1;
        if let Some(record) = self.login_log.store().last() {
            if record.challenge.is_some() {
                self.stats.organic_challenges += 1;
                if !record.outcome.is_success() {
                    self.stats.organic_challenge_failures += 1;
                }
            }
        }
        match outcome {
            LoginOutcome::WrongPassword => {
                // If a hijacker rotated the password, the owner now knows.
                if self
                    .users
                    .active_incident(idx)
                    .map(|i| {
                        self.credentials
                            .hijacker_changed_since(account, self.incidents[i].hijack_start)
                    })
                    .unwrap_or(false)
                {
                    self.mark_aware(account, at);
                }
            }
            LoginOutcome::Success => self.organic_mail_activity(at, account, vitals),
            LoginOutcome::SecondFactorFailed => {
                // A second factor the owner does not control means a
                // crew swapped it: the lockout is unmistakable.
                if self.users.active_incident(idx).is_some() {
                    self.mark_aware(account, at);
                }
            }
            LoginOutcome::ChallengeFailed | LoginOutcome::Blocked => {}
        }
    }

    fn organic_mail_activity(&mut self, at: SimTime, account: AccountId, user: UserVitals) {
        let mut t = at.plus(SimDuration::from_secs(30));
        // Read a few unread inbox messages; react to abuse.
        let inbox = self.provider.mailbox(account).list_folder(Folder::Inbox);
        let unread: Vec<MessageId> = inbox
            .iter()
            .rev()
            .filter(|id| {
                self.provider
                    .mailbox(account)
                    .get(**id)
                    .map(|m| !m.read)
                    .unwrap_or(false)
            })
            .take(12)
            .copied()
            .collect();
        for id in unread {
            // The message can vanish mid-session (a hijack session for a
            // *different* captured credential may purge mail between
            // events); skip silently like a real UI would.
            let Some((kind, from)) = self
                .provider
                .mailbox(account)
                .get(id)
                .map(|m| (m.kind, m.from.clone()))
            else {
                continue;
            };
            self.provider.read_message(account, Actor::Owner, id, t);
            t += SimDuration::from_secs(20 + self.rng_organic.below(60));
            if kind.is_abusive() && self.rng_organic.chance(user.report_propensity) {
                self.provider.report_spam(account, id, t);
                continue;
            }
            if kind == MessageKind::PhishingLure {
                if self.provider.resolve(&from).is_some() {
                    self.stats.contact_lures_read += 1;
                }
                self.maybe_fall_for_lure(t, account, user, id, &from);
            }
        }
        // Personal mail to contacts.
        let sends = self
            .rng_organic
            .poisson(user.sends_per_day / user.logins_per_day.max(0.2));
        for _ in 0..sends.min(6) {
            let contacts = self.population.graph.sample_contacts(account, 2, &mut self.rng_organic);
            if contacts.is_empty() {
                break;
            }
            let to: Vec<EmailAddress> = contacts
                .iter()
                .map(|c| self.provider.address_of(*c).clone())
                .collect();
            let draft = MessageDraft::personal(to, "catching up", "hey, quick note — let's talk soon");
            self.send_as(account, Actor::Owner, draft, t);
            t += SimDuration::from_secs(60 + self.rng_organic.below(120));
        }
        // Occasional own-mailbox search (FP material for the monitor).
        if self
            .rng_organic
            .chance(user.searches_per_day / user.logins_per_day.max(0.2))
        {
            let queries = [
                "meeting notes",
                "flight confirmation",
                "photos",
                "bank statement",
                "invoice",
                "recipe",
            ];
            let q = queries[self.rng_organic.below(queries.len() as u64) as usize];
            self.provider.search_mailbox(account, Actor::Owner, q, t);
        }
        self.drain_monitor_top();
    }

    fn send_as(&mut self, from: AccountId, actor: Actor, draft: MessageDraft, at: SimTime) {
        let classifier_enabled = self.config.defense.mail_classifier;
        let classifier = &self.classifier;
        let leniency = self.config.contact_leniency;
        let graph = &self.population.graph;
        let rng = &mut self.rng_world;
        self.provider.send(from, actor, draft, at, |m| {
            if !classifier_enabled || !classifier.should_spam_folder(m) {
                return false;
            }
            let recipient = m.owner;
            if recipient.index() < graph.len() && graph.contacts_of(recipient).contains(&from) {
                // Contact-origin leniency (§5.3).
                if rng.chance(leniency) {
                    return false;
                }
            }
            true
        });
    }

    fn maybe_fall_for_lure(
        &mut self,
        at: SimTime,
        account: AccountId,
        user: UserVitals,
        message: MessageId,
        from: &EmailAddress,
    ) {
        let Some(mut source) = self.lure_index.get(message.index() as u32).copied() else {
            return; // a hijacker-forwarded copy or seeded mail
        };
        // A share of contact-phished credentials gets sold on rather
        // than exploited by the phishing crew itself (§5.5 notes shared
        // resources; credential markets spread the spoils).
        if let LureSource::Direct(_) = source {
            if self.rng_organic.chance(0.3) {
                let resold = self.crews.sample_crew(&mut self.rng_organic);
                source = LureSource::Direct(CrewId::from_index(resold));
            }
        }
        // Trust boost when the lure came from a contact's (hijacked)
        // account — §5.3's rationale for contact phishing.
        let from_contact = self
            .provider
            .resolve(from)
            .map(|sender| {
                sender.index() < self.population.graph.len()
                    && self.population.graph.contacts_of(account).contains(&sender)
            })
            .unwrap_or(false);
        let trust = if from_contact { 1.8 } else { 1.0 };
        match source {
            LureSource::Page(page_idx, crew) => {
                let click = (user.gullibility * 0.9 * trust).clamp(0.0, 0.9);
                if !self.rng_organic.chance(click) {
                    return;
                }
                // Page may already be down.
                let live = self.pages[page_idx].is_live(at);
                let referrer = self.referrers.sample_referrer(&mut self.rng_organic);
                if !live {
                    return;
                }
                self.pages[page_idx].record_get(at, referrer);
                let submit = (self.pages[page_idx].quality.base_conversion()
                    * user.gullibility
                    * 4.5
                    * trust)
                    .clamp(0.0, 0.9);
                if self.rng_organic.chance(submit) {
                    self.pages[page_idx]
                        .record_post(at, referrer, self.provider.address_of(account).clone());
                    self.submit_credential(account, crew, source_page_id(&self.pages[page_idx]), at);
                }
            }
            LureSource::Direct(crew) => {
                let reply = (user.gullibility * 0.42 * trust).clamp(0.0, 0.8);
                if self.rng_organic.chance(reply) {
                    if from_contact {
                        self.stats.contact_lure_captures += 1;
                    }
                    self.submit_credential(account, crew, PageId(u32::MAX), at);
                }
            }
        }
    }

    /// Victim typo model + dropbox delivery.
    fn submit_credential(&mut self, account: AccountId, crew: CrewId, page: PageId, at: SimTime) {
        let real = self.credentials.password_for_capture(account).to_string();
        // Exactness mix calibrated so crews end up presenting a correct
        // password (incl. variant retries) ~75% of the time (§5.1).
        let (typed, exactness) = {
            let r = self.rng_organic.f64();
            if r < 0.64 {
                (real.clone(), CredentialExactness::Exact)
            } else if r < 0.77 {
                // A trivial variant: case slip on the first character.
                let mut v: Vec<char> = real.chars().collect();
                if let Some(c) = v.first_mut() {
                    *c = c.to_ascii_uppercase();
                }
                (v.into_iter().collect(), CredentialExactness::TrivialVariant)
            } else {
                (format!("{real}-oops-wrong"), CredentialExactness::Wrong)
            }
        };
        let is_decoy = self.decoy_accounts.contains(&account);
        let victim_country = (!is_decoy && account.index() < self.population.users.len())
            .then(|| self.population.users[account.index()].country);
        let credential = CapturedCredential {
            address: self.provider.address_of(account).clone(),
            password_typed: typed,
            exactness,
            page,
            captured_at: at,
            victim_country,
            is_decoy,
        };
        self.capture_credential(crew, credential);
    }

    // ---- crew shifts ----

    fn crew_shift(&mut self, at: SimTime, crew_index: usize) {
        // The shift covers [at, at + 1h): operators pick queued
        // credentials up within minutes of arrival while at their desks
        // (Figure 7's fast quantile), bounded by the hourly budget.
        let budget = self.config.crew_creds_per_hour;
        let hour_end = at.plus(SimDuration::from_secs(HOUR));
        for k in 0..budget {
            if !self.hour_budget_left(crew_index, at) {
                break;
            }
            let Some(credential) = ({
                let crew = &mut self.crews.crews[crew_index];
                match crew.dropbox.peek() {
                    Some(c) if c.captured_at < hour_end => crew.dropbox.pop(),
                    _ => None,
                }
            }) else {
                break;
            };
            self.note_hour_use(crew_index, at);
            let queue_slot = at.plus(SimDuration::from_secs(k * (HOUR / budget.max(1))));
            let pickup = credential
                .captured_at
                .plus(SimDuration::from_secs(240 + self.rng_crew.below(900)));
            let start = queue_slot.max(pickup);
            self.run_hijack_session(crew_index, &credential, start, true);
        }
    }

    fn run_hijack_session(
        &mut self,
        crew_index: usize,
        credential: &CapturedCredential,
        start: SimTime,
        allow_pivot: bool,
    ) {
        let mut lure_sink: Vec<(MessageId, CrewId)> = Vec::new();
        let report = {
            let Ecosystem {
                provider,
                credentials,
                options,
                twofactor,
                login,
                login_log,
                geo,
                population,
                classifier,
                monitor,
                notifications,
                disabled,
                log_cursor,
                rng_world,
                rng_crew,
                crews,
                playbook,
                phones,
                config,
                ..
            } = self;
            let mut adapter = WorldAdapter {
                provider,
                credentials,
                options,
                twofactor,
                login,
                login_log,
                geo,
                population,
                classifier,
                classifier_enabled: config.defense.mail_classifier,
                contact_leniency: config.contact_leniency,
                monitor: config.defense.activity_monitor.then_some(monitor),
                notifications: Some(notifications),
                notifications_enabled: config.defense.notifications,
                disabled,
                log_cursor,
                lure_sink: &mut lure_sink,
                rng: rng_world,
            };
            playbook.run_session(
                &mut crews.crews[crew_index],
                credential,
                &mut adapter,
                phones,
                start,
                rng_crew,
            )
        };
        for (id, crew) in lure_sink {
            self.lure_index.insert(id.index() as u32, LureSource::Direct(crew));
        }
        self.stats.sessions_run += 1;
        // A crew that typed a working password but was stopped by the
        // login challenge knows the credential is good — with the pivot
        // enabled it may try the "forgot password" route instead. The
        // config gate sits before any draw, and `allow_pivot` stops a
        // pivot-won session from pivoting again.
        let pivot_candidate = allow_pivot
            && self.config.recovery.adversary_pivot
            && report.password_eventually_correct
            && !report.logged_in
            && !report.was_decoy;
        let ended_at = report.ended_at;
        self.register_session(report);
        if pivot_candidate {
            self.attempt_recovery_pivot(crew_index, credential, ended_at);
        }
    }

    /// The recovery-pivot attack: a crew stopped at the login challenge
    /// files a recovery claim for the account, backed by whatever
    /// personal data its research turned up. On takeover the crew
    /// re-enters through the ordinary session machinery, so incidents,
    /// victim awareness and (owner) recovery all follow as usual.
    fn attempt_recovery_pivot(
        &mut self,
        crew_index: usize,
        credential: &CapturedCredential,
        after: SimTime,
    ) {
        let Some(account) = self.provider.resolve(&credential.address) else {
            return;
        };
        if self.disabled.contains(&account) {
            return;
        }
        let Some(plan) =
            mhw_adversary::plan_pivot(&self.crews.crews[crew_index], &mut self.rng_crew)
        else {
            return;
        };
        self.stats.pivot_attempts += 1;
        let (exit, device, crew_id) = {
            let crew = &self.crews.crews[crew_index];
            (crew.current_exit(), crew.device, crew.id)
        };
        let country = self.geo.locate(exit);
        // Research and form-filling take a little while.
        let filed_at = after.plus(SimDuration::from_secs(300 + self.rng_crew.below(1800)));
        let assessment = if self.config.recovery.claim_risk_scoring {
            let svc = RecoveryRiskService::new(self.config.recovery.posture);
            let signals = svc.extract(
                self.login.service.history(account),
                filed_at,
                country,
                device,
                1,
                self.options.get(account),
            );
            svc.assess(&signals)
        } else {
            // Unscored worlds wave every claim through — the pivot then
            // measures the raw channel weakness.
            ClaimAssessment { score: 0.0, verdict: RecoveryVerdict::Allow, step_up_pass: 1.0 }
        };
        let mut takeover_p =
            hijacker_takeover_probability(self.options.get(account), plan.research_quality);
        if assessment.verdict == RecoveryVerdict::StepUp {
            // The step-up challenge (out-of-band proof) is much harder
            // for an attacker than the knowledge test.
            takeover_p *= 0.35;
        }
        let resolution = self.recovery.process_hijacker_claim(
            account,
            after,
            filed_at,
            assessment,
            takeover_p,
            Actor::Hijacker(crew_id),
            &mut self.credentials,
            &mut self.rng_recovery,
        );
        if resolution.password_reset {
            self.stats.pivot_takeovers += 1;
            let resolved_at = resolution.claim.resolved_at.unwrap_or(filed_at);
            let fresh = CapturedCredential {
                address: credential.address.clone(),
                password_typed: self.credentials.password_for_capture(account).to_string(),
                exactness: CredentialExactness::Exact,
                page: credential.page,
                captured_at: resolved_at,
                victim_country: credential.victim_country,
                is_decoy: credential.is_decoy,
            };
            let start = resolved_at.plus(SimDuration::from_secs(120 + self.rng_crew.below(600)));
            self.run_hijack_session(crew_index, &fresh, start, false);
        }
    }

    /// Record a finished session: incident bookkeeping and victim
    /// awareness scheduling.
    fn register_session(&mut self, report: SessionReport) {
        let session_index = self.sessions.len();
        let logged_in = report.logged_in;
        let account = report.account;
        self.sessions.push(report);
        let Some(account) = account else {
            return;
        };
        if !logged_in {
            return;
        }
        let report = &self.sessions[session_index];
        self.stats.incidents += 1;
        if report.exploited {
            self.stats.exploited += 1;
        }
        let id = IncidentId(self.incidents.len() as u32);
        let disabled_at = self
            .disabled
            .contains(&account)
            .then_some(report.ended_at);
        let incident = Incident {
            id,
            account,
            crew: report.crew,
            hijack_start: report.started_at,
            session: session_index,
            disabled_at,
            // The provider's risk systems mark the anomalous login; the
            // Figure 9 clock starts here (§6.2: "the time our risk
            // analysis system flagged the account as hijacked").
            flagged_at: Some(disabled_at.unwrap_or(report.started_at)),
            recovered_at: None,
            remission: None,
            is_decoy: report.was_decoy,
        };
        let incident_index = self.incidents.len();
        self.obs.inc(M_INCIDENTS);
        self.incidents.push(incident);
        if account.index() < self.users.len() {
            self.users.active_incident[account.index()] = incident_index as u32;
            self.schedule_awareness(incident_index);
        }
    }

    fn schedule_awareness(&mut self, incident_index: usize) {
        let (account, started, ended, scam_count, locked_out) = {
            let inc = &self.incidents[incident_index];
            let report = &self.sessions[inc.session];
            (
                inc.account,
                inc.hijack_start,
                report.ended_at,
                report.messages_sent,
                report.retention.password_changed,
            )
        };
        let mut candidates: Vec<SimTime> = Vec::new();
        // Notifications reach the victim out of band.
        if let Some(n) = self.notifications.first_delivered_after(account, started) {
            let reaction = self
                .rng_recovery
                .lognormal((0.6 * 3600.0f64).ln(), 1.3)
                .clamp(180.0, 48.0 * 3600.0) as u64;
            candidates.push(n.at.plus(SimDuration::from_secs(reaction)));
        }
        // Contacts who received a scam may warn the victim.
        if scam_count > 0 {
            let p = 1.0 - (-0.20 * scam_count as f64).exp();
            if self.rng_recovery.chance(p) {
                let delay = self
                    .rng_recovery
                    .lognormal((14.0 * 3600.0f64).ln(), 0.8)
                    .clamp(3600.0, 5.0 * 24.0 * 3600.0) as u64;
                candidates.push(ended.plus(SimDuration::from_secs(delay)));
            }
        }
        // Locked-out victims notice at their next login attempt — no
        // schedule needed (the organic path marks awareness); but a
        // rarely-active locked-out user eventually tries email and
        // fails: add a backstop at +3 days.
        if locked_out {
            candidates.push(ended.plus(SimDuration::from_days(2)));
        }
        if let Some(min) = candidates.into_iter().min() {
            let aware = &mut self.users.aware_at[account.index()];
            *aware = Some(aware.map_or(min, |a| a.min(min)));
        }
    }

    fn mark_aware(&mut self, account: AccountId, at: SimTime) {
        let idx = account.index();
        if idx >= self.users.len() {
            return;
        }
        if self.users.active_incident(idx).is_none() {
            return;
        }
        let aware = &mut self.users.aware_at[idx];
        *aware = Some(aware.map_or(at, |a| a.min(at)));
        if self.users.next_claim_at[idx].is_none() {
            // Filing takes a little while (finding the form, §6.1).
            let delay = 120 + self.rng_recovery.below(1200);
            self.users.next_claim_at[idx] = Some(at.plus(SimDuration::from_secs(delay)));
        }
    }

    // ---- recovery ----

    fn claim_sweep(&mut self, at: SimTime) {
        let due: Vec<AccountId> = self
            .population
            .users
            .iter()
            .map(|u| u.account)
            .filter(|a| {
                let i = a.index();
                if self.users.active_incident(i).is_none() || self.users.claim_attempts[i] >= 8 {
                    return false;
                }
                match (self.users.aware_at[i], self.users.next_claim_at[i]) {
                    (Some(aw), Some(next)) => aw <= at && next <= at,
                    (Some(aw), None) => aw <= at,
                    _ => false,
                }
            })
            .collect();
        for account in due {
            self.file_claim(account, at);
        }
    }

    // Invariants, not error handling: callers only schedule a claim for
    // users with an active incident, incidents are created flagged, and
    // a succeeded claim always carries its resolution time.
    #[allow(clippy::expect_used)]
    fn file_claim(&mut self, account: AccountId, at: SimTime) {
        let incident_index = self.users.active_incident(account.index()).expect("checked");
        let (hijacked_at, disabled_at, flagged_at, recovered) = {
            let inc = &self.incidents[incident_index];
            (
                inc.hijack_start,
                inc.disabled_at,
                inc.flagged_at.expect("set at incident creation"),
                inc.recovered_at.is_some(),
            )
        };
        if recovered {
            self.users.active_incident[account.index()] = NO_INCIDENT;
            return;
        }
        let trigger = if disabled_at.is_some() {
            ClaimTrigger::AccountDisabled
        } else if self.notifications.first_delivered_after(account, hijacked_at).is_some() {
            ClaimTrigger::Notification
        } else {
            ClaimTrigger::SelfNoticed
        };
        let _ = disabled_at;
        // A claim cannot enter the recovery pipeline before the
        // provider's risk systems flag the account — §6.2 starts the
        // Figure 9 latency clock at flagging, so a victim alerted
        // mid-session waits until the flag lands. Without this floor,
        // a notification-triggered claim filed before the recorded
        // flagging instant resolves "before" the flag, yielding
        // negative recovery latencies.
        let filed_at = at.max(flagged_at);
        let failed_methods = self.users.failed_methods(account.index()).to_vec();
        // Risk-score the claim when the scenario asks for it. The gate
        // sits before any draw (the `market_share` pattern), so worlds
        // with scoring off keep the legacy `rng_recovery` sequence
        // byte-for-byte.
        let assessment = if self.config.recovery.claim_risk_scoring {
            let user = &self.population.users[account.index()];
            // Locked-out victims often file from a borrowed machine;
            // the claim still originates from their home country.
            let device = if self.rng_recovery.chance(0.25) {
                mhw_types::DeviceId(0x4000_0000 | account.index() as u32)
            } else {
                user.device
            };
            let svc = RecoveryRiskService::new(self.config.recovery.posture);
            let signals = svc.extract(
                self.login.service.history(account),
                filed_at,
                Some(user.country),
                device,
                1, // the recovery portal does not share the login IP cache
                self.options.get(account),
            );
            Some(svc.assess(&signals))
        } else {
            None
        };
        let resolution = self.recovery.process_claim_assessed(
            account,
            hijacked_at,
            flagged_at,
            trigger,
            filed_at,
            &self.options,
            &mut self.credentials,
            &failed_methods,
            assessment,
            &mut self.rng_recovery,
        );
        match assessment.map(|a| a.verdict) {
            Some(RecoveryVerdict::StepUp) => self.stats.recovery_step_ups += 1,
            Some(RecoveryVerdict::Deny) => self.stats.recovery_lockouts += 1,
            _ => {}
        }
        self.users.claim_attempts[account.index()] += 1;
        if resolution.claim.succeeded {
            let resolved_at = resolution.claim.resolved_at.expect("resolved");
            let mut remission = run_remission(
                account,
                hijacked_at,
                resolved_at,
                &mut self.provider,
                &mut self.options,
                &mut self.twofactor,
            );
            // §5.4's recovery checklist: review any surviving redirect
            // settings against doppelganger heuristics (this is the
            // provider-visible path — no ground-truth actor labels).
            let owner_addr = self.provider.address_of(account).clone();
            let flagged: Vec<_> =
                mhw_defense::review_filters(&owner_addr, self.provider.filters(account))
                    .into_iter()
                    .filter(|(_, v)| v.needs_review())
                    .map(|(id, _)| id)
                    .collect();
            for id in flagged {
                self.provider.remove_filter(account, Actor::System, id, resolved_at);
                remission.filters_removed += 1;
            }
            if let Some(reply_to) = self.provider.reply_to(account).cloned() {
                if mhw_defense::classify_redirect(&owner_addr, &reply_to).needs_review() {
                    self.provider.set_reply_to(account, Actor::System, None, resolved_at);
                    remission.reply_to_reverted = true;
                }
            }
            let inc = &mut self.incidents[incident_index];
            inc.recovered_at = Some(resolved_at);
            inc.remission = Some(remission);
            self.stats.recovered += 1;
            self.users.clear_incident(account.index());
            self.users
                .set_password(account.index(), self.credentials.password_for_capture(account));
            self.disabled.remove(&account);
            // Monitoring state should not immediately re-flag the owner.
        } else {
            if let Some(m) = resolution.claim.method {
                self.users.note_failed_method(account.index(), m);
            }
            // Users retry a failed claim later the same day or the next
            // morning (§6.3: multiple options are offered), switching to
            // a different channel.
            let delay = 6 * HOUR + self.rng_recovery.below(12 * HOUR);
            self.users.next_claim_at[account.index()] =
                Some(at.plus(SimDuration::from_secs(delay)));
        }
    }

    /// Run an automated-hijacking (botnet) campaign through the same
    /// defenses — the Figure 1 taxonomy baseline. The bot's logins and
    /// spam go through the identical pipeline crews face.
    pub fn run_bot_campaign(
        &mut self,
        bot: &mhw_adversary::automation::SpamBot,
        credentials: &[(EmailAddress, String)],
        start: SimTime,
    ) -> mhw_adversary::automation::BotCampaignReport {
        let Ecosystem {
            provider,
            credentials: cred_store,
            options,
            twofactor,
            login,
            login_log,
            geo,
            population,
            classifier,
            monitor,
            notifications,
            disabled,
            log_cursor,
            rng_world,
            rng_crew,
            config,
            ..
        } = self;
        let mut bot_lures = Vec::new();
        let mut adapter = WorldAdapter {
            provider,
            credentials: cred_store,
            options,
            twofactor,
            login,
            login_log,
            geo,
            population,
            classifier,
            classifier_enabled: config.defense.mail_classifier,
            contact_leniency: config.contact_leniency,
            monitor: config.defense.activity_monitor.then_some(monitor),
            notifications: Some(notifications),
            notifications_enabled: config.defense.notifications,
            disabled,
            log_cursor,
            lure_sink: &mut bot_lures,
            rng: rng_world,
        };
        bot.run_campaign(credentials, &mut adapter, start, rng_crew)
    }

    /// Incidents against real users (excluding decoy probes).
    pub fn real_incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(|i| !i.is_decoy)
    }

    /// The literal string a hijacker presents for a correct-variant
    /// retry (exposed for tests).
    pub fn variant_sentinel() -> &'static str {
        VARIANT_CORRECT
    }
}

fn source_page_id(page: &PhishingPage) -> PageId {
    page.id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DefenseConfig, ScenarioConfig};

    fn small(seed: u64) -> Ecosystem {
        let mut config = ScenarioConfig::small_test(seed);
        config.days = 10;
        Ecosystem::build(config)
    }

    #[test]
    fn world_builds_and_runs() {
        let mut eco = small(1);
        eco.run();
        assert!(eco.stats.organic_logins > 1000, "{:?}", eco.stats);
        assert!(eco.stats.lures_delivered > 300, "{:?}", eco.stats);
        assert!(eco.stats.credentials_captured > 0, "{:?}", eco.stats);
        assert!(eco.stats.sessions_run > 0, "{:?}", eco.stats);
    }

    #[test]
    fn incidents_happen_and_some_recover() {
        let mut eco = small(2);
        eco.run();
        assert!(eco.stats.incidents > 0, "{:?}", eco.stats);
        assert!(eco.stats.recovered > 0, "{:?}", eco.stats);
        // Recovered incidents have consistent timelines.
        for inc in &eco.incidents {
            if let Some(r) = inc.recovered_at {
                assert!(r > inc.hijack_start);
                assert!(inc.flagged_at.is_some());
                assert!(inc.flagged_at.unwrap() <= r);
            }
        }
    }

    #[test]
    fn most_lures_are_spam_foldered() {
        let mut eco = small(3);
        eco.run();
        let frac = eco.stats.lures_spam_foldered as f64 / eco.stats.lures_delivered.max(1) as f64;
        assert!(frac > 0.65, "spam-folder rate {frac}");
        assert!(frac < 1.0, "some lures must reach inboxes");
    }

    #[test]
    fn hijacker_logins_recorded_with_ground_truth() {
        let mut eco = small(4);
        eco.run();
        let crew_logins = eco
            .login_log
            .records()
            .filter(|r| matches!(r.actor, Actor::Hijacker(_)))
            .count();
        assert!(crew_logins > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = small(42);
        let mut b = small(42);
        a.run();
        b.run();
        assert_eq!(a.stats.organic_logins, b.stats.organic_logins);
        assert_eq!(a.stats.incidents, b.stats.incidents);
        assert_eq!(a.stats.credentials_captured, b.stats.credentials_captured);
        assert_eq!(a.login_log.len(), b.login_log.len());
        assert_eq!(a.sessions.len(), b.sessions.len());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = small(7);
        let mut b = small(8);
        a.run();
        b.run();
        assert_ne!(
            (a.stats.organic_logins, a.login_log.len()),
            (b.stats.organic_logins, b.login_log.len())
        );
    }

    #[test]
    fn disabling_defenses_increases_exploitation() {
        let mut defended = small(9);
        defended.run();
        let mut config = ScenarioConfig::small_test(9);
        config.days = 10;
        config.defense = DefenseConfig::none();
        let mut undefended = Ecosystem::build(config);
        undefended.run();
        // Without defenses, at least as many sessions succeed end-to-end.
        assert!(
            undefended.stats.exploited >= defended.stats.exploited,
            "undefended {:?} vs defended {:?}",
            undefended.stats,
            defended.stats
        );
        // And nobody gets challenged.
        assert_eq!(undefended.stats.organic_challenges, 0);
        assert!(defended.stats.organic_challenges > 0);
    }

    #[test]
    fn recovered_accounts_get_password_reset_and_remission() {
        let mut config = ScenarioConfig::small_test(10);
        config.days = 16; // enough runway for claims to resolve
        config.lures_per_user_day = 2.0; // plenty of incidents
        let mut eco = Ecosystem::build(config);
        eco.run();
        let recovered: Vec<_> = eco
            .incidents
            .iter()
            .filter(|i| i.recovered_at.is_some())
            .collect();
        assert!(!recovered.is_empty());
        for inc in recovered {
            assert!(inc.remission.is_some());
            // Owner's known password works again — unless the account
            // was hijacked *again* after this recovery.
            let rehijacked = eco
                .credentials
                .hijacker_changed_since(inc.account, inc.recovered_at.unwrap());
            if !rehijacked {
                let pw = eco.users.password(inc.account.index());
                assert!(eco.credentials.verify(inc.account, pw));
            }
        }
    }

    #[test]
    fn decoy_accounts_are_isolated_from_population() {
        let mut eco = small(11);
        let d = eco.add_decoy_account("decoy-probe-0");
        assert!(eco.decoy_accounts.contains(&d));
        // Decoys never generate organic logins; run and verify no Owner
        // records exist for the decoy.
        eco.run();
        let owner_logins = eco
            .login_log
            .records()
            .filter(|r| r.account == d && r.actor == Actor::Owner)
            .count();
        assert_eq!(owner_logins, 0);
    }

    #[test]
    fn crew_sessions_respect_office_hours() {
        let mut eco = small(12);
        eco.run();
        for s in &eco.sessions {
            let crew = eco.crews.get(s.crew);
            // Sessions start during a shift, or within the operator
            // pickup-delay bound (≤3 h) after one — crews finish what
            // they picked up near close of business.
            let started_recently_working = (0..=3).any(|h| {
                crew.schedule
                    .is_active(SimTime::from_secs(s.started_at.as_secs().saturating_sub(h * HOUR)))
            });
            assert!(started_recently_working, "session at {} outside crew hours", s.started_at);
        }
    }
}
