//! External phishing-form campaigns — the §4.2 dataset generator.
//!
//! Dataset 3 of the paper is the HTTP logs of 100 provider-hosted forms
//! used as phishing pages until takedown. This module reproduces that
//! dataset: a batch of pages, each fed by a mass-mail click process that
//! decays from the blast instant, plus (optionally) the one large-scale
//! outlier campaign with its pre-launch quiet period and multi-day
//! diurnal plateau (Figure 6, bottom panel).

use mhw_netmodel::{DomainModel, ReferrerModel};
use mhw_phishkit::campaign::{external_victim_sampler, Campaign, CampaignShape, Submission};
use mhw_phishkit::{DetectionPipeline, PageQuality, PhishingPage, TakedownRecord};
use mhw_simclock::SimRng;
use mhw_types::{AccountCategory, CampaignId, CrewId, PageId, SimDuration, SimTime, DAY, HOUR};

/// Output of a form-campaign batch.
pub struct FormCampaignOutput {
    pub pages: Vec<PhishingPage>,
    pub takedowns: Vec<TakedownRecord>,
    /// Submissions per page (aligned with `pages`).
    pub submissions: Vec<Vec<Submission>>,
    /// Index of the outlier page, if one was included.
    pub outlier: Option<usize>,
}

impl FormCampaignOutput {
    /// Pages with at least one view (the paper's per-page success-rate
    /// panel only includes visited pages).
    pub fn visited_pages(&self) -> impl Iterator<Item = &PhishingPage> {
        self.pages.iter().filter(|p| p.views() > 0)
    }
}

/// Run `n_pages` standard campaigns (plus one outlier if requested).
pub fn run_form_campaigns(n_pages: usize, include_outlier: bool, seed: u64) -> FormCampaignOutput {
    let domains = DomainModel::standard();
    let referrers = ReferrerModel::paper_calibrated();
    let detection = DetectionPipeline::paper_calibrated();
    let mut rng = SimRng::stream(seed, "form-campaigns");
    let mut pages = Vec::new();
    let mut takedowns = Vec::new();
    let mut submissions = Vec::new();

    for i in 0..n_pages {
        // Stagger launches across a quarter.
        let launched = SimTime::from_secs(rng.below(90 * DAY));
        let quality = PageQuality::sample(&mut rng);
        let mut page = PhishingPage::new(
            PageId(i as u32),
            CampaignId(i as u32),
            mhw_phishkit::TargetMix::pages().sample(&mut rng),
            quality,
            launched,
        );
        let takedown = detection.process(&mut page, &mut rng);
        let campaign = Campaign {
            id: CampaignId(i as u32),
            crew: CrewId(0),
            category: page.category,
            shape: CampaignShape::MassBlast {
                peak_rate_per_hour: 15.0 + rng.f64() * 120.0,
                half_life: SimDuration::from_hours(4 + rng.below(12)),
            },
            launched_at: launched,
        };
        let horizon = takedown.taken_down_at.min(launched.plus(SimDuration::from_days(14)));
        let mut sampler = external_victim_sampler(&domains);
        let subs = campaign.run_traffic(&mut page, &referrers, &mut sampler, horizon, &mut rng);
        takedowns.push(takedown);
        submissions.push(subs);
        pages.push(page);
    }

    let outlier = include_outlier.then(|| {
        let launched = SimTime::from_secs(rng.below(60 * DAY));
        let id = PageId(pages.len() as u32);
        let mut page = PhishingPage::new(
            id,
            CampaignId(id.0),
            AccountCategory::Mail,
            PageQuality::Excellent,
            launched,
        );
        // The outlier ran for several days before takedown ended it
        // abruptly (§4.2).
        let taken_down = launched.plus(SimDuration::from_secs(15 * HOUR + 4 * DAY));
        page.taken_down_at = Some(taken_down);
        takedowns.push(TakedownRecord {
            page: id,
            detected_at: taken_down,
            taken_down_at: taken_down,
        });
        let campaign = Campaign {
            id: CampaignId(id.0),
            crew: CrewId(0),
            category: AccountCategory::Mail,
            shape: CampaignShape::LargeScaleOutlier {
                quiet: SimDuration::from_hours(15),
                plateau_rate_per_hour: 160.0,
            },
            launched_at: launched,
        };
        let mut sampler = external_victim_sampler(&domains);
        let subs =
            campaign.run_traffic(&mut page, &referrers, &mut sampler, taken_down, &mut rng);
        submissions.push(subs);
        pages.push(page);
        pages.len() - 1
    });

    FormCampaignOutput { pages, takedowns, submissions, outlier }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_produces_traffic_on_most_pages() {
        let out = run_form_campaigns(30, false, 1);
        assert_eq!(out.pages.len(), 30);
        let visited = out.visited_pages().count();
        assert!(visited >= 25, "visited {visited}");
        assert!(out.outlier.is_none());
    }

    #[test]
    fn success_rates_are_in_figure5_band() {
        let out = run_form_campaigns(60, false, 2);
        let rates: Vec<f64> = out
            .pages
            .iter()
            .filter(|p| p.views() >= 50)
            .filter_map(|p| p.success_rate())
            .collect();
        assert!(rates.len() >= 30);
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((mean - 0.137).abs() < 0.05, "mean conversion {mean}");
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(1.0f64, f64::min);
        assert!(max > 0.25, "max {max}");
        assert!(min < 0.10, "min {min}");
    }

    #[test]
    fn outlier_runs_for_days() {
        let out = run_form_campaigns(3, true, 3);
        let outlier = &out.pages[out.outlier.unwrap()];
        let series = outlier.hourly_submissions();
        assert!(series.len() > 90, "outlier series {} hours", series.len());
        // Quiet first 15 hours.
        assert!(series[..12].iter().all(|c| *c == 0), "quiet period violated");
        // Busy afterwards.
        let total: u32 = series.iter().sum();
        assert!(total > 2000, "outlier total {total}");
    }

    #[test]
    fn standard_pages_decay() {
        let out = run_form_campaigns(40, false, 4);
        let mut decaying = 0;
        let mut eligible = 0;
        for p in &out.pages {
            let series = mhw_analysis::HourlySeries::from_counts(p.hourly_submissions());
            if series.total() >= 30 {
                eligible += 1;
                if series.is_decaying(2.0) {
                    decaying += 1;
                }
            }
        }
        assert!(eligible >= 10, "eligible {eligible}");
        assert!(
            decaying as f64 / eligible as f64 > 0.7,
            "{decaying}/{eligible} decaying"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = run_form_campaigns(10, true, 9);
        let b = run_form_campaigns(10, true, 9);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.views(), pb.views());
            assert_eq!(pa.submissions(), pb.submissions());
        }
    }
}
