//! The adversary's window onto the real substrates.
//!
//! [`WorldAdapter`] implements [`HijackerWorld`] over the live mail
//! provider, identity stores and login pipeline. Crucially, crews get
//! no shortcuts: their logins go through the same risk engine as
//! everyone else's, their sent mail through the same classifier, and
//! every action they take lands in the same provider log that the
//! behavioral monitor watches — which is how a session can be disabled
//! *mid-exploitation*.

use mhw_adversary::world::{HijackerWorld, LoginAttemptOutcome, ProfileView};
use mhw_defense::{
    ActivityMonitor, AnswererCapabilities, LoginContext, LoginPipeline, LoginRequest,
    MailClassifier, NotificationEngine, NotificationEvent,
};
use mhw_identity::{CredentialStore, LoginLog, LoginOutcome, RecoveryOptions, TwoFactorState};
use mhw_mailsys::{FilterAction, Folder, MailProvider, Message, MessageDraft, MessageKind};
use mhw_netmodel::GeoDb;
use mhw_population::Population;
use mhw_simclock::SimRng;
use mhw_types::{
    AccountId, Actor, CrewId, DeviceId, EmailAddress, IpAddr, PhoneNumber, SimTime,
};
use std::collections::HashSet;

/// Sentinel the playbook presents when a trivial-variant retry lands on
/// the correct password (the simulator adjudicated the retry; see
/// `mhw_adversary::playbook`).
pub const VARIANT_CORRECT: &str = "<variant-correct>";

/// Mutable view over the ecosystem for one hijack session (or one batch
/// of organic actions).
pub struct WorldAdapter<'a> {
    pub provider: &'a mut MailProvider,
    pub credentials: &'a mut CredentialStore,
    pub options: &'a mut RecoveryOptions,
    pub twofactor: &'a mut TwoFactorState,
    pub login: &'a mut LoginPipeline,
    pub login_log: &'a mut LoginLog,
    pub geo: &'a GeoDb,
    pub population: &'a Population,
    pub classifier: &'a MailClassifier,
    pub classifier_enabled: bool,
    pub contact_leniency: f64,
    pub monitor: Option<&'a mut ActivityMonitor>,
    pub notifications: Option<&'a mut NotificationEngine>,
    pub notifications_enabled: bool,
    pub disabled: &'a mut HashSet<AccountId>,
    /// Cursor into the provider log for incremental monitoring.
    pub log_cursor: &'a mut usize,
    /// Delivered hijacker phishing messages, reported back to the
    /// orchestrator so recipient clicks route credentials to the crew
    /// (the §5.3 contact-phishing loop).
    pub lure_sink: &'a mut Vec<(mhw_types::MessageId, CrewId)>,
    pub rng: &'a mut SimRng,
}

impl<'a> WorldAdapter<'a> {
    /// Feed provider-log events that appeared since the cursor into the
    /// behavioral monitor; flagged accounts get disabled and their
    /// owners notified ("unusual in-product activity", §8.2).
    pub fn drain_monitor(&mut self) {
        let Some(monitor) = self.monitor.as_deref_mut() else {
            *self.log_cursor = self.provider.log().len();
            return;
        };
        let log = self.provider.log();
        let mut newly_flagged = Vec::new();
        for event in log.iter_from(*self.log_cursor) {
            let verdict = monitor.observe(&event);
            if verdict.flagged && !self.disabled.contains(&event.account) {
                newly_flagged.push((event.account, event.at));
            }
        }
        *self.log_cursor = log.len();
        for (account, at) in newly_flagged {
            self.disabled.insert(account);
            if self.notifications_enabled {
                if let Some(n) = self.notifications.as_deref_mut() {
                    n.notify(account, NotificationEvent::UnusualActivity, self.options, at, self.rng);
                }
            }
        }
    }

    fn notify(&mut self, account: AccountId, event: NotificationEvent, at: SimTime) {
        if self.notifications_enabled {
            if let Some(n) = self.notifications.as_deref_mut() {
                n.notify(account, event, self.options, at, self.rng);
            }
        }
    }

    /// The inbound-delivery spam decision for a message sent by
    /// `sender_account` (None for external senders). Contact-origin mail
    /// receives lenient treatment (§5.3).
    fn spam_decision(
        classifier: &MailClassifier,
        classifier_enabled: bool,
        contact_leniency: f64,
        population: &Population,
        sender_account: Option<AccountId>,
        rng: &mut SimRng,
        m: &Message,
    ) -> bool {
        if !classifier_enabled {
            return false;
        }
        if !classifier.should_spam_folder(m) {
            return false;
        }
        if let Some(sender) = sender_account {
            let recipient = m.owner;
            let is_contact = population
                .graph
                .contacts_of(recipient)
                .contains(&sender);
            if is_contact && rng.chance(contact_leniency) {
                return false; // leniency let it through
            }
        }
        true
    }

    /// Send mail from an internal account, with the full classifier path
    /// (shared by crews and organic users — same code, same treatment).
    #[allow(clippy::too_many_arguments)]
    pub fn deliver_from_account(
        &mut self,
        from: AccountId,
        actor: Actor,
        draft: MessageDraft,
        at: SimTime,
    ) -> (mhw_types::MessageId, Vec<mhw_types::MessageId>) {
        let classifier = self.classifier;
        let enabled = self.classifier_enabled;
        let leniency = self.contact_leniency;
        let population: &Population = self.population;
        let rng = &mut *self.rng;
        let result = self.provider.send(from, actor, draft, at, |m| {
            Self::spam_decision(classifier, enabled, leniency, population, Some(from), rng, m)
        });
        self.drain_monitor();
        result
    }
}

impl<'a> HijackerWorld for WorldAdapter<'a> {
    fn try_login(
        &mut self,
        crew: CrewId,
        address: &EmailAddress,
        password: &str,
        ip: IpAddr,
        device: DeviceId,
        at: SimTime,
    ) -> LoginAttemptOutcome {
        let Some(account) = self.provider.resolve(address) else {
            return LoginAttemptOutcome::NoSuchAccount;
        };
        if self.disabled.contains(&account) {
            return LoginAttemptOutcome::Blocked;
        }
        let literal = if password == VARIANT_CORRECT {
            self.credentials.password_for_capture(account).to_string()
        } else {
            password.to_string()
        };
        // Crews research victims; knowledge challenges are guessable at
        // a modest rate (§8.2). If a hijacker (any crew — §5.5 notes
        // shared resources) enrolled the current 2FA phone, the crew can
        // complete the second factor; an owner-enrolled factor stops it.
        let crew_controls_2fa = self
            .twofactor
            .audit(account)
            .last()
            .map(|e| e.actor.is_hijacker())
            .unwrap_or(false);
        let request = LoginRequest {
            at,
            account,
            ip,
            device,
            password: literal,
            actor: Actor::Hijacker(crew),
            capabilities: AnswererCapabilities::hijacker(0.18)
                .with_second_factor(crew_controls_2fa),
        };
        let ctx = LoginContext {
            credentials: &*self.credentials,
            options: &*self.options,
            twofactor: &*self.twofactor,
            geo: self.geo,
        };
        let outcome = self.login.attempt(&request, &ctx, self.login_log, self.rng);
        match outcome {
            LoginOutcome::Success => LoginAttemptOutcome::Success(account),
            LoginOutcome::WrongPassword => LoginAttemptOutcome::WrongPassword,
            LoginOutcome::ChallengeFailed | LoginOutcome::SecondFactorFailed => {
                LoginAttemptOutcome::ChallengeFailed
            }
            LoginOutcome::Blocked => LoginAttemptOutcome::Blocked,
        }
    }

    fn variant_retry_would_succeed(&self, address: &EmailAddress, captured: &str) -> bool {
        self.provider
            .resolve(address)
            .map(|a| self.credentials.verify_with_variants(a, captured))
            .unwrap_or(false)
    }

    fn search(&mut self, crew: CrewId, account: AccountId, query: &str, at: SimTime) -> usize {
        let hits = self
            .provider
            .search_mailbox(account, Actor::Hijacker(crew), query, at)
            .len();
        self.drain_monitor();
        hits
    }

    fn open_folder(
        &mut self,
        crew: CrewId,
        account: AccountId,
        folder: Folder,
        at: SimTime,
    ) -> usize {
        let n = self
            .provider
            .open_folder(account, Actor::Hijacker(crew), folder, at)
            .len();
        self.drain_monitor();
        n
    }

    fn view_profile(&mut self, crew: CrewId, account: AccountId, at: SimTime) -> ProfileView {
        let contacts = self
            .provider
            .view_contacts(account, Actor::Hijacker(crew), at)
            .into_iter()
            .map(|c| c.address)
            .collect();
        self.drain_monitor();
        // The local part is what a hijacker can glean for
        // personalization ("user123" → "user123"; real deployments
        // would read a display name).
        let owner_first_name = self
            .provider
            .address_of(account)
            .local()
            .split('.')
            .next()
            .unwrap_or("")
            .to_string();
        ProfileView { contacts, owner_first_name }
    }

    fn send_mail(
        &mut self,
        crew: CrewId,
        account: AccountId,
        to: Vec<EmailAddress>,
        subject: String,
        body: String,
        is_phishing: bool,
        reply_to: Option<EmailAddress>,
        at: SimTime,
    ) {
        let kind = if is_phishing { MessageKind::PhishingLure } else { MessageKind::Scam };
        let mut draft = MessageDraft {
            to,
            subject,
            body,
            attachments: Vec::new(),
            kind,
            reply_to: None,
        };
        if let Some(r) = reply_to {
            draft = draft.with_reply_to(r);
        }
        let (_, delivered) = self.deliver_from_account(account, Actor::Hijacker(crew), draft, at);
        if is_phishing {
            for id in delivered {
                self.lure_sink.push((id, crew));
            }
        }
    }

    fn create_forward_filter(
        &mut self,
        crew: CrewId,
        account: AccountId,
        to: EmailAddress,
        at: SimTime,
    ) {
        self.provider.create_filter(
            account,
            Actor::Hijacker(crew),
            None,
            None,
            true,
            FilterAction::ForwardTo(to),
            at,
        );
        self.drain_monitor();
    }

    fn set_reply_to(&mut self, crew: CrewId, account: AccountId, to: EmailAddress, at: SimTime) {
        self.provider
            .set_reply_to(account, Actor::Hijacker(crew), Some(to), at);
        self.drain_monitor();
    }

    fn change_password(&mut self, crew: CrewId, account: AccountId, at: SimTime) {
        let new_pw = format!("crew{}-{}", crew.index(), self.rng.below(1_000_000));
        self.credentials
            .change_password(account, Actor::Hijacker(crew), &new_pw, at);
        self.notify(account, NotificationEvent::PasswordChanged, at);
    }

    fn change_recovery_options(&mut self, crew: CrewId, account: AccountId, at: SimTime) {
        let actor = Actor::Hijacker(crew);
        self.options.set_phone(account, actor, None, at);
        self.options.set_email(account, actor, None, at);
        self.notify(account, NotificationEvent::RecoveryOptionsChanged, at);
    }

    fn enable_two_factor(
        &mut self,
        crew: CrewId,
        account: AccountId,
        phone: PhoneNumber,
        at: SimTime,
    ) {
        self.twofactor
            .enable(account, Actor::Hijacker(crew), phone, at);
        self.notify(account, NotificationEvent::RecoveryOptionsChanged, at);
    }

    fn mass_delete(&mut self, crew: CrewId, account: AccountId, at: SimTime) {
        let actor = Actor::Hijacker(crew);
        self.provider.mass_delete(account, actor, at);
        // "they often delete the user's emails and contact lists" (§5.4).
        let contacts: Vec<EmailAddress> = self
            .provider
            .mailbox(account)
            .contacts()
            .iter()
            .map(|c| c.address.clone())
            .collect();
        for c in contacts {
            self.provider.delete_contact(account, actor, &c, at);
        }
        self.drain_monitor();
    }

    fn proxy_exit_in(&mut self, country: mhw_types::CountryCode) -> IpAddr {
        // Rented proxies are effectively unlimited fresh addresses.
        self.geo.random_ip(country, self.rng)
    }

    fn account_disabled(&self, account: AccountId) -> bool {
        self.disabled.contains(&account)
    }
}
