//! Scenario configuration.

use mhw_adversary::{CrewSpec, Era};
use mhw_population::PopulationConfig;
use mhw_recovery::RecoveryPosture;
use serde::{Deserialize, Serialize};

/// Defense toggles (the §8 ablation surface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Login risk analysis + challenge (§8.2's primary defense).
    pub login_risk_analysis: bool,
    /// Post-login behavioral monitoring.
    pub activity_monitor: bool,
    /// Proactive notifications on critical events.
    pub notifications: bool,
    /// Inbound scam/phishing classification into the Spam folder.
    pub mail_classifier: bool,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            login_risk_analysis: true,
            activity_monitor: true,
            notifications: true,
            mail_classifier: true,
        }
    }
}

impl DefenseConfig {
    /// Everything off — the undefended baseline.
    pub fn none() -> Self {
        DefenseConfig {
            login_risk_analysis: false,
            activity_monitor: false,
            notifications: false,
            mail_classifier: false,
        }
    }
}

/// Recovery-side risk policy: whether claims are risk-scored, with what
/// posture, and whether crews pivot to the recovery flow when the login
/// challenge stops them.
///
/// The default is the **legacy** configuration — no claim scoring, no
/// adversary pivot — so worlds built before this knob existed reproduce
/// byte-for-byte (the same contract `market_share: 0.0` keeps for the
/// credential market).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Score each claim with the [`mhw_recovery::RecoveryRiskService`]
    /// before channel verification. Off reproduces the unscored §6
    /// pipeline exactly.
    pub claim_risk_scoring: bool,
    /// Thresholds used when `claim_risk_scoring` is on.
    pub posture: RecoveryPosture,
    /// Crews that phished a working password but were stopped by the
    /// login challenge may pivot to a recovery claim armed with
    /// harvested personal data.
    pub adversary_pivot: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::legacy()
    }
}

impl RecoveryConfig {
    /// The pre-scoring pipeline: claims verify on channel strength
    /// alone, crews never pivot. Byte-identical to worlds built before
    /// recovery risk existed.
    pub fn legacy() -> Self {
        RecoveryConfig {
            claim_risk_scoring: false,
            posture: RecoveryPosture::paper(),
            adversary_pivot: false,
        }
    }

    /// Scored claims at the paper-calibrated posture, with the
    /// recovery-pivot attack enabled.
    pub fn paper() -> Self {
        RecoveryConfig {
            claim_risk_scoring: true,
            posture: RecoveryPosture::paper(),
            adversary_pivot: true,
        }
    }

    /// Scored claims at the lenient posture, pivot enabled.
    pub fn lenient() -> Self {
        RecoveryConfig { posture: RecoveryPosture::lenient(), ..RecoveryConfig::paper() }
    }

    /// Scored claims at the strict posture, pivot enabled.
    pub fn strict() -> Self {
        RecoveryConfig { posture: RecoveryPosture::strict(), ..RecoveryConfig::paper() }
    }
}

/// One scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub seed: u64,
    /// Logical shard this scenario instance simulates. Shard identity is
    /// part of scenario semantics (like the seed): shard 0 with the
    /// default population reproduces the unsharded simulator exactly,
    /// while the sharded engine builds one `ScenarioConfig` per shard
    /// with distinct ids. Worker-thread counts are *not* recorded here —
    /// parallelism must never change outputs.
    pub shard: mhw_types::ShardId,
    /// Fraction of freshly phished credentials a crew offers to the
    /// cross-shard credential market instead of exploiting locally
    /// (§5's professional crews trade working credentials). 0 disables
    /// the market, which keeps single-shard runs identical to the
    /// pre-sharding simulator.
    pub market_share: f64,
    pub era: Era,
    /// Simulated days.
    pub days: u64,
    pub population: PopulationConfig,
    pub crews: Vec<CrewSpec>,
    pub defense: DefenseConfig,
    /// Recovery-side risk policy (claim scoring + adversary pivot).
    pub recovery: RecoveryConfig,
    /// Mean phishing lures delivered per user per day (pre-filtering).
    /// The main volume knob: more lures ⇒ more captured credentials ⇒
    /// more hijackings.
    pub lures_per_user_day: f64,
    /// Max credentials one crew processes per working hour.
    pub crew_creds_per_hour: u64,
    /// Probability per day that a crew's dropbox gets suspended by the
    /// provider hosting it (§5.1: decoys unaccessed when "the email
    /// account used by the hijacker to collect credentials" was
    /// suspended).
    pub dropbox_suspension_per_day: f64,
    /// Spam-filter leniency multiplier for mail arriving from one of the
    /// recipient's own contacts (§5.3: contact-origin mail receives
    /// "more lenient and trusting treatment"). 0 = no leniency.
    pub contact_leniency: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0xC0FFEE,
            shard: 0,
            market_share: 0.0,
            era: Era::Y2012,
            days: 30,
            population: PopulationConfig::default(),
            crews: CrewSpec::paper_roster(),
            defense: DefenseConfig::default(),
            recovery: RecoveryConfig::default(),
            lures_per_user_day: 0.2,
            crew_creds_per_hour: 6,
            dropbox_suspension_per_day: 0.08,
            contact_leniency: 0.75,
        }
    }
}

impl ScenarioConfig {
    /// A small, fast configuration for unit/integration tests.
    pub fn small_test(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            days: 14,
            population: PopulationConfig { n_users: 400, ..PopulationConfig::default() },
            lures_per_user_day: 1.2,
            ..ScenarioConfig::default()
        }
    }

    /// A measurement-scale configuration (the experiments' default).
    pub fn measurement(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            days: 45,
            population: PopulationConfig { n_users: 3000, ..PopulationConfig::default() },
            lures_per_user_day: 0.9,
            ..ScenarioConfig::default()
        }
    }

    /// A scale-ladder configuration: `n_users` with per-user activity
    /// turned down so wall-clock cost is dominated by the per-user
    /// bookkeeping the ladder measures (state columns, log appends,
    /// merges), not by lure volume. Used by the `scale_ladder` bench;
    /// the attack pipeline stays enabled so hot paths are exercised
    /// end to end.
    pub fn scale_world(seed: u64, n_users: usize, days: u64) -> Self {
        ScenarioConfig {
            seed,
            days,
            population: PopulationConfig {
                n_users,
                seed_mailboxes: false,
                activity_scale: 0.02,
                ..PopulationConfig::default()
            },
            lures_per_user_day: 0.02,
            ..ScenarioConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_defenses() {
        let d = DefenseConfig::default();
        assert!(d.login_risk_analysis && d.activity_monitor && d.notifications && d.mail_classifier);
        let n = DefenseConfig::none();
        assert!(!n.login_risk_analysis && !n.activity_monitor && !n.notifications && !n.mail_classifier);
    }

    #[test]
    fn recovery_default_is_the_legacy_no_op() {
        let r = RecoveryConfig::default();
        assert!(!r.claim_risk_scoring && !r.adversary_pivot, "default must not perturb old worlds");
        assert_eq!(r, RecoveryConfig::legacy());
        let p = RecoveryConfig::paper();
        assert!(p.claim_risk_scoring && p.adversary_pivot);
        // Posture presets carry through the shorthand constructors.
        assert_eq!(RecoveryConfig::strict().posture, RecoveryPosture::strict());
        assert_eq!(RecoveryConfig::lenient().posture, RecoveryPosture::lenient());
    }

    #[test]
    fn scenario_presets_differ_in_scale() {
        let small = ScenarioConfig::small_test(1);
        let big = ScenarioConfig::measurement(1);
        assert!(small.population.n_users < big.population.n_users);
        assert!(small.days < big.days);
    }
}
