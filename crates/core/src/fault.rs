//! Deterministic fault injection for chaos-testing the engine.
//!
//! A [`FaultPlan`] is a *schedule* of faults addressed by simulation
//! coordinates — `(day, shard)` for shard-job faults, `day` for
//! checkpoint-write faults — never by wall clock or thread identity, so
//! the same plan injects the same faults at the same points on every
//! run. Plans come from two places:
//!
//! * explicit schedules, built programmatically or parsed from the
//!   `--fault-plan` CLI spec (`panic@3.1,slow@2.0:25,ckpt-fail@4:2`);
//! * seeded schedules ([`FaultPlan::seeded`], CLI spec
//!   `seeded:panics=1,slow=2,ckpt=1`), drawn from the run's own master
//!   seed via the dedicated `"fault-plan"` RNG stream — reproducible,
//!   and independent of every simulation stream, so arming faults never
//!   perturbs the world itself.
//!
//! Faults model *crash* events, not world events: an injected panic
//! unwinds a shard job before the day runs, a slow worker sleeps wall
//! clock, a checkpoint failure fails the write syscall. None of them
//! touch simulation state, which is why a run that survives its faults
//! (or is resumed past them) still produces byte-identical datasets.

use mhw_simclock::SimRng;
use mhw_types::{faultspec, EngineError, EngineResult, ShardId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Shard jobs to panic, by `(day, shard)`.
    panics: BTreeSet<(u64, ShardId)>,
    /// Shard jobs to slow down, by `(day, shard)`, value = milliseconds.
    slowdowns: BTreeMap<(u64, ShardId), u64>,
    /// Checkpoint writes to fail, by day, value = how many consecutive
    /// attempts fail (transient if below the engine's retry budget).
    checkpoint_failures: BTreeMap<u64, u32>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panic the shard's job at the start of the given day.
    pub fn panic_at(mut self, day: u64, shard: ShardId) -> Self {
        self.panics.insert((day, shard));
        self
    }

    /// Sleep the worker running the shard's job for `ms` milliseconds
    /// on the given day (pure mechanics: stresses work stealing and
    /// barrier waits without touching any simulation state).
    pub fn slow_at(mut self, day: u64, shard: ShardId, ms: u64) -> Self {
        self.slowdowns.insert((day, shard), ms);
        self
    }

    /// Fail the first `attempts` checkpoint-write attempts at the given
    /// day's barrier with a synthetic transient I/O error.
    pub fn fail_checkpoint(mut self, day: u64, attempts: u32) -> Self {
        *self.checkpoint_failures.entry(day).or_insert(0) += attempts;
        self
    }

    /// A reproducible random schedule drawn from the run's master seed
    /// through the dedicated `"fault-plan"` stream: `n_panics` shard
    /// panics, `n_slow` slow workers (1–25 ms) and `n_ckpt` checkpoint
    /// write failures, all at uniformly chosen in-range coordinates.
    /// The same `(seed, days, shards, counts)` always yields the same
    /// schedule.
    pub fn seeded(
        seed: u64,
        days: u64,
        shards: u16,
        n_panics: usize,
        n_slow: usize,
        n_ckpt: usize,
    ) -> Self {
        let mut plan = FaultPlan::default();
        if days == 0 || shards == 0 {
            return plan;
        }
        let mut rng = SimRng::stream(seed, "fault-plan");
        for _ in 0..n_panics {
            plan.panics.insert((rng.below(days), rng.below(shards as u64) as ShardId));
        }
        for _ in 0..n_slow {
            let key = (rng.below(days), rng.below(shards as u64) as ShardId);
            plan.slowdowns.insert(key, 1 + rng.below(25));
        }
        for _ in 0..n_ckpt {
            *plan.checkpoint_failures.entry(rng.below(days)).or_insert(0) += 1;
        }
        plan
    }

    /// Parse a CLI fault spec. Two forms:
    ///
    /// * explicit, comma-separated entries:
    ///   `panic@DAY.SHARD`, `slow@DAY.SHARD:MS`, `ckpt-fail@DAY:ATTEMPTS`
    ///   — e.g. `panic@3.1,slow@2.0:25,ckpt-fail@4:2`;
    /// * seeded: `seeded:panics=N,slow=N,ckpt=N` (any subset of keys),
    ///   expanded via [`FaultPlan::seeded`] from the run's seed and
    ///   scenario dimensions.
    ///
    /// Errors are plain strings naming the offending entry; the CLIs
    /// turn them into usage errors (exit code 2). The grammar itself —
    /// entry splitting, coordinate helpers, error wording — is shared
    /// with the serve tier's `ServeFaultPlan` via
    /// [`mhw_types::faultspec`].
    pub fn parse_spec(spec: &str, seed: u64, days: u64, shards: u16) -> Result<Self, String> {
        let entries = match faultspec::parse(spec, &["panics", "slow", "ckpt"])? {
            faultspec::FaultSpec::Seeded(counts) => {
                return Ok(FaultPlan::seeded(
                    seed,
                    days,
                    shards,
                    counts.get("panics") as usize,
                    counts.get("slow") as usize,
                    counts.get("ckpt") as usize,
                ));
            }
            faultspec::FaultSpec::Explicit(entries) => entries,
        };
        let mut plan = FaultPlan::default();
        for entry in &entries {
            let raw = entry.raw.as_str();
            let coords = entry.coords.as_str();
            match entry.kind.as_str() {
                "panic" => {
                    let (day, shard) = faultspec::split2(raw, coords, '.', "panic@DAY.SHARD")?;
                    plan.panics.insert((
                        faultspec::num(raw, day, "day")?,
                        faultspec::num(raw, shard, "shard")? as ShardId,
                    ));
                }
                "slow" => {
                    let (at, ms) = faultspec::split2(raw, coords, ':', "slow@DAY.SHARD:MS")?;
                    let (day, shard) = faultspec::split2(raw, at, '.', "slow@DAY.SHARD:MS")?;
                    plan.slowdowns.insert(
                        (
                            faultspec::num(raw, day, "day")?,
                            faultspec::num(raw, shard, "shard")? as ShardId,
                        ),
                        faultspec::num(raw, ms, "millisecond count")?,
                    );
                }
                "ckpt-fail" => {
                    let (day, attempts) =
                        faultspec::split2(raw, coords, ':', "ckpt-fail@DAY:ATTEMPTS")?;
                    *plan
                        .checkpoint_failures
                        .entry(faultspec::num(raw, day, "day")?)
                        .or_insert(0) += faultspec::num(raw, attempts, "attempt count")? as u32;
                }
                other => {
                    return Err(faultspec::unknown_kind(other, &["panic", "slow", "ckpt-fail"]))
                }
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.slowdowns.is_empty()
            && self.checkpoint_failures.is_empty()
    }

    /// Check every scheduled fault addresses a `(day, shard)` inside
    /// the scenario, so typo'd plans fail fast instead of silently
    /// never firing.
    pub fn validate(&self, days: u64, shards: u16) -> EngineResult<()> {
        let bad = |what: String| Err(EngineError::InvalidConfig { reason: what });
        for (day, shard) in &self.panics {
            if *day >= days || *shard >= shards {
                return bad(format!(
                    "fault plan panics shard {shard} on day {day}, but the scenario has \
                     {shards} shards and {days} days"
                ));
            }
        }
        for (day, shard) in self.slowdowns.keys() {
            if *day >= days || *shard >= shards {
                return bad(format!(
                    "fault plan slows shard {shard} on day {day}, but the scenario has \
                     {shards} shards and {days} days"
                ));
            }
        }
        for day in self.checkpoint_failures.keys() {
            if *day >= days {
                return bad(format!(
                    "fault plan fails a checkpoint on day {day}, but the scenario has \
                     {days} days"
                ));
            }
        }
        Ok(())
    }

    /// Should the shard's job panic at the start of this day?
    pub fn should_panic(&self, day: u64, shard: ShardId) -> bool {
        self.panics.contains(&(day, shard))
    }

    /// Milliseconds to sleep the worker running this shard-day, if any.
    pub fn slowdown_ms(&self, day: u64, shard: ShardId) -> Option<u64> {
        self.slowdowns.get(&(day, shard)).copied()
    }

    /// How many checkpoint-write attempts fail at this day's barrier.
    pub fn checkpoint_failures_at(&self, day: u64) -> u32 {
        self.checkpoint_failures.get(&day).copied().unwrap_or(0)
    }

    /// Every scheduled panic, in `(day, shard)` order — what the chaos
    /// suite asserts reproducibility over.
    pub fn panic_points(&self) -> Vec<(u64, ShardId)> {
        self.panics.iter().copied().collect()
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical spec rendering: parseable back via
    /// [`FaultPlan::parse_spec`], used by the CLIs to echo the resolved
    /// schedule (seeded plans render their concrete fault points).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            if first {
                first = false;
                Ok(())
            } else {
                f.write_str(",")
            }
        };
        for (day, shard) in &self.panics {
            sep(f)?;
            write!(f, "panic@{day}.{shard}")?;
        }
        for ((day, shard), ms) in &self.slowdowns {
            sep(f)?;
            write!(f, "slow@{day}.{shard}:{ms}")?;
        }
        for (day, attempts) in &self.checkpoint_failures {
            sep(f)?;
            write!(f, "ckpt-fail@{day}:{attempts}")?;
        }
        if first {
            f.write_str("(no faults)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultPlan::seeded(0xFA17, 30, 4, 2, 3, 1);
        let b = FaultPlan::seeded(0xFA17, 30, 4, 2, 3, 1);
        assert_eq!(a, b);
        assert_eq!(a.panic_points(), b.panic_points());
        let c = FaultPlan::seeded(0xFA18, 30, 4, 2, 3, 1);
        assert_ne!(a, c, "a different seed draws a different schedule");
        assert!(a.validate(30, 4).is_ok(), "seeded faults are always in range");
    }

    #[test]
    fn explicit_spec_round_trips_through_display() {
        let plan =
            FaultPlan::parse_spec("panic@3.1,slow@2.0:25,ckpt-fail@4:2", 0, 10, 2).unwrap();
        assert!(plan.should_panic(3, 1));
        assert!(!plan.should_panic(3, 0));
        assert_eq!(plan.slowdown_ms(2, 0), Some(25));
        assert_eq!(plan.checkpoint_failures_at(4), 2);
        let reparsed = FaultPlan::parse_spec(&plan.to_string(), 0, 10, 2).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn seeded_spec_expands_from_the_run_seed() {
        let from_spec = FaultPlan::parse_spec("seeded:panics=2,slow=1,ckpt=1", 77, 20, 3).unwrap();
        assert_eq!(from_spec, FaultPlan::seeded(77, 20, 3, 2, 1, 1));
        assert!(!from_spec.is_empty());
    }

    #[test]
    fn bad_specs_name_the_offending_entry() {
        let err = FaultPlan::parse_spec("panic@x.1", 0, 10, 2).unwrap_err();
        assert!(err.contains("panic@x.1"), "{err}");
        let err = FaultPlan::parse_spec("explode@1.1", 0, 10, 2).unwrap_err();
        assert!(err.contains("explode"), "{err}");
        let err = FaultPlan::parse_spec("seeded:panics=many", 0, 10, 2).unwrap_err();
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn validate_rejects_out_of_range_faults() {
        let plan = FaultPlan::new().panic_at(9, 0);
        assert!(plan.validate(10, 1).is_ok());
        assert!(matches!(
            plan.validate(9, 1),
            Err(EngineError::InvalidConfig { .. })
        ));
        let plan = FaultPlan::new().slow_at(0, 5, 10);
        assert!(matches!(
            plan.validate(10, 2),
            Err(EngineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.should_panic(0, 0));
        assert_eq!(plan.slowdown_ms(0, 0), None);
        assert_eq!(plan.checkpoint_failures_at(0), 0);
        assert_eq!(plan.to_string(), "(no faults)");
    }
}
