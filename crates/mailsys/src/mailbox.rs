//! Mailboxes, folders and contacts.
//!
//! Folder semantics follow the webmail conventions the paper describes:
//! `Starred` is a *view* over the starred flag (a label, not a storage
//! location), `Trash` is a soft-delete holding area, and permanent
//! deletion leaves a tombstone so the §6.4 remission process can restore
//! "hijacker-deleted content".

use crate::message::Message;
use mhw_types::{AccountId, EmailAddress, MessageId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mailbox folders. `Starred` never stores messages — it is materialized
/// from the starred flag when opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Folder {
    Inbox,
    Starred,
    Drafts,
    Sent,
    Trash,
    Spam,
}

impl Folder {
    pub const ALL: [Folder; 6] = [
        Folder::Inbox,
        Folder::Starred,
        Folder::Drafts,
        Folder::Sent,
        Folder::Trash,
        Folder::Spam,
    ];

    /// Whether messages are physically stored under this folder.
    pub fn is_storage(self) -> bool {
        self != Folder::Starred
    }
}

/// A contact-list entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContactEntry {
    pub address: EmailAddress,
    /// The contact's account id if they use the home provider.
    pub internal: Option<AccountId>,
}

/// Tombstone for a purged or hijacker-trashed message, kept for
/// remission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tombstone {
    pub message: Message,
    pub deleted_at: SimTime,
    /// Folder the message lived in before deletion.
    pub previous_folder: Folder,
}

/// One user's mailbox.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Mailbox {
    /// Message storage. `BTreeMap` keeps iteration deterministic.
    messages: BTreeMap<MessageId, Message>,
    /// Physical folder of each stored message.
    folders: BTreeMap<MessageId, Folder>,
    /// Purged messages (tombstones for remission).
    tombstones: Vec<Tombstone>,
    /// Contact list.
    contacts: Vec<ContactEntry>,
    /// Contacts removed (kept for remission of mass contact deletion).
    deleted_contacts: Vec<(ContactEntry, SimTime)>,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a message in `folder`. Overwrites nothing: message ids are
    /// globally unique.
    pub fn store(&mut self, message: Message, folder: Folder) {
        debug_assert!(folder.is_storage(), "cannot store into the Starred view");
        let id = message.id;
        self.messages.insert(id, message);
        self.folders.insert(id, folder);
    }

    pub fn get(&self, id: MessageId) -> Option<&Message> {
        self.messages.get(&id)
    }

    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut Message> {
        self.messages.get_mut(&id)
    }

    /// Physical folder of a message.
    pub fn folder_of(&self, id: MessageId) -> Option<Folder> {
        self.folders.get(&id).copied()
    }

    /// Ids shown when opening `folder` (materializes the Starred view),
    /// in id (≈ arrival) order.
    pub fn list_folder(&self, folder: Folder) -> Vec<MessageId> {
        match folder {
            Folder::Starred => self
                .messages
                .values()
                .filter(|m| m.starred && self.folders[&m.id] != Folder::Trash)
                .map(|m| m.id)
                .collect(),
            f => self
                .folders
                .iter()
                .filter(|(_, fol)| **fol == f)
                .map(|(id, _)| *id)
                .collect(),
        }
    }

    /// All live (non-tombstoned) messages.
    pub fn all_messages(&self) -> impl Iterator<Item = &Message> {
        self.messages.values()
    }

    /// Total number of live messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Move a message to another storage folder (e.g. to Trash).
    /// Returns the previous folder, or `None` if the message is unknown.
    pub fn move_to(&mut self, id: MessageId, folder: Folder) -> Option<Folder> {
        debug_assert!(folder.is_storage(), "cannot move into the Starred view");
        if !self.messages.contains_key(&id) {
            return None;
        }
        self.folders.insert(id, folder)
    }

    /// Permanently delete a message, leaving a tombstone.
    pub fn purge(&mut self, id: MessageId, at: SimTime) -> bool {
        let Some(message) = self.messages.remove(&id) else {
            return false;
        };
        let previous_folder = self.folders.remove(&id).unwrap_or(Folder::Inbox);
        self.tombstones.push(Tombstone { message, deleted_at: at, previous_folder });
        true
    }

    /// Restore every message tombstoned at or after `since` back into its
    /// previous folder (the optional content-restore step of §6.4).
    /// Returns the number restored.
    pub fn restore_purged_since(&mut self, since: SimTime) -> usize {
        let mut restored = 0;
        let mut keep = Vec::new();
        for t in self.tombstones.drain(..) {
            if t.deleted_at >= since {
                let id = t.message.id;
                self.messages.insert(id, t.message);
                self.folders.insert(id, t.previous_folder);
                restored += 1;
            } else {
                keep.push(t);
            }
        }
        self.tombstones = keep;
        restored
    }

    /// Tombstones currently held.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    // ---- contacts ----

    pub fn add_contact(&mut self, entry: ContactEntry) {
        if !self.contacts.iter().any(|c| c.address == entry.address) {
            self.contacts.push(entry);
        }
    }

    pub fn contacts(&self) -> &[ContactEntry] {
        &self.contacts
    }

    /// Remove a contact (kept recoverable for remission).
    pub fn delete_contact(&mut self, address: &EmailAddress, at: SimTime) -> bool {
        if let Some(pos) = self.contacts.iter().position(|c| &c.address == address) {
            let e = self.contacts.remove(pos);
            self.deleted_contacts.push((e, at));
            true
        } else {
            false
        }
    }

    /// Restore contacts deleted at or after `since`.
    pub fn restore_contacts_since(&mut self, since: SimTime) -> usize {
        let mut restored = 0;
        let mut keep = Vec::new();
        for (e, t) in self.deleted_contacts.drain(..) {
            if t >= since {
                if !self.contacts.iter().any(|c| c.address == e.address) {
                    self.contacts.push(e);
                }
                restored += 1;
            } else {
                keep.push((e, t));
            }
        }
        self.deleted_contacts = keep;
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    fn mk(id: u32, starred: bool) -> Message {
        Message {
            id: MessageId(id),
            owner: AccountId(0),
            from: EmailAddress::new("from", "x.com"),
            to: vec![],
            subject: format!("subject {id}"),
            body: "body".into(),
            attachments: vec![],
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::from_secs(id as u64),
            read: false,
            starred,
        }
    }

    #[test]
    fn store_and_list() {
        let mut mb = Mailbox::new();
        mb.store(mk(1, false), Folder::Inbox);
        mb.store(mk(2, false), Folder::Sent);
        assert_eq!(mb.list_folder(Folder::Inbox), vec![MessageId(1)]);
        assert_eq!(mb.list_folder(Folder::Sent), vec![MessageId(2)]);
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn starred_is_a_view() {
        let mut mb = Mailbox::new();
        mb.store(mk(1, true), Folder::Inbox);
        mb.store(mk(2, false), Folder::Inbox);
        mb.store(mk(3, true), Folder::Sent);
        let starred = mb.list_folder(Folder::Starred);
        assert_eq!(starred, vec![MessageId(1), MessageId(3)]);
        // Starring is reflected without moving folders.
        assert_eq!(mb.folder_of(MessageId(1)), Some(Folder::Inbox));
    }

    #[test]
    fn trashed_messages_leave_starred_view() {
        let mut mb = Mailbox::new();
        mb.store(mk(1, true), Folder::Inbox);
        mb.move_to(MessageId(1), Folder::Trash);
        assert!(mb.list_folder(Folder::Starred).is_empty());
        assert_eq!(mb.list_folder(Folder::Trash), vec![MessageId(1)]);
    }

    #[test]
    fn move_returns_previous_folder() {
        let mut mb = Mailbox::new();
        mb.store(mk(1, false), Folder::Inbox);
        assert_eq!(mb.move_to(MessageId(1), Folder::Trash), Some(Folder::Inbox));
        assert_eq!(mb.move_to(MessageId(9), Folder::Trash), None);
    }

    #[test]
    fn purge_and_restore() {
        let mut mb = Mailbox::new();
        for i in 1..=5 {
            mb.store(mk(i, false), Folder::Inbox);
        }
        // Owner purged one long ago; hijacker purges the rest later.
        assert!(mb.purge(MessageId(1), SimTime::from_secs(10)));
        for i in 2..=5 {
            assert!(mb.purge(MessageId(i), SimTime::from_secs(1000)));
        }
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.tombstone_count(), 5);
        // Remission restores only the hijack-window deletions.
        let restored = mb.restore_purged_since(SimTime::from_secs(500));
        assert_eq!(restored, 4);
        assert_eq!(mb.len(), 4);
        assert_eq!(mb.tombstone_count(), 1);
        assert_eq!(mb.folder_of(MessageId(3)), Some(Folder::Inbox));
        // Purging an unknown id is a no-op.
        assert!(!mb.purge(MessageId(99), SimTime::from_secs(0)));
    }

    #[test]
    fn contacts_dedupe_and_restore() {
        let mut mb = Mailbox::new();
        let a = ContactEntry { address: EmailAddress::new("a", "x.com"), internal: None };
        mb.add_contact(a.clone());
        mb.add_contact(a.clone()); // duplicate ignored
        assert_eq!(mb.contacts().len(), 1);
        assert!(mb.delete_contact(&a.address, SimTime::from_secs(100)));
        assert!(!mb.delete_contact(&a.address, SimTime::from_secs(100)));
        assert!(mb.contacts().is_empty());
        assert_eq!(mb.restore_contacts_since(SimTime::from_secs(50)), 1);
        assert_eq!(mb.contacts().len(), 1);
        // Restoring again is a no-op (nothing left to restore).
        assert_eq!(mb.restore_contacts_since(SimTime::from_secs(50)), 0);
    }

    #[test]
    fn old_contact_deletions_stay_deleted() {
        let mut mb = Mailbox::new();
        let a = ContactEntry { address: EmailAddress::new("a", "x.com"), internal: None };
        mb.add_contact(a.clone());
        mb.delete_contact(&a.address, SimTime::from_secs(10));
        assert_eq!(mb.restore_contacts_since(SimTime::from_secs(500)), 0);
        assert!(mb.contacts().is_empty());
    }
}
