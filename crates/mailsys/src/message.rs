//! Messages.
//!
//! A message carries enough synthetic structure for everything the
//! hijacker playbook and the defender's classifiers look at: sender and
//! recipients, a subject and body (synthetic text), attachment file
//! names (hijackers search `filename:(jpg or jpeg or png)`, Table 3),
//! and a [`MessageKind`] ground-truth label used by the measurement
//! pipeline (e.g. "was this sent mail actually a scam?") — never by
//! detectors, which must classify from content.

use mhw_types::{AccountId, EmailAddress, MessageId, SimTime};
use serde::{Deserialize, Serialize};

/// Ground-truth provenance of a message. Detection code must not branch
/// on this; the measurement pipeline uses it to validate classifier
/// output and to label datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Ordinary person-to-person mail.
    Personal,
    /// Statements, wire-transfer confirmations, signature scans — the
    /// financial material hijackers hunt for (§5.2).
    Banking,
    /// Mail containing credentials for linked accounts (password resets,
    /// welcome mail from other services).
    LinkedCredentials,
    /// Newsletters, receipts, machine mail.
    Bulk,
    /// A lure pointing to (or asking replies with credentials for) a
    /// phishing campaign.
    PhishingLure,
    /// A scam plea (Mugged-in-City and friends, §5.3).
    Scam,
    /// Provider-generated security notification (§8.2).
    SecurityNotification,
    /// Personal media/attachments (vacation photos, documents).
    PersonalMedia,
}

impl MessageKind {
    /// Whether a user who recognizes this mail as abusive would plausibly
    /// report it as spam/phishing.
    pub fn is_abusive(self) -> bool {
        matches!(self, MessageKind::PhishingLure | MessageKind::Scam)
    }
}

/// A draft handed to [`MailProvider::send`](crate::MailProvider::send).
#[derive(Debug, Clone)]
pub struct MessageDraft {
    pub to: Vec<EmailAddress>,
    pub subject: String,
    pub body: String,
    pub attachments: Vec<String>,
    pub kind: MessageKind,
    /// Reply-To override set on this specific message (the §5.4
    /// doppelganger diversion sets this).
    pub reply_to: Option<EmailAddress>,
}

impl MessageDraft {
    /// A plain personal message.
    pub fn personal(to: Vec<EmailAddress>, subject: &str, body: &str) -> Self {
        MessageDraft {
            to,
            subject: subject.to_string(),
            body: body.to_string(),
            attachments: Vec::new(),
            kind: MessageKind::Personal,
            reply_to: None,
        }
    }

    pub fn with_kind(mut self, kind: MessageKind) -> Self {
        self.kind = kind;
        self
    }

    pub fn with_attachments(mut self, attachments: Vec<String>) -> Self {
        self.attachments = attachments;
        self
    }

    pub fn with_reply_to(mut self, reply_to: EmailAddress) -> Self {
        self.reply_to = Some(reply_to);
        self
    }
}

/// A stored message in some mailbox.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    pub id: MessageId,
    /// Owning mailbox.
    pub owner: AccountId,
    pub from: EmailAddress,
    pub to: Vec<EmailAddress>,
    pub subject: String,
    pub body: String,
    pub attachments: Vec<String>,
    pub kind: MessageKind,
    pub reply_to: Option<EmailAddress>,
    pub at: SimTime,
    pub read: bool,
    pub starred: bool,
}

impl Message {
    /// Case-insensitive haystack over subject and body.
    pub fn text_matches(&self, needle_lower: &str) -> bool {
        self.subject.to_ascii_lowercase().contains(needle_lower)
            || self.body.to_ascii_lowercase().contains(needle_lower)
    }

    /// Whether any attachment has one of the given extensions.
    pub fn has_attachment_ext(&self, exts: &[&str]) -> bool {
        self.attachments.iter().any(|a| {
            a.rsplit('.')
                .next()
                .map(|e| exts.iter().any(|x| x.eq_ignore_ascii_case(e)))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(subject: &str, body: &str, attachments: Vec<&str>) -> Message {
        Message {
            id: MessageId(0),
            owner: AccountId(0),
            from: EmailAddress::new("a", "x.com"),
            to: vec![EmailAddress::new("b", "y.com")],
            subject: subject.to_string(),
            body: body.to_string(),
            attachments: attachments.into_iter().map(String::from).collect(),
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::EPOCH,
            read: false,
            starred: false,
        }
    }

    #[test]
    fn text_match_is_case_insensitive() {
        let m = msg("Wire Transfer Confirmation", "Your bank statement is attached", vec![]);
        assert!(m.text_matches("wire transfer"));
        assert!(m.text_matches("bank statement"));
        assert!(!m.text_matches("paypal"));
    }

    #[test]
    fn attachment_extension_matching() {
        let m = msg("photos", "from the trip", vec!["beach.JPG", "notes.txt"]);
        assert!(m.has_attachment_ext(&["jpg", "jpeg", "png"]));
        assert!(!m.has_attachment_ext(&["mp4"]));
        let none = msg("x", "y", vec![]);
        assert!(!none.has_attachment_ext(&["jpg"]));
    }

    #[test]
    fn abusive_kinds() {
        assert!(MessageKind::Scam.is_abusive());
        assert!(MessageKind::PhishingLure.is_abusive());
        assert!(!MessageKind::Personal.is_abusive());
        assert!(!MessageKind::SecurityNotification.is_abusive());
    }

    #[test]
    fn draft_builders() {
        let d = MessageDraft::personal(vec![EmailAddress::new("b", "y.com")], "hi", "there")
            .with_kind(MessageKind::Banking)
            .with_attachments(vec!["statement.pdf".into()])
            .with_reply_to(EmailAddress::new("evil", "dopp.com"));
        assert_eq!(d.kind, MessageKind::Banking);
        assert_eq!(d.attachments.len(), 1);
        assert!(d.reply_to.is_some());
    }
}
