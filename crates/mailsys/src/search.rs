//! Mailbox search.
//!
//! Hijackers' primary value-assessment tool is "the Gmail search feature"
//! (§5.2), and Table 3 lists their actual queries — plain keywords
//! (`wire transfer`, `password`, `jpg`), non-Latin terms (`账单`), and
//! Gmail operators (`is:starred`, `filename:(jpg or jpeg or png)`). The
//! query language implemented here covers exactly those forms:
//!
//! * bare terms — case-insensitive substring match over subject + body
//!   (multiple terms must all match);
//! * `is:starred` — restrict to starred messages;
//! * `filename:EXT` / `filename:(A or B or C)` — match attachment
//!   extensions.

use crate::mailbox::{Folder, Mailbox};
use mhw_types::MessageId;

/// A parsed search query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchQuery {
    /// Lower-cased free-text terms that must all match subject or body.
    pub terms: Vec<String>,
    /// `is:starred` operator present.
    pub starred_only: bool,
    /// Attachment extensions from `filename:` operators (lower-cased).
    pub filename_exts: Vec<String>,
}

impl SearchQuery {
    /// Parse a raw query string.
    pub fn parse(raw: &str) -> SearchQuery {
        let mut q = SearchQuery::default();
        let mut rest = raw.trim();
        let mut terms = Vec::new();
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            let lower = rest.to_ascii_lowercase();
            if lower.starts_with("is:starred") {
                q.starred_only = true;
                rest = &rest["is:starred".len()..];
            } else if lower.starts_with("filename:(") {
                // filename:(jpg or jpeg or png)
                if let Some(close) = rest.find(')') {
                    let inner = &rest["filename:(".len()..close];
                    for part in inner.split_whitespace() {
                        let p = part.to_ascii_lowercase();
                        if p != "or" && !p.is_empty() {
                            q.filename_exts.push(p);
                        }
                    }
                    rest = &rest[close + 1..];
                } else {
                    // Unbalanced parenthesis: treat the remainder as text.
                    terms.push(rest.to_ascii_lowercase());
                    break;
                }
            } else if lower.starts_with("filename:") {
                let after = &rest["filename:".len()..];
                let end = after.find(char::is_whitespace).unwrap_or(after.len());
                q.filename_exts.push(after[..end].to_ascii_lowercase());
                rest = &after[end..];
            } else {
                // Take the next whitespace-separated token as a term, but
                // keep multi-word phrases together when no operators are
                // present (hijacker queries like "wire transfer" should
                // match as a phrase).
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                terms.push(rest[..end].to_ascii_lowercase());
                rest = &rest[end..];
            }
        }
        // Adjacent bare terms form one phrase: "wire transfer" matches
        // the literal phrase first, falling back to all-terms-match.
        q.terms = terms;
        q
    }

    /// Whether the query has any effective criteria.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty() && !self.starred_only && self.filename_exts.is_empty()
    }
}

/// Run a query over a mailbox; excludes Trash and Spam (like default
/// webmail search) and returns ids in arrival order.
pub fn search(mailbox: &Mailbox, query: &SearchQuery) -> Vec<MessageId> {
    let phrase = query.terms.join(" ");
    mailbox
        .all_messages()
        .filter(|m| {
            !matches!(
                mailbox.folder_of(m.id),
                Some(Folder::Trash) | Some(Folder::Spam)
            )
        })
        .filter(|m| {
            if query.starred_only && !m.starred {
                return false;
            }
            if !query.filename_exts.is_empty() {
                let exts: Vec<&str> = query.filename_exts.iter().map(String::as_str).collect();
                if !m.has_attachment_ext(&exts) {
                    return false;
                }
            }
            if !query.terms.is_empty() {
                // Phrase match, falling back to all-terms match.
                if !(m.text_matches(&phrase)
                    || query.terms.iter().all(|t| m.text_matches(t)))
                {
                    return false;
                }
            }
            true
        })
        .map(|m| m.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, MessageKind};
    use mhw_types::{AccountId, EmailAddress, SimTime};

    fn mk(id: u32, subject: &str, body: &str, starred: bool, attachments: Vec<&str>) -> Message {
        Message {
            id: MessageId(id),
            owner: AccountId(0),
            from: EmailAddress::new("from", "x.com"),
            to: vec![],
            subject: subject.to_string(),
            body: body.to_string(),
            attachments: attachments.into_iter().map(String::from).collect(),
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::from_secs(id as u64),
            read: false,
            starred,
        }
    }

    fn mailbox() -> Mailbox {
        let mut mb = Mailbox::new();
        mb.store(
            mk(1, "Wire transfer receipt", "your bank confirmed the wire transfer", false, vec![]),
            Folder::Inbox,
        );
        mb.store(
            mk(2, "Vacation", "photos attached", true, vec!["beach.jpg", "sunset.png"]),
            Folder::Inbox,
        );
        mb.store(mk(3, "password reset", "your amazon password", false, vec![]), Folder::Inbox);
        mb.store(mk(4, "old wire transfer", "archived", false, vec![]), Folder::Trash);
        mb.store(mk(5, "spam transfer", "wire transfer scam", false, vec![]), Folder::Spam);
        mb
    }

    #[test]
    fn parse_bare_terms() {
        let q = SearchQuery::parse("wire transfer");
        assert_eq!(q.terms, vec!["wire", "transfer"]);
        assert!(!q.starred_only);
        assert!(q.filename_exts.is_empty());
    }

    #[test]
    fn parse_operators() {
        let q = SearchQuery::parse("filename:(jpg or jpeg or png) is:starred");
        assert!(q.starred_only);
        assert_eq!(q.filename_exts, vec!["jpg", "jpeg", "png"]);
        assert!(q.terms.is_empty());
    }

    #[test]
    fn parse_single_filename() {
        let q = SearchQuery::parse("filename:zip");
        assert_eq!(q.filename_exts, vec!["zip"]);
    }

    #[test]
    fn parse_mixed() {
        let q = SearchQuery::parse("passport filename:jpg");
        assert_eq!(q.terms, vec!["passport"]);
        assert_eq!(q.filename_exts, vec!["jpg"]);
    }

    #[test]
    fn parse_empty_and_unbalanced() {
        assert!(SearchQuery::parse("").is_empty());
        assert!(SearchQuery::parse("   ").is_empty());
        let q = SearchQuery::parse("filename:(jpg or png");
        assert!(!q.is_empty()); // degrades to a text term
    }

    #[test]
    fn phrase_search_matches() {
        let mb = mailbox();
        let hits = search(&mb, &SearchQuery::parse("wire transfer"));
        assert_eq!(hits, vec![MessageId(1)]); // trash/spam excluded
    }

    #[test]
    fn search_excludes_trash_and_spam() {
        let mb = mailbox();
        let hits = search(&mb, &SearchQuery::parse("transfer"));
        assert_eq!(hits, vec![MessageId(1)]);
    }

    #[test]
    fn starred_filter() {
        let mb = mailbox();
        let hits = search(&mb, &SearchQuery::parse("is:starred"));
        assert_eq!(hits, vec![MessageId(2)]);
    }

    #[test]
    fn filename_filter() {
        let mb = mailbox();
        let hits = search(&mb, &SearchQuery::parse("filename:(jpg or jpeg or png)"));
        assert_eq!(hits, vec![MessageId(2)]);
        let none = search(&mb, &SearchQuery::parse("filename:mp4"));
        assert!(none.is_empty());
    }

    #[test]
    fn chinese_terms_match() {
        let mut mb = mailbox();
        mb.store(mk(9, "您的账单", "本月账单已生成", false, vec![]), Folder::Inbox);
        let hits = search(&mb, &SearchQuery::parse("账单"));
        assert_eq!(hits, vec![MessageId(9)]);
    }

    #[test]
    fn multi_term_fallback_when_phrase_absent() {
        let mut mb = Mailbox::new();
        mb.store(
            mk(1, "transfer completed", "the wire arrived yesterday", false, vec![]),
            Folder::Inbox,
        );
        // Phrase "wire transfer" absent, but both terms present.
        let hits = search(&mb, &SearchQuery::parse("wire transfer"));
        assert_eq!(hits, vec![MessageId(1)]);
    }
}
