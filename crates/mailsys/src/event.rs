//! Provider activity log.
//!
//! The measurement pipeline in `mhw-core`/`mhw-analysis` consumes exactly
//! this log — the simulator's analogue of the Gmail activity logs Google
//! aggregated "via map-reduce computation" (§3). Each record is one
//! account-scoped action with a timestamp and the ground-truth [`Actor`].

use crate::mailbox::Folder;
use mhw_types::{AccountId, EmailAddress, FilterId, MessageId, SimTime};
use serde::{Deserialize, Serialize};

/// Re-exported ground-truth actor type (shared across the workspace).
pub use mhw_types::Actor;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MailEventKind {
    /// A message was sent from this account to `recipients` addresses.
    Sent { message: MessageId, recipients: usize },
    /// A message was delivered into this mailbox (`spam_foldered` if the
    /// provider's inbound filter routed it to Spam).
    Delivered { message: MessageId, spam_foldered: bool },
    /// A message was opened/read.
    Read { message: MessageId },
    /// A mailbox search was performed.
    Searched { query: String },
    /// A folder view was opened.
    FolderOpened { folder: Folder },
    /// The contact list was viewed.
    ContactsViewed { count: usize },
    /// A message was moved to a folder (incl. Trash = soft delete).
    Moved { message: MessageId, to: Folder },
    /// A message was permanently deleted (tombstoned).
    Purged { message: MessageId },
    /// A filter was created.
    FilterCreated { filter: FilterId },
    /// A filter was removed.
    FilterRemoved { filter: FilterId },
    /// The account-level Reply-To default was changed.
    ReplyToChanged { to: Option<EmailAddress> },
    /// A contact was removed (mass contact deletion tactic).
    ContactDeleted { address: EmailAddress },
    /// The user reported a received message as spam/phishing.
    ReportedSpam { message: MessageId },
}

/// One record in the provider activity log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MailEvent {
    pub at: SimTime,
    pub account: AccountId,
    pub actor: Actor,
    pub kind: MailEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize() {
        let e = MailEvent {
            at: SimTime::from_secs(60),
            account: AccountId(3),
            actor: Actor::Owner,
            kind: MailEventKind::Searched { query: "wire transfer".into() },
        };
        let j = serde_json::to_string(&e).unwrap();
        let back: MailEvent = serde_json::from_str(&j).unwrap();
        assert_eq!(back, e);
    }
}
