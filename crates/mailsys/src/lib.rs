//! # mhw-mailsys
//!
//! A simulated mail provider — the substrate on which every exploitation
//! behaviour in the paper plays out. It supports everything §5 observes
//! hijackers doing:
//!
//! * full-text **search** over a mailbox, including the `is:starred` and
//!   `filename:(…)` operators that appear verbatim among the paper's
//!   Table 3 hijacker search terms;
//! * the special **folders** hijackers open while assessing an account's
//!   value (Starred 16%, Drafts 11%, Sent 5%, Trash <1% — §5.2);
//! * **contacts**, the raw material of the scam/phishing exploitation
//!   and of the 36×-risk contact experiment (§5.3);
//! * **filters, forwarding and Reply-To**, the §5.4 "acting in the
//!   shadow" and doppelganger-diversion tactics (15% of 2012 cases had
//!   hijacker filters, 26% a hijacker Reply-To);
//! * **deletion with tombstones and a settings audit log**, so that the
//!   §6.4 remission process can restore hijacker-deleted content and
//!   revert hijacker-changed settings.
//!
//! Every mutating operation records who performed it (an [`Actor`]) and
//! appends a [`MailEvent`] to the provider's activity log. Ground-truth
//! actor labels exist for *measurement and remission only* — detection
//! code in `mhw-defense` never reads them.

pub mod event;
pub mod filters;
pub mod mailbox;
pub mod message;
pub mod provider;
pub mod search;

pub use event::{Actor, MailEvent, MailEventKind};
pub use filters::{FilterAction, MailFilter};
pub use mailbox::{ContactEntry, Folder, Mailbox};
pub use message::{Message, MessageDraft, MessageKind};
pub use provider::MailProvider;
pub use search::SearchQuery;
