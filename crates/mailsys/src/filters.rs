//! Mail filters and forwarding rules.
//!
//! §5.4 "Acting in the Shadow": hijackers "set up an email filter and
//! redirect all hijacker-initiated communication to the Trash or to the
//! Spam folder", and divert victim replies to doppelganger accounts via
//! forwarding rules. In the November 2012 sample, 15% of hijacked
//! accounts had hijacker-created forwarding rules. Filters here match on
//! sender and/or subject substring and either move the message on
//! delivery or forward a copy to an external address.

use crate::mailbox::Folder;
use crate::message::Message;
use mhw_types::{EmailAddress, FilterId};
use serde::{Deserialize, Serialize};

/// What a matching filter does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterAction {
    /// Route the message to a folder on delivery (Trash/Spam hiding).
    MoveTo(Folder),
    /// Forward a copy to an external address (doppelganger diversion),
    /// leaving the original in the Inbox.
    ForwardTo(EmailAddress),
    /// Forward and hide: copy out, original to Trash — the combined
    /// tactic that maximizes stealth.
    ForwardAndTrash(EmailAddress),
}

/// A delivery-time filter rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailFilter {
    pub id: FilterId,
    /// Match messages from this exact address (if set).
    pub match_from: Option<EmailAddress>,
    /// Match messages whose subject contains this (lower-cased) needle.
    pub match_subject_contains: Option<String>,
    /// `true` ⇒ match every inbound message (the "forward all" rule).
    pub match_all: bool,
    pub action: FilterAction,
}

impl MailFilter {
    /// Whether the filter matches an inbound message.
    pub fn matches(&self, m: &Message) -> bool {
        if self.match_all {
            return true;
        }
        let mut any_criterion = false;
        if let Some(from) = &self.match_from {
            any_criterion = true;
            if &m.from != from {
                return false;
            }
        }
        if let Some(needle) = &self.match_subject_contains {
            any_criterion = true;
            if !m.subject.to_ascii_lowercase().contains(&needle.to_ascii_lowercase()) {
                return false;
            }
        }
        any_criterion
    }

    /// Whether this filter forwards mail off the account — the signal
    /// the recovery review surfaces to the owner (§5.4: "it is essential
    /// during the account recovery process to have these settings
    /// reviewed … or automatically cleared").
    pub fn forwards_externally(&self) -> bool {
        matches!(
            self.action,
            FilterAction::ForwardTo(_) | FilterAction::ForwardAndTrash(_)
        )
    }
}

/// Apply the first matching filter (first-match-wins, like real filter
/// chains) and report the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Folder the message should be stored in (None ⇒ default Inbox).
    pub route_to: Option<Folder>,
    /// External address to forward a copy to, if any.
    pub forward_to: Option<EmailAddress>,
    /// The filter that fired, if any.
    pub fired: Option<FilterId>,
}

pub fn apply_filters(filters: &[MailFilter], m: &Message) -> FilterOutcome {
    for f in filters {
        if f.matches(m) {
            let (route_to, forward_to) = match &f.action {
                FilterAction::MoveTo(folder) => (Some(*folder), None),
                FilterAction::ForwardTo(addr) => (None, Some(addr.clone())),
                FilterAction::ForwardAndTrash(addr) => {
                    (Some(Folder::Trash), Some(addr.clone()))
                }
            };
            return FilterOutcome { route_to, forward_to, fired: Some(f.id) };
        }
    }
    FilterOutcome { route_to: None, forward_to: None, fired: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use mhw_types::{AccountId, MessageId, SimTime};

    fn msg(from: &str, subject: &str) -> Message {
        Message {
            id: MessageId(1),
            owner: AccountId(0),
            from: EmailAddress::new(from, "x.com"),
            to: vec![],
            subject: subject.to_string(),
            body: String::new(),
            attachments: vec![],
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::EPOCH,
            read: false,
            starred: false,
        }
    }

    fn fwd(id: u32, addr: &str) -> MailFilter {
        MailFilter {
            id: FilterId(id),
            match_from: None,
            match_subject_contains: None,
            match_all: true,
            action: FilterAction::ForwardTo(EmailAddress::new(addr, "dopp.com")),
        }
    }

    #[test]
    fn match_all_forwards_everything() {
        let filters = vec![fwd(1, "evil")];
        let out = apply_filters(&filters, &msg("anyone", "anything"));
        assert_eq!(out.fired, Some(FilterId(1)));
        assert_eq!(out.forward_to.unwrap().local(), "evil");
        assert_eq!(out.route_to, None);
    }

    #[test]
    fn from_criterion() {
        let f = MailFilter {
            id: FilterId(2),
            match_from: Some(EmailAddress::new("alice", "x.com")),
            match_subject_contains: None,
            match_all: false,
            action: FilterAction::MoveTo(Folder::Trash),
        };
        assert!(f.matches(&msg("alice", "hi")));
        assert!(!f.matches(&msg("bob", "hi")));
    }

    #[test]
    fn subject_criterion_is_case_insensitive() {
        let f = MailFilter {
            id: FilterId(3),
            match_from: None,
            match_subject_contains: Some("Urgent Help".into()),
            match_all: false,
            action: FilterAction::MoveTo(Folder::Spam),
        };
        assert!(f.matches(&msg("x", "RE: URGENT HELP needed")));
        assert!(!f.matches(&msg("x", "lunch?")));
    }

    #[test]
    fn both_criteria_must_hold() {
        let f = MailFilter {
            id: FilterId(4),
            match_from: Some(EmailAddress::new("alice", "x.com")),
            match_subject_contains: Some("wire".into()),
            match_all: false,
            action: FilterAction::MoveTo(Folder::Trash),
        };
        assert!(f.matches(&msg("alice", "wire details")));
        assert!(!f.matches(&msg("alice", "hello")));
        assert!(!f.matches(&msg("bob", "wire details")));
    }

    #[test]
    fn criterionless_non_matchall_filter_never_fires() {
        let f = MailFilter {
            id: FilterId(5),
            match_from: None,
            match_subject_contains: None,
            match_all: false,
            action: FilterAction::MoveTo(Folder::Trash),
        };
        assert!(!f.matches(&msg("x", "y")));
    }

    #[test]
    fn first_match_wins() {
        let filters = vec![
            MailFilter {
                id: FilterId(1),
                match_from: None,
                match_subject_contains: Some("wire".into()),
                match_all: false,
                action: FilterAction::MoveTo(Folder::Spam),
            },
            fwd(2, "evil"),
        ];
        let out = apply_filters(&filters, &msg("x", "wire transfer"));
        assert_eq!(out.fired, Some(FilterId(1)));
        assert_eq!(out.route_to, Some(Folder::Spam));
        assert!(out.forward_to.is_none());
    }

    #[test]
    fn forward_and_trash_does_both() {
        let filters = vec![MailFilter {
            id: FilterId(6),
            match_from: None,
            match_subject_contains: None,
            match_all: true,
            action: FilterAction::ForwardAndTrash(EmailAddress::new("d", "dopp.com")),
        }];
        let out = apply_filters(&filters, &msg("x", "y"));
        assert_eq!(out.route_to, Some(Folder::Trash));
        assert!(out.forward_to.is_some());
    }

    #[test]
    fn external_forwarding_detection() {
        assert!(fwd(1, "e").forwards_externally());
        let mover = MailFilter {
            id: FilterId(2),
            match_from: None,
            match_subject_contains: None,
            match_all: true,
            action: FilterAction::MoveTo(Folder::Trash),
        };
        assert!(!mover.forwards_externally());
    }

    #[test]
    fn no_filters_default_route() {
        let out = apply_filters(&[], &msg("x", "y"));
        assert_eq!(out, FilterOutcome { route_to: None, forward_to: None, fired: None });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::MessageKind;
    use mhw_types::{AccountId, MessageId, SimTime};
    use proptest::prelude::*;

    fn msg_with_subject(subject: &str) -> Message {
        Message {
            id: MessageId(0),
            owner: AccountId(0),
            from: EmailAddress::new("someone", "x.com"),
            to: vec![],
            subject: subject.to_string(),
            body: String::new(),
            attachments: vec![],
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::EPOCH,
            read: false,
            starred: false,
        }
    }

    proptest! {
        /// First-match-wins: the outcome always corresponds to the first
        /// matching filter in chain order.
        #[test]
        fn first_match_wins_always(subjects in proptest::collection::vec("[a-c]{1,4}", 1..8), needle in "[a-c]{1,2}") {
            let filters: Vec<MailFilter> = subjects
                .iter()
                .enumerate()
                .map(|(i, s)| MailFilter {
                    id: FilterId(i as u32),
                    match_from: None,
                    match_subject_contains: Some(s.clone()),
                    match_all: false,
                    action: FilterAction::MoveTo(Folder::Trash),
                })
                .collect();
            let m = msg_with_subject(&needle);
            let outcome = apply_filters(&filters, &m);
            let expected = filters.iter().find(|f| f.matches(&m)).map(|f| f.id);
            prop_assert_eq!(outcome.fired, expected);
        }

        /// A match-all filter at position 0 shadows everything behind it.
        #[test]
        fn match_all_shadows(rest in proptest::collection::vec("[a-z]{1,4}", 0..5)) {
            let mut filters = vec![MailFilter {
                id: FilterId(0),
                match_from: None,
                match_subject_contains: None,
                match_all: true,
                action: FilterAction::MoveTo(Folder::Spam),
            }];
            for (i, s) in rest.iter().enumerate() {
                filters.push(MailFilter {
                    id: FilterId(1 + i as u32),
                    match_from: None,
                    match_subject_contains: Some(s.clone()),
                    match_all: false,
                    action: FilterAction::MoveTo(Folder::Trash),
                });
            }
            let out = apply_filters(&filters, &msg_with_subject("whatever"));
            prop_assert_eq!(out.fired, Some(FilterId(0)));
            prop_assert_eq!(out.route_to, Some(Folder::Spam));
        }
    }
}
