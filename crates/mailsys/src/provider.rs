//! The mail provider: account registry, delivery, and the activity log.
//!
//! [`MailProvider`] is the single authority for every mailbox in the
//! ecosystem. All reads and writes go through methods that append to the
//! provider activity log — the simulator's analogue of the raw logs
//! Google's measurement jobs aggregated (§3). Inbound spam decisions are
//! delegated to a caller-supplied classifier closure so this crate stays
//! independent of `mhw-defense`.

use crate::event::{Actor, MailEvent, MailEventKind};
use crate::filters::{apply_filters, FilterAction, MailFilter};
use crate::mailbox::{ContactEntry, Folder, Mailbox};
use crate::message::{Message, MessageDraft};
use crate::search::{search, SearchQuery};
use mhw_obs::{MetricId, Registry};
use mhw_types::{
    AccountId, EmailAddress, EventSink, FilterId, Interner, LogStore, MessageId, ShardId, SimTime,
    Sym,
};

/// Messages sent from internal accounts (one per Sent event).
pub const M_MESSAGES_SENT: MetricId = MetricId("mailsys.messages_sent");
/// Copies delivered into internal mailboxes (any folder).
pub const M_MAIL_DELIVERED: MetricId = MetricId("mailsys.mail_delivered");
/// Delivered copies the inbound classifier routed to Spam.
pub const M_MAIL_SPAM_FOLDERED: MetricId = MetricId("mailsys.mail_spam_foldered");
/// Mailbox searches run (Dataset 6 raw volume).
pub const M_SEARCHES: MetricId = MetricId("mailsys.searches");
/// Messages users reported as spam/phishing.
pub const M_SPAM_REPORTS: MetricId = MetricId("mailsys.spam_reports");

/// Audit record of a settings change (used by remission).
#[derive(Debug, Clone)]
pub struct SettingsAudit<T> {
    pub at: SimTime,
    pub actor: Actor,
    pub old: T,
    pub new: T,
}

/// Per-account state held by the provider. The account's primary
/// address lives in the provider-wide address interner (symbol index ==
/// account index), not here.
#[derive(Debug, Clone, Default)]
struct AccountState {
    mailbox: Mailbox,
    filters: Vec<MailFilter>,
    reply_to: Option<EmailAddress>,
    filter_audit: Vec<(FilterId, Actor, SimTime)>,
    reply_to_audit: Vec<SettingsAudit<Option<EmailAddress>>>,
}

/// The simulated mail provider.
#[derive(Debug, Clone)]
pub struct MailProvider {
    accounts: Vec<AccountState>,
    /// Every registered primary address, interned in account order —
    /// so the symbol for an account's address *is* its dense account
    /// index, and address → account resolution is one table probe with
    /// no separate reverse map.
    addresses: Interner<EmailAddress>,
    next_message: u32,
    next_filter: u32,
    log: LogStore<MailEvent>,
    metrics: Registry,
}

impl Default for MailProvider {
    fn default() -> Self {
        MailProvider {
            accounts: Vec::new(),
            addresses: Interner::new(),
            next_message: 0,
            next_filter: 0,
            log: LogStore::default(),
            metrics: Registry::new()
                .with_counter(M_MESSAGES_SENT)
                .with_counter(M_MAIL_DELIVERED)
                .with_counter(M_MAIL_SPAM_FOLDERED)
                .with_counter(M_SEARCHES)
                .with_counter(M_SPAM_REPORTS),
        }
    }
}

/// Message-id namespace stride per logical shard (see
/// `LoginLog::for_shard` for the same convention on session ids).
const SHARD_ID_NAMESPACE: u32 = 1 << 24;

impl MailProvider {
    pub fn new() -> Self {
        Self::default()
    }

    /// A provider owned by logical shard `shard`: activity-log entries
    /// carry the shard id and message ids come from a per-shard
    /// namespace, so independently running shards never collide.
    pub fn for_shard(shard: ShardId) -> Self {
        MailProvider {
            log: LogStore::for_shard(shard),
            next_message: shard as u32 * SHARD_ID_NAMESPACE,
            ..Self::default()
        }
    }

    /// Register an account with its primary address.
    ///
    /// # Panics
    /// Panics if the address is already registered.
    pub fn create_account(&mut self, address: EmailAddress) -> AccountId {
        assert!(
            self.addresses.lookup(&address).is_none(),
            "address {address} already registered"
        );
        let id = AccountId::from_index(self.accounts.len());
        self.accounts.push(AccountState::default());
        let sym = self.addresses.intern(address);
        debug_assert_eq!(sym.index(), id.index(), "address symbols track account ids");
        id
    }

    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Primary address of an account.
    pub fn address_of(&self, id: AccountId) -> &EmailAddress {
        self.addresses.resolve(Sym::from_index(id.index()))
    }

    /// Resolve an address to an internal account, if it is one of ours.
    pub fn resolve(&self, address: &EmailAddress) -> Option<AccountId> {
        self.addresses.lookup(address).map(|sym| AccountId::from_index(sym.index()))
    }

    /// Immutable mailbox access (measurement only).
    pub fn mailbox(&self, id: AccountId) -> &Mailbox {
        &self.accounts[id.index()].mailbox
    }

    /// Mutable mailbox access (remission restore operations).
    pub fn mailbox_mut(&mut self, id: AccountId) -> &mut Mailbox {
        &mut self.accounts[id.index()].mailbox
    }

    /// The full activity log (a columnar segment; iterate it for
    /// stamped entries, or use [`LogStore::iter_from`] for incremental
    /// cursor-based consumers).
    pub fn log(&self) -> &LogStore<MailEvent> {
        &self.log
    }

    /// The underlying segment (for cross-shard merging).
    pub fn log_store(&self) -> &LogStore<MailEvent> {
        &self.log
    }

    /// The provider's metrics registry (send/delivery/search counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    fn push_event(&mut self, at: SimTime, account: AccountId, actor: Actor, kind: MailEventKind) {
        self.log.emit(at, MailEvent { at, account, actor, kind });
    }

    fn alloc_message(&mut self) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        id
    }

    // ---- sending & delivery ----

    /// Send a message from an internal account.
    ///
    /// One copy lands in the sender's Sent folder; each recipient who is
    /// an internal account receives a delivered copy, routed through
    /// their filters, with `classify_spam` deciding whether the
    /// provider's inbound filter sends it to Spam. Returns the Sent-copy
    /// id and the ids of delivered copies.
    pub fn send(
        &mut self,
        from: AccountId,
        actor: Actor,
        draft: MessageDraft,
        at: SimTime,
        mut classify_spam: impl FnMut(&Message) -> bool,
    ) -> (MessageId, Vec<MessageId>) {
        let from_addr = self.address_of(from).clone();
        let sent_id = self.alloc_message();
        let sent_copy = Message {
            id: sent_id,
            owner: from,
            from: from_addr.clone(),
            to: draft.to.clone(),
            subject: draft.subject.clone(),
            body: draft.body.clone(),
            attachments: draft.attachments.clone(),
            kind: draft.kind,
            reply_to: draft.reply_to.clone(),
            at,
            read: true,
            starred: false,
        };
        self.accounts[from.index()].mailbox.store(sent_copy, Folder::Sent);
        self.metrics.inc(M_MESSAGES_SENT);
        self.push_event(
            at,
            from,
            actor,
            MailEventKind::Sent { message: sent_id, recipients: draft.to.len() },
        );

        let mut delivered = Vec::new();
        for recipient in &draft.to {
            if let Some(rcpt_id) = self.resolve(recipient) {
                let id = self.deliver_internal(
                    rcpt_id,
                    from_addr.clone(),
                    &draft,
                    at,
                    &mut classify_spam,
                );
                delivered.push(id);
            }
            // External recipients leave our logs at the Sent event.
        }
        (sent_id, delivered)
    }

    /// Deliver mail that originates *outside* the provider (phishing
    /// lures from external infrastructure, external correspondents).
    pub fn deliver_external(
        &mut self,
        to: AccountId,
        from: EmailAddress,
        draft: &MessageDraft,
        at: SimTime,
        mut classify_spam: impl FnMut(&Message) -> bool,
    ) -> MessageId {
        self.deliver_internal(to, from, draft, at, &mut classify_spam)
    }

    fn deliver_internal(
        &mut self,
        to: AccountId,
        from: EmailAddress,
        draft: &MessageDraft,
        at: SimTime,
        classify_spam: &mut impl FnMut(&Message) -> bool,
    ) -> MessageId {
        let id = self.alloc_message();
        let msg = Message {
            id,
            owner: to,
            from,
            to: draft.to.clone(),
            subject: draft.subject.clone(),
            body: draft.body.clone(),
            attachments: draft.attachments.clone(),
            kind: draft.kind,
            reply_to: draft.reply_to.clone(),
            at,
            read: false,
            starred: false,
        };
        let spam = classify_spam(&msg);
        // User filters run on mail the spam filter lets through.
        let outcome = if spam {
            crate::filters::FilterOutcome {
                route_to: Some(Folder::Spam),
                forward_to: None,
                fired: None,
            }
        } else {
            apply_filters(&self.accounts[to.index()].filters, &msg)
        };
        let folder = outcome.route_to.unwrap_or(Folder::Inbox);
        // Forwarded copies leave the provider (doppelgangers are
        // external); the Sent-style event trail is the filter audit.
        self.accounts[to.index()].mailbox.store(msg, folder);
        self.metrics.inc(M_MAIL_DELIVERED);
        if spam {
            self.metrics.inc(M_MAIL_SPAM_FOLDERED);
        }
        self.push_event(
            at,
            to,
            Actor::System,
            MailEventKind::Delivered { message: id, spam_foldered: spam },
        );
        id
    }

    // ---- reading & browsing ----

    /// Open a message, marking it read.
    pub fn read_message(&mut self, account: AccountId, actor: Actor, id: MessageId, at: SimTime) {
        if let Some(m) = self.accounts[account.index()].mailbox.get_mut(id) {
            m.read = true;
            self.push_event(at, account, actor, MailEventKind::Read { message: id });
        }
    }

    /// Run a search, logging the raw query string (Dataset 6 is exactly
    /// this log restricted to hijacker sessions).
    pub fn search_mailbox(
        &mut self,
        account: AccountId,
        actor: Actor,
        raw_query: &str,
        at: SimTime,
    ) -> Vec<MessageId> {
        let q = SearchQuery::parse(raw_query);
        let hits = search(&self.accounts[account.index()].mailbox, &q);
        self.metrics.inc(M_SEARCHES);
        self.push_event(
            at,
            account,
            actor,
            MailEventKind::Searched { query: raw_query.to_string() },
        );
        hits
    }

    /// Open a folder view.
    pub fn open_folder(
        &mut self,
        account: AccountId,
        actor: Actor,
        folder: Folder,
        at: SimTime,
    ) -> Vec<MessageId> {
        let ids = self.accounts[account.index()].mailbox.list_folder(folder);
        self.push_event(at, account, actor, MailEventKind::FolderOpened { folder });
        ids
    }

    /// View the contact list.
    pub fn view_contacts(
        &mut self,
        account: AccountId,
        actor: Actor,
        at: SimTime,
    ) -> Vec<ContactEntry> {
        let contacts = self.accounts[account.index()].mailbox.contacts().to_vec();
        self.push_event(
            at,
            account,
            actor,
            MailEventKind::ContactsViewed { count: contacts.len() },
        );
        contacts
    }

    pub fn add_contact(&mut self, account: AccountId, entry: ContactEntry) {
        self.accounts[account.index()].mailbox.add_contact(entry);
    }

    pub fn delete_contact(
        &mut self,
        account: AccountId,
        actor: Actor,
        address: &EmailAddress,
        at: SimTime,
    ) -> bool {
        let ok = self.accounts[account.index()].mailbox.delete_contact(address, at);
        if ok {
            self.push_event(
                at,
                account,
                actor,
                MailEventKind::ContactDeleted { address: address.clone() },
            );
        }
        ok
    }

    // ---- moving & deleting ----

    pub fn move_message(
        &mut self,
        account: AccountId,
        actor: Actor,
        id: MessageId,
        to: Folder,
        at: SimTime,
    ) -> bool {
        let ok = self.accounts[account.index()].mailbox.move_to(id, to).is_some();
        if ok {
            self.push_event(at, account, actor, MailEventKind::Moved { message: id, to });
        }
        ok
    }

    pub fn purge_message(
        &mut self,
        account: AccountId,
        actor: Actor,
        id: MessageId,
        at: SimTime,
    ) -> bool {
        let ok = self.accounts[account.index()].mailbox.purge(id, at);
        if ok {
            self.push_event(at, account, actor, MailEventKind::Purged { message: id });
        }
        ok
    }

    /// Purge every live message — the §5.4 mass-deletion tactic.
    /// Returns the number of messages deleted.
    pub fn mass_delete(&mut self, account: AccountId, actor: Actor, at: SimTime) -> usize {
        let ids: Vec<MessageId> = self.accounts[account.index()]
            .mailbox
            .all_messages()
            .map(|m| m.id)
            .collect();
        for id in &ids {
            self.purge_message(account, actor, *id, at);
        }
        ids.len()
    }

    // ---- filters & reply-to ----

    /// Install a filter; the id is allocated by the provider.
    #[allow(clippy::too_many_arguments)]
    pub fn create_filter(
        &mut self,
        account: AccountId,
        actor: Actor,
        match_from: Option<EmailAddress>,
        match_subject_contains: Option<String>,
        match_all: bool,
        action: FilterAction,
        at: SimTime,
    ) -> FilterId {
        let id = FilterId(self.next_filter);
        self.next_filter += 1;
        self.accounts[account.index()].filters.push(MailFilter {
            id,
            match_from,
            match_subject_contains,
            match_all,
            action,
        });
        self.accounts[account.index()].filter_audit.push((id, actor, at));
        self.push_event(at, account, actor, MailEventKind::FilterCreated { filter: id });
        id
    }

    pub fn remove_filter(
        &mut self,
        account: AccountId,
        actor: Actor,
        id: FilterId,
        at: SimTime,
    ) -> bool {
        let filters = &mut self.accounts[account.index()].filters;
        let Some(pos) = filters.iter().position(|f| f.id == id) else {
            return false;
        };
        filters.remove(pos);
        self.push_event(at, account, actor, MailEventKind::FilterRemoved { filter: id });
        true
    }

    /// Active filters on an account.
    pub fn filters(&self, account: AccountId) -> &[MailFilter] {
        &self.accounts[account.index()].filters
    }

    /// Filters created at or after `since`, with their creating actor —
    /// the remission review surface.
    pub fn filters_created_since(
        &self,
        account: AccountId,
        since: SimTime,
    ) -> Vec<(FilterId, Actor)> {
        self.accounts[account.index()]
            .filter_audit
            .iter()
            .filter(|(_, _, at)| *at >= since)
            .map(|(id, actor, _)| (*id, *actor))
            .collect()
    }

    /// Change the account-level default Reply-To (26% of 2012 hijack
    /// cases had a hijacker-configured Reply-To, §5.4).
    pub fn set_reply_to(
        &mut self,
        account: AccountId,
        actor: Actor,
        to: Option<EmailAddress>,
        at: SimTime,
    ) {
        let state = &mut self.accounts[account.index()];
        let old = state.reply_to.clone();
        state.reply_to = to.clone();
        state.reply_to_audit.push(SettingsAudit { at, actor, old, new: to.clone() });
        self.push_event(at, account, actor, MailEventKind::ReplyToChanged { to });
    }

    pub fn reply_to(&self, account: AccountId) -> Option<&EmailAddress> {
        self.accounts[account.index()].reply_to.as_ref()
    }

    /// The Reply-To value that was in effect just before `since`
    /// (for remission rollback). `None` if it was never changed.
    pub fn reply_to_before(&self, account: AccountId, since: SimTime) -> Option<Option<EmailAddress>> {
        let audit = &self.accounts[account.index()].reply_to_audit;
        // First change at/after `since` carries the pre-hijack value.
        audit.iter().find(|a| a.at >= since).map(|a| a.old.clone())
    }

    /// User reports a received message as spam/phishing (feeds the §5.3
    /// "39% more spam reports on hijack day" measurement).
    pub fn report_spam(&mut self, account: AccountId, id: MessageId, at: SimTime) {
        self.metrics.inc(M_SPAM_REPORTS);
        self.push_event(at, account, Actor::Owner, MailEventKind::ReportedSpam { message: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    fn addr(local: &str) -> EmailAddress {
        EmailAddress::new(local, "homemail.com")
    }

    fn never_spam(_: &Message) -> bool {
        false
    }

    fn setup2() -> (MailProvider, AccountId, AccountId) {
        let mut p = MailProvider::new();
        let a = p.create_account(addr("alice"));
        let b = p.create_account(addr("bob"));
        (p, a, b)
    }

    #[test]
    fn create_and_resolve() {
        let (p, a, b) = setup2();
        assert_eq!(p.account_count(), 2);
        assert_eq!(p.resolve(&addr("alice")), Some(a));
        assert_eq!(p.resolve(&addr("bob")), Some(b));
        assert_eq!(p.resolve(&addr("carol")), None);
        assert_eq!(p.address_of(a), &addr("alice"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_address_rejected() {
        let mut p = MailProvider::new();
        p.create_account(addr("alice"));
        p.create_account(addr("alice"));
    }

    #[test]
    fn send_stores_sent_copy_and_delivers() {
        let (mut p, a, b) = setup2();
        let draft = MessageDraft::personal(vec![addr("bob")], "hi", "hello bob");
        let (sent, delivered) = p.send(a, Actor::Owner, draft, SimTime::from_secs(10), never_spam);
        assert_eq!(delivered.len(), 1);
        assert_eq!(p.mailbox(a).list_folder(Folder::Sent), vec![sent]);
        assert_eq!(p.mailbox(b).list_folder(Folder::Inbox), vec![delivered[0]]);
        // The log has a Sent and a Delivered record.
        assert!(p.log().iter().any(|e| matches!(
            &e.kind,
            MailEventKind::Sent { recipients: 1, .. }
        ) && e.account == a));
        assert!(p.log().iter().any(|e| matches!(
            &e.kind,
            MailEventKind::Delivered { spam_foldered: false, .. }
        ) && e.account == b));
    }

    #[test]
    fn external_recipients_only_log_sent() {
        let (mut p, a, _) = setup2();
        let ext = EmailAddress::new("someone", "elsewhere.net");
        let draft = MessageDraft::personal(vec![ext], "hi", "x");
        let (_, delivered) = p.send(a, Actor::Owner, draft, SimTime::from_secs(5), never_spam);
        assert!(delivered.is_empty());
    }

    #[test]
    fn spam_classifier_routes_to_spam() {
        let (mut p, _, b) = setup2();
        let lure = MessageDraft::personal(vec![addr("bob")], "verify your account", "click")
            .with_kind(MessageKind::PhishingLure);
        let id = p.deliver_external(
            b,
            EmailAddress::new("phisher", "evil.net"),
            &lure,
            SimTime::from_secs(20),
            |m| m.kind == MessageKind::PhishingLure,
        );
        assert_eq!(p.mailbox(b).folder_of(id), Some(Folder::Spam));
        assert!(p.log().iter().any(|e| matches!(
            &e.kind,
            MailEventKind::Delivered { spam_foldered: true, .. }
        )));
    }

    #[test]
    fn user_filters_apply_on_clean_mail() {
        let (mut p, _, b) = setup2();
        p.create_filter(
            b,
            Actor::Owner,
            None,
            Some("newsletter".into()),
            false,
            FilterAction::MoveTo(Folder::Trash),
            SimTime::from_secs(1),
        );
        let d = MessageDraft::personal(vec![addr("bob")], "Weekly Newsletter", "content");
        let id = p.deliver_external(
            b,
            EmailAddress::new("list", "news.org"),
            &d,
            SimTime::from_secs(2),
            never_spam,
        );
        assert_eq!(p.mailbox(b).folder_of(id), Some(Folder::Trash));
    }

    #[test]
    fn read_marks_message() {
        let (mut p, a, b) = setup2();
        let d = MessageDraft::personal(vec![addr("bob")], "s", "b");
        let (_, delivered) = p.send(a, Actor::Owner, d, SimTime::from_secs(1), never_spam);
        let id = delivered[0];
        assert!(!p.mailbox(b).get(id).unwrap().read);
        p.read_message(b, Actor::Owner, id, SimTime::from_secs(2));
        assert!(p.mailbox(b).get(id).unwrap().read);
    }

    #[test]
    fn search_logs_query() {
        let (mut p, a, _) = setup2();
        p.search_mailbox(a, Actor::Hijacker(mhw_types::CrewId(0)), "wire transfer", SimTime::from_secs(9));
        let rec = p
            .log()
            .iter()
            .find(|e| matches!(&e.kind, MailEventKind::Searched { .. }))
            .unwrap();
        assert_eq!(rec.actor, Actor::Hijacker(mhw_types::CrewId(0)));
        match &rec.kind {
            MailEventKind::Searched { query } => assert_eq!(query, "wire transfer"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn folder_open_and_contacts_logged() {
        let (mut p, a, _) = setup2();
        p.add_contact(a, ContactEntry { address: addr("bob"), internal: None });
        p.open_folder(a, Actor::Owner, Folder::Starred, SimTime::from_secs(1));
        let contacts = p.view_contacts(a, Actor::Owner, SimTime::from_secs(2));
        assert_eq!(contacts.len(), 1);
        assert!(p.log().iter().any(|e| matches!(
            &e.kind,
            MailEventKind::FolderOpened { folder: Folder::Starred }
        )));
        assert!(p
            .log()
            .iter()
            .any(|e| matches!(&e.kind, MailEventKind::ContactsViewed { count: 1 })));
    }

    #[test]
    fn mass_delete_and_restore() {
        let (mut p, a, b) = setup2();
        for i in 0..5 {
            let d = MessageDraft::personal(vec![addr("bob")], &format!("m{i}"), "x");
            p.send(a, Actor::Owner, d, SimTime::from_secs(i), never_spam);
        }
        let crew = Actor::Hijacker(mhw_types::CrewId(1));
        let hijack_at = SimTime::from_secs(100);
        let n = p.mass_delete(b, crew, hijack_at);
        assert_eq!(n, 5);
        assert!(p.mailbox(b).is_empty());
        // Remission restores the mailbox.
        let restored = p.mailbox_mut(b).restore_purged_since(hijack_at);
        assert_eq!(restored, 5);
        assert_eq!(p.mailbox(b).len(), 5);
    }

    #[test]
    fn metrics_track_send_delivery_and_spam() {
        let (mut p, a, b) = setup2();
        let d = MessageDraft::personal(vec![addr("bob")], "hi", "x");
        p.send(a, Actor::Owner, d, SimTime::from_secs(1), never_spam);
        let lure = MessageDraft::personal(vec![addr("bob")], "verify", "click")
            .with_kind(MessageKind::PhishingLure);
        p.deliver_external(
            b,
            EmailAddress::new("phisher", "evil.net"),
            &lure,
            SimTime::from_secs(2),
            |m| m.kind == MessageKind::PhishingLure,
        );
        p.search_mailbox(b, Actor::Owner, "verify", SimTime::from_secs(3));
        let m = p.metrics();
        assert_eq!(m.counter_value(M_MESSAGES_SENT), Some(1));
        assert_eq!(m.counter_value(M_MAIL_DELIVERED), Some(2));
        assert_eq!(m.counter_value(M_MAIL_SPAM_FOLDERED), Some(1));
        assert_eq!(m.counter_value(M_SEARCHES), Some(1));
    }

    #[test]
    fn filter_audit_supports_remission() {
        let (mut p, a, _) = setup2();
        let owner_f = p.create_filter(
            a,
            Actor::Owner,
            None,
            Some("news".into()),
            false,
            FilterAction::MoveTo(Folder::Trash),
            SimTime::from_secs(10),
        );
        let crew = Actor::Hijacker(mhw_types::CrewId(0));
        let hijack_at = SimTime::from_secs(100);
        let evil_f = p.create_filter(
            a,
            crew,
            None,
            None,
            true,
            FilterAction::ForwardTo(EmailAddress::new("dopp", "evil.net")),
            hijack_at,
        );
        let created = p.filters_created_since(a, hijack_at);
        assert_eq!(created, vec![(evil_f, crew)]);
        assert!(p.remove_filter(a, Actor::System, evil_f, SimTime::from_secs(200)));
        assert!(!p.remove_filter(a, Actor::System, evil_f, SimTime::from_secs(201)));
        assert_eq!(p.filters(a).len(), 1);
        assert_eq!(p.filters(a)[0].id, owner_f);
    }

    #[test]
    fn reply_to_audit_rollback_value() {
        let (mut p, a, _) = setup2();
        let crew = Actor::Hijacker(mhw_types::CrewId(0));
        let hijack_at = SimTime::from_secs(50);
        assert_eq!(p.reply_to(a), None);
        p.set_reply_to(a, crew, Some(EmailAddress::new("dopp", "evil.net")), hijack_at);
        assert!(p.reply_to(a).is_some());
        // Remission looks up the pre-hijack value.
        assert_eq!(p.reply_to_before(a, hijack_at), Some(None));
        // No change since a later time → nothing to roll back.
        assert_eq!(p.reply_to_before(a, SimTime::from_secs(500)), None);
    }
}
