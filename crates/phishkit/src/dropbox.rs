//! Credential dropboxes.
//!
//! Phishing pages deliver captured credentials to a *dropbox* (in the
//! wild, typically a free webmail account — Moore & Clayton's phishing
//! dropboxes, cited as \[19\] in the paper). Crews drain their dropbox
//! during working hours. Two properties matter for the measurements:
//!
//! * queueing: credentials submitted outside crew hours wait, producing
//!   the long tail of the Figure 7 access-delay CDF;
//! * suspension: dropboxes get suspended (the paper cites this as a
//!   reason "not all of the decoy accounts were accessed"), losing the
//!   credentials still queued in them.

use mhw_types::{CountryCode, CrewId, EmailAddress, PageId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How faithfully the victim typed their real password into the form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CredentialExactness {
    /// Exactly the real password.
    Exact,
    /// A trivial variant (typo, case slip, dropped trailing digit) —
    /// crews recover these by retrying (§5.1's 75%-correct figure).
    TrivialVariant,
    /// Garbage (victim typed a wrong/fake password).
    Wrong,
}

/// One captured credential.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedCredential {
    pub address: EmailAddress,
    /// The literal string the victim typed.
    pub password_typed: String,
    pub exactness: CredentialExactness,
    pub page: PageId,
    pub captured_at: SimTime,
    /// The country the victim submitted from — phishing pages see the
    /// victim's IP, and crews use it to pick a plausible login proxy
    /// (the "IP cloaking services" of §8.1).
    pub victim_country: Option<CountryCode>,
    /// Decoy credentials are honeypots injected by the defender
    /// (Dataset 4); ground truth for the Figure 7 experiment.
    pub is_decoy: bool,
}

/// A crew's credential dropbox (FIFO queue with suspension).
#[derive(Debug, Clone)]
pub struct Dropbox {
    pub crew: CrewId,
    queue: VecDeque<CapturedCredential>,
    suspended_at: Option<SimTime>,
    /// Count of credentials lost to suspension.
    lost: usize,
    total_received: usize,
}

impl Dropbox {
    pub fn new(crew: CrewId) -> Self {
        Dropbox {
            crew,
            queue: VecDeque::new(),
            suspended_at: None,
            lost: 0,
            total_received: 0,
        }
    }

    /// Whether the dropbox still receives mail at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        self.suspended_at.map(|s| t < s).unwrap_or(true)
    }

    /// Deliver a captured credential. Returns `false` (and drops it) if
    /// the dropbox is suspended.
    pub fn deliver(&mut self, credential: CapturedCredential) -> bool {
        if !self.is_active(credential.captured_at) {
            self.lost += 1;
            return false;
        }
        self.total_received += 1;
        self.queue.push_back(credential);
        true
    }

    /// Suspend the dropbox at `t`; credentials still queued are lost
    /// (the provider hosting the dropbox wiped the account).
    pub fn suspend(&mut self, t: SimTime) {
        if self.suspended_at.is_none() {
            self.suspended_at = Some(t);
            self.lost += self.queue.len();
            self.queue.clear();
        }
    }

    /// Pop the oldest credential (crew work loop).
    pub fn pop(&mut self) -> Option<CapturedCredential> {
        self.queue.pop_front()
    }

    /// Peek without consuming.
    pub fn peek(&self) -> Option<&CapturedCredential> {
        self.queue.front()
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn lost(&self) -> usize {
        self.lost
    }

    pub fn total_received(&self) -> usize {
        self.total_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(at: u64, local: &str) -> CapturedCredential {
        CapturedCredential {
            address: EmailAddress::new(local, "homemail.com"),
            password_typed: "hunter2".into(),
            exactness: CredentialExactness::Exact,
            page: PageId(0),
            captured_at: SimTime::from_secs(at),
            victim_country: None,
            is_decoy: false,
        }
    }

    #[test]
    fn fifo_order() {
        let mut d = Dropbox::new(CrewId(0));
        assert!(d.deliver(cred(1, "a")));
        assert!(d.deliver(cred(2, "b")));
        assert_eq!(d.pop().unwrap().address.local(), "a");
        assert_eq!(d.pop().unwrap().address.local(), "b");
        assert!(d.pop().is_none());
    }

    #[test]
    fn suspension_drops_queued_and_future() {
        let mut d = Dropbox::new(CrewId(0));
        d.deliver(cred(1, "a"));
        d.deliver(cred(2, "b"));
        d.suspend(SimTime::from_secs(10));
        assert_eq!(d.pending(), 0);
        assert_eq!(d.lost(), 2);
        // Later deliveries bounce.
        assert!(!d.deliver(cred(20, "c")));
        assert_eq!(d.lost(), 3);
        // Deliveries timestamped before suspension still land (mail in
        // flight), matching is_active semantics.
        assert!(d.deliver(cred(5, "d")));
    }

    #[test]
    fn suspend_is_idempotent() {
        let mut d = Dropbox::new(CrewId(0));
        d.deliver(cred(1, "a"));
        d.suspend(SimTime::from_secs(10));
        let lost = d.lost();
        d.suspend(SimTime::from_secs(20));
        assert_eq!(d.lost(), lost);
        assert!(!d.is_active(SimTime::from_secs(15)));
    }

    #[test]
    fn counters_track() {
        let mut d = Dropbox::new(CrewId(0));
        d.deliver(cred(1, "a"));
        d.deliver(cred(2, "b"));
        assert_eq!(d.total_received(), 2);
        assert_eq!(d.pending(), 2);
        assert_eq!(d.peek().unwrap().address.local(), "a");
        d.pop();
        assert_eq!(d.total_received(), 2);
        assert_eq!(d.pending(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Deliveries pop in FIFO order regardless of interleaved pops,
        /// and the conservation law received = popped + pending + lost
        /// always holds.
        #[test]
        fn fifo_and_conservation(ops in proptest::collection::vec(0u8..3, 1..100)) {
            let mut d = Dropbox::new(CrewId(0));
            let mut delivered_order = Vec::new();
            let mut popped = Vec::new();
            let mut seq = 0u64;
            for op in ops {
                match op {
                    0 | 1 => {
                        let c = CapturedCredential {
                            address: EmailAddress::new(format!("v{seq}"), "homemail.com"),
                            password_typed: "pw".into(),
                            exactness: CredentialExactness::Exact,
                            page: PageId(0),
                            captured_at: SimTime::from_secs(seq),
                            victim_country: None,
                            is_decoy: false,
                        };
                        seq += 1;
                        if d.deliver(c.clone()) {
                            delivered_order.push(c.address);
                        }
                    }
                    _ => {
                        if let Some(c) = d.pop() {
                            popped.push(c.address);
                        }
                    }
                }
            }
            // FIFO: popped is a prefix of delivered_order.
            prop_assert_eq!(&popped[..], &delivered_order[..popped.len()]);
            // Conservation.
            prop_assert_eq!(
                d.total_received(),
                popped.len() + d.pending()
            );
        }

        /// After suspension, nothing is ever delivered again and pending
        /// drops to zero.
        #[test]
        fn suspension_is_final(n_before in 0u64..20, n_after in 1u64..20) {
            let mut d = Dropbox::new(CrewId(1));
            let mk = |i: u64| CapturedCredential {
                address: EmailAddress::new(format!("c{i}"), "homemail.com"),
                password_typed: "pw".into(),
                exactness: CredentialExactness::Exact,
                page: PageId(0),
                captured_at: SimTime::from_secs(1000 + i),
                victim_country: None,
                is_decoy: false,
            };
            for i in 0..n_before {
                d.deliver(mk(i));
            }
            d.suspend(SimTime::from_secs(500));
            prop_assert_eq!(d.pending(), 0);
            for i in 0..n_after {
                prop_assert!(!d.deliver(mk(100 + i)));
            }
            prop_assert_eq!(d.lost() as u64, n_before + n_after);
        }
    }
}
