//! Phishing pages and their HTTP logs.
//!
//! A page is a credential-harvesting form (the paper's Dataset 3 pages
//! were Google Forms). Its HTTP log of GETs and POSTs is the raw data
//! behind Figures 3–6: referrer breakdown, phished-address TLDs,
//! per-page conversion, and the arrival time series.

use mhw_netmodel::referrer::Referrer;
use mhw_simclock::SimRng;
use mhw_types::{AccountCategory, CampaignId, EmailAddress, PageId, SimTime};
use serde::{Deserialize, Serialize};

/// Execution quality of a phishing page, the driver of per-page
/// conversion (Figure 5). §4.2: pages "with low submission rates were
/// very poorly executed and contained only a form asking for a username
/// and password"; the best page converted at 45%, the worst at 3%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageQuality {
    /// Bare username/password form, no branding.
    Poor,
    /// Copies some branding, visible flaws.
    Mediocre,
    /// Convincing clone of the target's sign-in page.
    Good,
    /// Pixel-faithful clone with plausible URL and flow.
    Excellent,
}

impl PageQuality {
    pub const ALL: [PageQuality; 4] = [
        PageQuality::Poor,
        PageQuality::Mediocre,
        PageQuality::Good,
        PageQuality::Excellent,
    ];

    /// Mean conversion (POST per GET) for this quality tier. The
    /// tier mix in [`PageQuality::sample`] is calibrated so the overall
    /// mean lands at the paper's 13.7%.
    pub fn base_conversion(self) -> f64 {
        match self {
            PageQuality::Poor => 0.04,
            PageQuality::Mediocre => 0.10,
            PageQuality::Good => 0.18,
            PageQuality::Excellent => 0.38,
        }
    }

    /// Draw a quality from the calibrated ecosystem mix.
    pub fn sample(rng: &mut SimRng) -> PageQuality {
        // Mix: 22% poor, 38% mediocre, 30% good, 10% excellent
        // → mean conversion ≈ .22*.04 + .38*.10 + .30*.18 + .10*.38 = 0.1388.
        let i = rng
            .weighted_index(&[0.22, 0.38, 0.30, 0.10])
            .expect("static weights");
        PageQuality::ALL[i]
    }
}

/// HTTP request method on a phishing form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpMethod {
    /// Page view.
    Get,
    /// Form submission.
    Post,
}

/// One request in a page's HTTP log.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    pub at: SimTime,
    pub method: HttpMethod,
    pub referrer: Referrer,
    /// Address the victim typed into the form (POSTs only).
    pub submitted_address: Option<EmailAddress>,
}

/// A phishing page.
#[derive(Debug, Clone)]
pub struct PhishingPage {
    pub id: PageId,
    pub campaign: CampaignId,
    pub category: AccountCategory,
    pub quality: PageQuality,
    pub created_at: SimTime,
    /// Set when the detection pipeline takes the page down.
    pub taken_down_at: Option<SimTime>,
    /// HTTP log, time-ordered.
    pub http_log: Vec<HttpRequest>,
}

impl PhishingPage {
    pub fn new(
        id: PageId,
        campaign: CampaignId,
        category: AccountCategory,
        quality: PageQuality,
        created_at: SimTime,
    ) -> Self {
        PhishingPage {
            id,
            campaign,
            category,
            quality,
            created_at,
            taken_down_at: None,
            http_log: Vec::new(),
        }
    }

    /// Whether the page still serves at `t`.
    pub fn is_live(&self, t: SimTime) -> bool {
        t >= self.created_at && self.taken_down_at.map(|d| t < d).unwrap_or(true)
    }

    /// Record a page view.
    pub fn record_get(&mut self, at: SimTime, referrer: Referrer) {
        debug_assert!(self.is_live(at), "requests must hit a live page");
        self.http_log.push(HttpRequest {
            at,
            method: HttpMethod::Get,
            referrer,
            submitted_address: None,
        });
    }

    /// Record a form submission.
    pub fn record_post(&mut self, at: SimTime, referrer: Referrer, address: EmailAddress) {
        debug_assert!(self.is_live(at), "requests must hit a live page");
        self.http_log.push(HttpRequest {
            at,
            method: HttpMethod::Post,
            referrer,
            submitted_address: Some(address),
        });
    }

    /// First request time (the paper computes arrival series "from the
    /// time when the page was first visited").
    pub fn first_visit(&self) -> Option<SimTime> {
        self.http_log.first().map(|r| r.at)
    }

    pub fn views(&self) -> usize {
        self.http_log.iter().filter(|r| r.method == HttpMethod::Get).count()
    }

    pub fn submissions(&self) -> usize {
        self.http_log.iter().filter(|r| r.method == HttpMethod::Post).count()
    }

    /// POST / GET conversion, the Figure 5 metric. `None` with no views.
    pub fn success_rate(&self) -> Option<f64> {
        let v = self.views();
        if v == 0 {
            None
        } else {
            Some(self.submissions() as f64 / v as f64)
        }
    }

    /// Hourly submission counts from first visit to takedown (or the
    /// last request), the Figure 6 series.
    pub fn hourly_submissions(&self) -> Vec<u32> {
        let Some(start) = self.first_visit() else {
            return Vec::new();
        };
        let end = self
            .taken_down_at
            .or_else(|| self.http_log.last().map(|r| r.at))
            .unwrap_or(start);
        let hours = (end.since(start).as_secs() / 3600 + 1) as usize;
        let mut series = vec![0u32; hours];
        for r in &self.http_log {
            if r.method == HttpMethod::Post {
                let h = (r.at.since(start).as_secs() / 3600) as usize;
                if h < series.len() {
                    series[h] += 1;
                }
            }
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::HOUR;

    fn page() -> PhishingPage {
        PhishingPage::new(
            PageId(0),
            CampaignId(0),
            AccountCategory::Mail,
            PageQuality::Good,
            SimTime::from_secs(0),
        )
    }

    fn addr(i: u32) -> EmailAddress {
        EmailAddress::new(format!("v{i}"), "stateuniv.edu")
    }

    #[test]
    fn quality_tiers_average_to_paper_mean() {
        let mut rng = SimRng::from_seed(3);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| PageQuality::sample(&mut rng).base_conversion())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.137).abs() < 0.01, "mean conversion {mean}");
    }

    #[test]
    fn quality_range_covers_paper_extremes() {
        assert!(PageQuality::Poor.base_conversion() <= 0.05);
        assert!(PageQuality::Excellent.base_conversion() >= 0.30);
    }

    #[test]
    fn success_rate_counts_posts_over_gets() {
        let mut p = page();
        for i in 0..10 {
            p.record_get(SimTime::from_secs(i * 60), Referrer::Blank);
        }
        p.record_post(SimTime::from_secs(601), Referrer::Blank, addr(0));
        p.record_post(SimTime::from_secs(602), Referrer::Blank, addr(1));
        assert_eq!(p.views(), 10);
        assert_eq!(p.submissions(), 2);
        assert!((p.success_rate().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_page_has_no_rate() {
        assert_eq!(page().success_rate(), None);
        assert_eq!(page().first_visit(), None);
        assert!(page().hourly_submissions().is_empty());
    }

    #[test]
    fn liveness_window() {
        let mut p = page();
        assert!(p.is_live(SimTime::from_secs(100)));
        p.taken_down_at = Some(SimTime::from_secs(1000));
        assert!(p.is_live(SimTime::from_secs(999)));
        assert!(!p.is_live(SimTime::from_secs(1000)));
    }

    #[test]
    fn hourly_series_buckets_correctly() {
        let mut p = page();
        p.record_get(SimTime::from_secs(10), Referrer::Blank); // first visit t=10
        p.record_post(SimTime::from_secs(20), Referrer::Blank, addr(0)); // hour 0
        p.record_post(SimTime::from_secs(10 + HOUR + 5), Referrer::Blank, addr(1)); // hour 1
        p.record_post(SimTime::from_secs(10 + 3 * HOUR), Referrer::Blank, addr(2)); // hour 3
        p.taken_down_at = Some(SimTime::from_secs(10 + 4 * HOUR));
        let series = p.hourly_submissions();
        assert_eq!(series, vec![1, 1, 0, 1, 0]);
    }

    #[test]
    fn submitted_addresses_recorded() {
        let mut p = page();
        p.record_get(SimTime::from_secs(1), Referrer::Blank);
        p.record_post(SimTime::from_secs(2), Referrer::Blank, addr(7));
        let posts: Vec<_> = p
            .http_log
            .iter()
            .filter(|r| r.method == HttpMethod::Post)
            .collect();
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].submitted_address.as_ref().unwrap().tld(), "edu");
    }
}
