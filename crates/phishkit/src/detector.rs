//! Anti-phishing detection and takedown.
//!
//! The SafeBrowsing-like pipeline detects phishing pages "while indexing
//! the web" (§3: 16,000–25,000 pages per week across the Internet during
//! 2012–13) and takes down provider-hosted forms (Dataset 3). Detection
//! latency determines how long a page collects credentials — which
//! bounds both Figure 6's series length and the volume of stolen
//! credentials entering crew dropboxes.

use crate::page::{PageQuality, PhishingPage};
use mhw_obs::{buckets, MetricId, Registry};
use mhw_simclock::SimRng;
use mhw_types::{PageId, SimDuration, SimTime, HOUR};
use serde::{Deserialize, Serialize};

/// Phishing pages put up (one per page the pipeline processed).
pub const M_PAGES_UP: MetricId = MetricId("phishkit.pages_up");
/// Pages stamped with a takedown time.
pub const M_PAGES_TAKEN_DOWN: MetricId = MetricId("phishkit.pages_taken_down");
/// Page lifetime (creation → takedown), simulated seconds.
pub const M_PAGE_LIFETIME_SECS: MetricId = MetricId("phishkit.page_lifetime_secs");

/// Outcome of the pipeline for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TakedownRecord {
    pub page: PageId,
    pub detected_at: SimTime,
    pub taken_down_at: SimTime,
}

/// Detection/takedown latency model.
#[derive(Debug, Clone)]
pub struct DetectionPipeline {
    /// Median detection delay for a typical page, in hours.
    pub median_detection_hours: f64,
    /// Log-normal sigma of the detection delay.
    pub sigma: f64,
    /// Takedown lag after detection, in hours (propagation/processing).
    pub takedown_lag_hours: f64,
    metrics: Registry,
}

impl Default for DetectionPipeline {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl DetectionPipeline {
    /// Calibrated so typical pages live ~1–2 days (Figure 6's standard
    /// series run out within tens of hours) while well-executed pages
    /// survive somewhat longer (the outlier ran for several days).
    pub fn paper_calibrated() -> Self {
        DetectionPipeline {
            median_detection_hours: 26.0,
            sigma: 0.7,
            takedown_lag_hours: 2.0,
            metrics: Registry::new()
                .with_counter(M_PAGES_UP)
                .with_counter(M_PAGES_TAKEN_DOWN)
                .with_histogram(M_PAGE_LIFETIME_SECS, buckets::LATENCY_SECS),
        }
    }

    /// The pipeline's metrics registry (page volume and lifetimes).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Draw the detection time for a page created at `created_at`.
    /// Better-executed pages evade crawler heuristics a little longer.
    pub fn detection_time(
        &self,
        created_at: SimTime,
        quality: PageQuality,
        rng: &mut SimRng,
    ) -> SimTime {
        let quality_factor = match quality {
            PageQuality::Poor => 0.7,
            PageQuality::Mediocre => 0.9,
            PageQuality::Good => 1.1,
            PageQuality::Excellent => 1.5,
        };
        let mu = (self.median_detection_hours * quality_factor).ln();
        let hours = rng.lognormal(mu, self.sigma);
        created_at.plus(SimDuration::from_secs((hours * HOUR as f64) as u64))
    }

    /// Process a page: stamp its takedown time and return the record.
    pub fn process(&self, page: &mut PhishingPage, rng: &mut SimRng) -> TakedownRecord {
        let detected_at = self.detection_time(page.created_at, page.quality, rng);
        let taken_down_at =
            detected_at.plus(SimDuration::from_secs((self.takedown_lag_hours * HOUR as f64) as u64));
        page.taken_down_at = Some(taken_down_at);
        self.metrics.inc(M_PAGES_UP);
        self.metrics.inc(M_PAGES_TAKEN_DOWN);
        self.metrics
            .observe(M_PAGE_LIFETIME_SECS, taken_down_at.since(page.created_at).as_secs());
        TakedownRecord { page: page.id, detected_at, taken_down_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::{AccountCategory, CampaignId, DAY};

    #[test]
    fn detection_median_is_calibrated() {
        let pipe = DetectionPipeline::paper_calibrated();
        let mut rng = SimRng::from_seed(21);
        let n = 10_001;
        let mut delays: Vec<u64> = (0..n)
            .map(|_| {
                pipe.detection_time(SimTime::EPOCH, PageQuality::Good, &mut rng)
                    .as_secs()
            })
            .collect();
        delays.sort();
        let median_hours = delays[n / 2] as f64 / HOUR as f64;
        // Good pages: 26 * 1.1 ≈ 28.6 h median.
        assert!((median_hours - 28.6).abs() < 2.0, "median {median_hours}");
    }

    #[test]
    fn better_pages_live_longer_on_average() {
        let pipe = DetectionPipeline::paper_calibrated();
        let mean = |q: PageQuality, seed: u64| {
            let mut rng = SimRng::from_seed(seed);
            (0..4000)
                .map(|_| pipe.detection_time(SimTime::EPOCH, q, &mut rng).as_secs() as f64)
                .sum::<f64>()
                / 4000.0
        };
        assert!(mean(PageQuality::Excellent, 1) > mean(PageQuality::Poor, 1));
    }

    #[test]
    fn process_stamps_takedown_after_detection() {
        let pipe = DetectionPipeline::paper_calibrated();
        let mut rng = SimRng::from_seed(23);
        let mut page = PhishingPage::new(
            PageId(7),
            CampaignId(0),
            AccountCategory::Bank,
            PageQuality::Mediocre,
            SimTime::from_secs(DAY),
        );
        let rec = pipe.process(&mut page, &mut rng);
        assert_eq!(rec.page, PageId(7));
        assert!(rec.detected_at > page.created_at);
        assert_eq!(
            rec.taken_down_at.since(rec.detected_at).as_secs(),
            2 * HOUR
        );
        assert_eq!(page.taken_down_at, Some(rec.taken_down_at));
        // Metrics observed the page and its lifetime.
        assert_eq!(pipe.metrics().counter_value(M_PAGES_UP), Some(1));
        let snap = pipe.metrics().snapshot();
        let lifetime = snap.histogram(M_PAGE_LIFETIME_SECS.name()).unwrap();
        assert_eq!(lifetime.total, 1);
        assert_eq!(lifetime.sum, rec.taken_down_at.since(page.created_at).as_secs());
    }
}
