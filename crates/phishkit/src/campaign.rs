//! Phishing campaigns and their victim traffic.
//!
//! A campaign is one lure blast plus the page it points at. Its arrival
//! process reproduces the two shapes of Figure 6:
//!
//! * the **standard pattern** — "a clear decay, from the moment the
//!   webpage receives its first visitors until it is taken down …
//!   consistent with a mass mailed email, with clicks centered around
//!   the initial delivery time";
//! * the **high-volume outlier** — "a huge number of submissions after a
//!   step function following a gentle diurnal pattern through several
//!   days", with an initial ~15-hour quiet period "best explained by the
//!   attackers testing the page themselves before launching".
//!
//! Victim identity is supplied by a sampler so the orchestrator can draw
//! internal (home-provider) victims from the population; a synthetic
//! external sampler is provided for §4.2-style pages, where directory
//! harvesting plus spam-filter modulation produces Figure 4's `.edu`
//! skew.

use crate::page::PhishingPage;
use mhw_netmodel::domains::DomainModel;
use mhw_netmodel::referrer::ReferrerModel;
use mhw_simclock::{DiurnalProfile, PoissonProcess, SimRng};
use mhw_types::{AccountCategory, CampaignId, CrewId, EmailAddress, EmailDomainClass, SimDuration, SimTime};

/// Arrival shape of a campaign (Figure 6).
#[derive(Debug, Clone)]
pub enum CampaignShape {
    /// Mass-mailed blast with decaying clicks.
    MassBlast {
        /// Initial click rate, per hour.
        peak_rate_per_hour: f64,
        /// Click-decay half-life.
        half_life: SimDuration,
    },
    /// The large-scale outlier: quiet period, then a diurnal plateau.
    LargeScaleOutlier {
        /// Testing-phase duration before launch (~15 h in the paper).
        quiet: SimDuration,
        /// Plateau click rate, per hour.
        plateau_rate_per_hour: f64,
    },
}

/// A victim drawn for one page visit.
#[derive(Debug, Clone)]
pub struct VictimProfile {
    pub address: EmailAddress,
    pub domain_class: EmailDomainClass,
    /// Per-victim multiplier on the page's conversion probability.
    pub gullibility: f64,
}

/// One successful credential submission (POST) by a victim.
#[derive(Debug, Clone)]
pub struct Submission {
    pub at: SimTime,
    pub victim: VictimProfile,
}

/// A phishing campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub id: CampaignId,
    pub crew: CrewId,
    pub category: AccountCategory,
    pub shape: CampaignShape,
    pub launched_at: SimTime,
}

impl Campaign {
    /// Drive traffic onto `page` until it is taken down or `horizon`
    /// passes. Each arrival records a GET (with a referrer drawn from
    /// the lure-click referrer model); converting victims also record a
    /// POST. Returns the submissions in time order.
    pub fn run_traffic(
        &self,
        page: &mut PhishingPage,
        referrers: &ReferrerModel,
        mut sample_victim: impl FnMut(&mut SimRng) -> VictimProfile,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Submission> {
        let mut submissions = Vec::new();
        let process = self.arrival_process();
        let start = self.traffic_start();

        // Outlier campaigns: the crew tests its own page right after
        // standing it up (a handful of GETs with blank referrers), then
        // the quiet period runs until the blast goes out.
        if let CampaignShape::LargeScaleOutlier { .. } = &self.shape {
            let tests = 2 + rng.below(4);
            for i in 0..tests {
                let t = self
                    .launched_at
                    .plus(SimDuration::from_secs(600 + i * 1800 + rng.below(900)));
                if page.is_live(t) && t <= horizon {
                    page.record_get(t, mhw_netmodel::referrer::Referrer::Blank);
                }
            }
        }

        let mut t = start;
        while let Some(next) = process.next_after(t, horizon, rng) {
            t = next;
            if !page.is_live(t) {
                break;
            }
            let referrer = referrers.sample_referrer(rng);
            page.record_get(t, referrer);
            let victim = sample_victim(rng);
            let p = (page.quality.base_conversion() * victim.gullibility).clamp(0.0, 0.95);
            if rng.chance(p) {
                page.record_post(t, referrer, victim.address.clone());
                submissions.push(Submission { at: t, victim });
            }
        }
        submissions
    }

    fn traffic_start(&self) -> SimTime {
        match &self.shape {
            CampaignShape::MassBlast { .. } => self.launched_at,
            CampaignShape::LargeScaleOutlier { quiet, .. } => self.launched_at.plus(*quiet),
        }
    }

    fn arrival_process(&self) -> PoissonProcess {
        match &self.shape {
            CampaignShape::MassBlast { peak_rate_per_hour, half_life } => {
                PoissonProcess::homogeneous(*peak_rate_per_hour)
                    .with_decay(*half_life, self.launched_at)
            }
            CampaignShape::LargeScaleOutlier { plateau_rate_per_hour, .. } => {
                PoissonProcess::homogeneous(*plateau_rate_per_hour)
                    .with_profile(DiurnalProfile::human(0))
            }
        }
    }
}

/// Synthetic external-victim sampler for §4.2-style pages.
///
/// Crews harvest target lists from public sources; university
/// directories dominate (they are scrapeable), and commodity spam
/// filtering lets ~10× more lure mail through to self-hosted domains
/// (§4.2). The sampler composes both effects: list composition ×
/// delivery-rate thinning. The resulting *arrivals* are >99% `.edu`
/// (Figure 4).
pub fn external_victim_sampler(
    domains: &DomainModel,
) -> impl FnMut(&mut SimRng) -> VictimProfile + '_ {
    move |rng: &mut SimRng| {
        loop {
            let tag = rng.below(1 << 30);
            // List composition: overwhelmingly directory-harvested
            // university addresses (US directories are the largest and
            // easiest to scrape), with a thin mixed tail.
            let candidate = if rng.chance(0.992) {
                let weights: Vec<f64> = domains
                    .edu
                    .iter()
                    .map(|d| if d.tld() == "edu" { 100.0 } else { 1.0 })
                    .collect();
                let i = rng.weighted_index(&weights).expect("edu pool non-empty");
                EmailAddress::new(format!("user{tag}"), domains.edu[i].name.clone())
            } else {
                domains.random_external_address(rng, tag, 0.4, 0.0, 0.6)
            };
            let class = domains.class_of(&candidate);
            // Delivery thinning relative to the best-delivering class.
            let p_deliver = class.spam_delivery_multiplier() / 10.0;
            if rng.chance(p_deliver) {
                let gullibility = 0.7 + rng.f64() * 0.6; // 0.7..1.3
                return VictimProfile { address: candidate, domain_class: class, gullibility };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageQuality, PhishingPage};
    use mhw_types::{PageId, DAY, HOUR};

    fn page(quality: PageQuality) -> PhishingPage {
        PhishingPage::new(PageId(0), CampaignId(0), AccountCategory::Mail, quality, SimTime::EPOCH)
    }

    fn flat_victim(rng: &mut SimRng) -> VictimProfile {
        let tag = rng.below(1 << 20);
        VictimProfile {
            address: EmailAddress::new(format!("v{tag}"), "stateuniv.edu"),
            domain_class: EmailDomainClass::SelfHostedEdu,
            gullibility: 1.0,
        }
    }

    fn blast(peak: f64, half_life_hours: u64) -> Campaign {
        Campaign {
            id: CampaignId(0),
            crew: CrewId(0),
            category: AccountCategory::Mail,
            shape: CampaignShape::MassBlast {
                peak_rate_per_hour: peak,
                half_life: SimDuration::from_hours(half_life_hours),
            },
            launched_at: SimTime::EPOCH,
        }
    }

    #[test]
    fn mass_blast_decays() {
        let campaign = blast(120.0, 6);
        let mut p = page(PageQuality::Good);
        let refs = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(42);
        campaign.run_traffic(&mut p, &refs, flat_victim, SimTime::from_secs(3 * DAY), &mut rng);
        // Views in the first 6 hours far exceed views in hours 24–30.
        let early = p
            .http_log
            .iter()
            .filter(|r| r.at.as_secs() < 6 * HOUR)
            .count();
        let late = p
            .http_log
            .iter()
            .filter(|r| (24 * HOUR..30 * HOUR).contains(&r.at.as_secs()))
            .count();
        assert!(early > 10 * late.max(1), "early {early} late {late}");
    }

    #[test]
    fn conversion_tracks_page_quality() {
        let refs = ReferrerModel::paper_calibrated();
        let mut rates = Vec::new();
        for q in [PageQuality::Poor, PageQuality::Excellent] {
            let campaign = blast(400.0, 24);
            let mut p = page(q);
            let mut rng = SimRng::from_seed(7);
            campaign.run_traffic(&mut p, &refs, flat_victim, SimTime::from_secs(2 * DAY), &mut rng);
            rates.push(p.success_rate().unwrap());
        }
        assert!(rates[0] < 0.08, "poor page rate {}", rates[0]);
        assert!(rates[1] > 0.25, "excellent page rate {}", rates[1]);
    }

    #[test]
    fn outlier_has_quiet_period_then_plateau() {
        let campaign = Campaign {
            id: CampaignId(1),
            crew: CrewId(0),
            category: AccountCategory::Mail,
            shape: CampaignShape::LargeScaleOutlier {
                quiet: SimDuration::from_hours(15),
                plateau_rate_per_hour: 200.0,
            },
            launched_at: SimTime::EPOCH,
        };
        let mut p = page(PageQuality::Excellent);
        let refs = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(9);
        campaign.run_traffic(&mut p, &refs, flat_victim, SimTime::from_secs(4 * DAY), &mut rng);
        // Quiet period: only the crew's own few test GETs, no POSTs.
        let quiet_posts = p
            .http_log
            .iter()
            .filter(|r| {
                r.at.as_secs() < 15 * HOUR && r.method == crate::page::HttpMethod::Post
            })
            .count();
        assert_eq!(quiet_posts, 0);
        let quiet_gets = p
            .http_log
            .iter()
            .filter(|r| r.at.as_secs() < 15 * HOUR)
            .count();
        assert!((1..=6).contains(&quiet_gets), "quiet gets {quiet_gets}");
        // Plateau: sustained volume on later days.
        let day2 = p
            .http_log
            .iter()
            .filter(|r| (DAY..2 * DAY).contains(&r.at.as_secs()))
            .count();
        let day3 = p
            .http_log
            .iter()
            .filter(|r| (2 * DAY..3 * DAY).contains(&r.at.as_secs()))
            .count();
        assert!(day2 > 1000 && day3 > 1000, "plateau days {day2}/{day3}");
        // Diurnal, not flat: some hours of day 2 are much busier than others.
        let mut by_hour = [0u32; 24];
        for r in p.http_log.iter().filter(|r| (DAY..2 * DAY).contains(&r.at.as_secs())) {
            by_hour[r.at.hour_of_day() as usize] += 1;
        }
        let max = *by_hour.iter().max().unwrap() as f64;
        let min = *by_hour.iter().min().unwrap() as f64;
        assert!(max > 1.8 * min.max(1.0), "diurnal spread {min}..{max}");
    }

    #[test]
    fn traffic_stops_at_takedown() {
        let campaign = blast(300.0, 48);
        let mut p = page(PageQuality::Good);
        p.taken_down_at = Some(SimTime::from_secs(6 * HOUR));
        let refs = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(11);
        campaign.run_traffic(&mut p, &refs, flat_victim, SimTime::from_secs(2 * DAY), &mut rng);
        assert!(p
            .http_log
            .iter()
            .all(|r| r.at.as_secs() < 6 * HOUR));
    }

    #[test]
    fn external_sampler_produces_edu_skew() {
        let domains = DomainModel::standard();
        let mut rng = SimRng::from_seed(13);
        let mut sampler = external_victim_sampler(&domains);
        let n = 20_000;
        let edu = (0..n)
            .filter(|_| sampler(&mut rng).address.tld() == "edu")
            .count();
        let frac = edu as f64 / n as f64;
        // Figure 4: the vast majority (>99%) of phished addresses are .edu.
        assert!(frac > 0.985, "edu TLD fraction {frac}");
        assert!(frac < 1.0, "a non-.edu tail must exist for Figure 4's x-axis");
        let edu_class = {
            let mut s2 = external_victim_sampler(&domains);
            (0..n)
                .filter(|_| s2(&mut rng).domain_class == EmailDomainClass::SelfHostedEdu)
                .count() as f64
                / n as f64
        };
        assert!(edu_class > 0.985, "edu-class fraction {edu_class}");
    }

    #[test]
    fn submissions_are_time_ordered() {
        let campaign = blast(200.0, 12);
        let mut p = page(PageQuality::Good);
        let refs = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(15);
        let subs =
            campaign.run_traffic(&mut p, &refs, flat_victim, SimTime::from_secs(DAY), &mut rng);
        assert!(!subs.is_empty());
        for w in subs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
