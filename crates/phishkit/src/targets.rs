//! Phishing targets and lure emails.
//!
//! Table 2 gives the category mix of what phishers ask for — email
//! credentials first (35% of emails, 27% of pages), banking second
//! (21% / 25%), then app stores, social networks and a long tail.
//! §4.1: of 100 curated phishing emails, 62 carried a URL to a phishing
//! page and 38 asked the victim to reply with credentials.

use mhw_simclock::SimRng;
use mhw_types::{AccountCategory, CampaignId, EmailAddress, SimTime};
use serde::{Deserialize, Serialize};

/// A category mix over [`AccountCategory`], used to draw what a lure or
/// page phishes for.
#[derive(Debug, Clone)]
pub struct TargetMix {
    /// Weights aligned with `AccountCategory::ALL`.
    weights: [f64; 5],
}

impl TargetMix {
    /// The email-lure mix of Table 2 (Mail 35, Bank 21, App Store 16,
    /// Social 14, Other 14).
    pub fn email_lures() -> Self {
        TargetMix { weights: [35.0, 21.0, 16.0, 14.0, 14.0] }
    }

    /// The phishing-page mix of Table 2 (Mail 27, Bank 25, App Store 17,
    /// Social 15, Other 15).
    pub fn pages() -> Self {
        TargetMix { weights: [27.0, 25.0, 17.0, 15.0, 15.0] }
    }

    /// A custom mix.
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative.
    pub fn custom(weights: [f64; 5]) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "weights must be non-negative");
        assert!(weights.iter().sum::<f64>() > 0.0, "weights must not all be zero");
        TargetMix { weights }
    }

    /// Draw a category.
    pub fn sample(&self, rng: &mut SimRng) -> AccountCategory {
        let i = rng.weighted_index(&self.weights).expect("mix is non-degenerate");
        AccountCategory::ALL[i]
    }

    /// Expected fraction of a category.
    pub fn fraction(&self, cat: AccountCategory) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let i = AccountCategory::ALL.iter().position(|c| *c == cat).unwrap();
        self.weights[i] / total
    }
}

/// How a lure email tries to capture credentials (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LureStructure {
    /// Contains a URL pointing at a phishing page.
    LinkToPage,
    /// No URL; asks the victim to reply with their credentials.
    ReplyWithCredentials,
}

/// A phishing lure email (the thing Dataset 1 samples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LureEmail {
    pub campaign: CampaignId,
    pub category: AccountCategory,
    pub structure: LureStructure,
    pub subject: String,
    pub body: String,
    pub sent_at: SimTime,
    pub to: EmailAddress,
}

/// Subject/body template bank per category. The texts instantiate the
/// classic false pretexts (§4: "impending account deactivation").
pub fn lure_text(category: AccountCategory, structure: LureStructure) -> (String, String) {
    let (service, pretext) = match category {
        AccountCategory::Mail => ("HomeMail", "your mailbox has exceeded its storage quota"),
        AccountCategory::Bank => ("First Example Bank", "unusual activity was detected on your account"),
        AccountCategory::AppStore => ("AppMarket", "your payment method could not be verified"),
        AccountCategory::SocialNetwork => ("FriendSphere", "your profile was reported and will be suspended"),
        AccountCategory::Other => ("WebPortal", "your subscription is about to be deactivated"),
    };
    let subject = format!("Action required: {service} account verification");
    let body = match structure {
        LureStructure::LinkToPage => format!(
            "Dear customer, {pretext}. To avoid interruption, verify your \
             account within 24 hours at our secure portal: \
             http://secure-{}-verify.example/login. Failure to comply will \
             result in permanent deactivation.",
            service.to_ascii_lowercase()
        ),
        LureStructure::ReplyWithCredentials => format!(
            "Dear customer, {pretext}. To avoid interruption, reply to this \
             message with your username and password so our technical team \
             can re-validate your account. Failure to comply will result in \
             permanent deactivation."
        ),
    };
    (subject, body)
}

/// Draw the structure with the §4.1 proportions (62% link / 38% reply).
pub fn sample_structure(rng: &mut SimRng) -> LureStructure {
    if rng.chance(0.62) {
        LureStructure::LinkToPage
    } else {
        LureStructure::ReplyWithCredentials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_mix_matches_table2() {
        let m = TargetMix::email_lures();
        assert!((m.fraction(AccountCategory::Mail) - 0.35).abs() < 1e-9);
        assert!((m.fraction(AccountCategory::Bank) - 0.21).abs() < 1e-9);
    }

    #[test]
    fn page_mix_matches_table2() {
        // Table 2's page column sums to 99 reviewed pages.
        let m = TargetMix::pages();
        assert!((m.fraction(AccountCategory::Mail) - 27.0 / 99.0).abs() < 1e-9);
        assert!((m.fraction(AccountCategory::Bank) - 25.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_converges_to_mix() {
        let m = TargetMix::email_lures();
        let mut rng = SimRng::from_seed(1);
        let n = 50_000;
        let mail = (0..n)
            .filter(|_| m.sample(&mut rng) == AccountCategory::Mail)
            .count();
        let frac = mail as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.01, "mail fraction {frac}");
    }

    #[test]
    fn structure_split_is_62_38() {
        let mut rng = SimRng::from_seed(2);
        let n = 50_000;
        let links = (0..n)
            .filter(|_| sample_structure(&mut rng) == LureStructure::LinkToPage)
            .count();
        let frac = links as f64 / n as f64;
        assert!((frac - 0.62).abs() < 0.01, "link fraction {frac}");
    }

    #[test]
    fn link_lures_contain_urls_and_reply_lures_do_not() {
        for cat in AccountCategory::ALL {
            let (_, with_url) = lure_text(cat, LureStructure::LinkToPage);
            assert!(with_url.contains("http://"), "{cat} link lure lacks URL");
            let (_, reply) = lure_text(cat, LureStructure::ReplyWithCredentials);
            assert!(!reply.contains("http://"), "{cat} reply lure has URL");
            assert!(reply.contains("password"), "{cat} reply lure must ask for creds");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn custom_mix_validates() {
        TargetMix::custom([1.0, -1.0, 0.0, 0.0, 0.0]);
    }
}
