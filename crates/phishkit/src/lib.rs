//! # mhw-phishkit
//!
//! The phishing substrate: lure emails, credential-harvesting pages,
//! their HTTP traffic, credential dropboxes, and the SafeBrowsing-like
//! detection/takedown pipeline.
//!
//! This crate generates the raw material of the paper's §4 ("Attack
//! Vectors") measurements:
//!
//! * **Table 2** — lures and pages carry an [`AccountCategory`] target
//!   drawn from the crews' category mix;
//! * **§4.1** — lure emails either carry a URL (62/100) or ask for a
//!   credential reply (38/100);
//! * **Figure 4** — target lists are built by harvesting public
//!   university directories plus miscellaneous sources, and lure
//!   *delivery* is modulated by the recipient domain's spam-filtering
//!   class, which together produce the paper's extreme `.edu` skew;
//! * **Figure 5** — page conversion (POST/GET) varies with execution
//!   quality from ~3% to ~45%, averaging ≈13.7%;
//! * **Figure 6** — victim arrivals decay from the blast instant, except
//!   for the rare large-scale outlier campaign with its pre-launch quiet
//!   period and diurnal plateau;
//! * **Figure 7** — captured credentials land in a crew's
//!   [`Dropbox`], where they wait until the crew's
//!   working hours; dropboxes can be suspended, which is why some decoy
//!   credentials are never used.
//!
//! Everything here is a data structure inside a closed simulation; no
//! network I/O exists anywhere in the workspace.

pub mod campaign;
pub mod detector;
pub mod dropbox;
pub mod page;
pub mod targets;

pub use campaign::{Campaign, CampaignShape, VictimProfile};
pub use detector::{DetectionPipeline, TakedownRecord};
pub use dropbox::{CapturedCredential, CredentialExactness, Dropbox};
pub use page::{HttpMethod, HttpRequest, PageQuality, PhishingPage};
pub use targets::{LureEmail, LureStructure, TargetMix};

pub use mhw_types::AccountCategory;
