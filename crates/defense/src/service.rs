//! The streaming risk-scoring service.
//!
//! The paper's risk engine ran *online*: every login at the provider
//! was scored as it arrived (§8.2). This module is that shape — a
//! [`RiskService`] scores one [`LoginRequest`] at a time against
//! bounded per-account and per-IP state, so an instance can serve an
//! unbounded login stream in fixed memory. The batch simulation's
//! [`LoginPipeline`](crate::pipeline::LoginPipeline) is a thin adapter
//! over the same trait, so simulation and serving share one scoring
//! path; `tests/serve_parity.rs` pins that the two produce
//! bit-identical verdicts on a replayed world.
//!
//! Scoring is split into two halves so the caller owns the policy
//! in-between:
//!
//! * [`assess`](RiskService::assess) — read-side, **pure**: project IP
//!   fan-out, geolocate, extract signals, evaluate the engine. No state
//!   mutation at all, so a request that is shed (or assessed but never
//!   committed) leaves no trace anywhere.
//! * [`commit`](RiskService::commit) — write-side: record the attempt
//!   in the IP fan-out cache and fold its *outcome* (decided by the
//!   caller: password check, 2FA, challenge) back into account history.
//!
//! The split also keeps the trait general enough to later score
//! recovery attempts (ROADMAP item 4): recovery adjudication has a
//! different outcome alphabet but the same assess/commit shape.
//!
//! The serve tier adds an overload model on top
//! ([`assess_with`](RiskService::assess_with)): each signal source sits
//! behind a [`CircuitBreaker`](crate::degrade::CircuitBreaker) and a
//! per-request deadline budget, and
//! degrades to a conservative fallback instead of blocking — see
//! [`crate::degrade`] and the ARCHITECTURE.md "Overload model" section.

#![deny(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::degrade::{
    DegradedScoring, Fidelity, ResilienceConfig, ResilienceSnapshot, SignalConditions,
    SignalSource, NOMINAL_ASSESS_NS, NOMINAL_OVERHEAD_NS,
};
use crate::pipeline::LoginRequest;
use crate::risk::{RiskDecision, RiskEngine};
use crate::signals::{
    extract_signals, HistoryStore, IpReputation, LoginSignals, DEFAULT_IP_CACHE_CAPACITY,
    MAX_ACCOUNTS_PER_IP,
};
use mhw_identity::LoginOutcome;
use mhw_netmodel::GeoDb;
use mhw_types::{AccountId, CountryCode, DeviceId, SimTime, DAY, HOUR};

/// Everything the service concluded about one login attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskVerdict {
    /// Noisy-OR combined risk score in `[0, 1]`.
    pub score: f64,
    /// The engine's threshold decision for that score.
    pub decision: RiskDecision,
    /// The extracted signal vector (kept for ablation/forensics).
    pub signals: LoginSignals,
    /// Geolocated country of the requesting IP, if locatable. Cached
    /// here so [`RiskService::commit`] does not need a second lookup.
    pub country: Option<CountryCode>,
    /// Which signals were served from degraded fallbacks (full-fidelity
    /// verdicts are byte-identical to batch scoring). Mixed into replay
    /// digests so degradation is pinned, not silent.
    pub fidelity: Fidelity,
}

/// One [`RiskService::assess_with`] result: the verdict plus what it
/// cost in the deterministic virtual-time model that drives serve-mode
/// admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// The scoring verdict.
    pub verdict: RiskVerdict,
    /// Virtual nanoseconds the assess spent (overhead + per-source
    /// costs, injected latencies capped by the deadline budget).
    pub virtual_ns: u64,
}

/// A point-in-time measurement of a service's retained state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateSize {
    /// Accounts with materialized history.
    pub accounts: usize,
    /// IPs currently in the fan-out cache (≤ its LRU capacity).
    pub ip_entries: usize,
    /// Devices tracked across all account windows.
    pub tracked_devices: usize,
    /// Rough total retained bytes across both stores.
    pub approx_bytes: usize,
}

/// Bounds for a service instance's provider-wide state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLimits {
    /// LRU capacity of the per-IP fan-out cache.
    pub ip_cache_capacity: usize,
    /// Distinct accounts counted per IP per day (signal saturates far
    /// below this).
    pub accounts_per_ip: usize,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        ServiceLimits {
            ip_cache_capacity: DEFAULT_IP_CACHE_CAPACITY,
            accounts_per_ip: MAX_ACCOUNTS_PER_IP,
        }
    }
}

/// Scores login attempts one at a time with bounded state.
///
/// Implementations must be deterministic: the verdict may depend only
/// on the request, the geo database, and state accumulated through
/// prior [`assess`](RiskService::assess)/[`commit`](RiskService::commit)
/// calls — never on wall-clock time or ambient randomness. That is
/// what makes batch/serve parity checkable bit-for-bit.
pub trait RiskService {
    /// Score one attempt with every source healthy: project IP fan-out,
    /// geolocate, extract signals, evaluate. Pure read — state changes
    /// only through [`commit`](RiskService::commit).
    fn assess(&mut self, request: &LoginRequest, geo: &GeoDb) -> RiskVerdict;

    /// Score one attempt under injected source conditions, degrading
    /// rather than blocking (see [`crate::degrade`]). The default
    /// ignores the conditions and reports the nominal virtual cost —
    /// implementations without an overload model still compose with
    /// the resilient serve loop.
    fn assess_with(
        &mut self,
        request: &LoginRequest,
        geo: &GeoDb,
        conditions: &SignalConditions,
    ) -> Assessment {
        let _ = conditions;
        Assessment { verdict: self.assess(request, geo), virtual_ns: NOMINAL_ASSESS_NS }
    }

    /// A cheap risk prior for load-shedding decisions: must be O(1),
    /// read-only, and use no external sources (no geo, no fan-out).
    /// Higher means riskier; the `shed-lowest-risk-first` policy drops
    /// the queued request with the lowest prior.
    fn cheap_prior(&self, request: &LoginRequest) -> f64 {
        let _ = request;
        0.0
    }

    /// The verdict a shed request gets: scored from the cheap prior
    /// alone, fidelity marked [`Fidelity::shed`]. Never committed.
    fn shed_verdict(&self, request: &LoginRequest) -> RiskVerdict {
        let _ = request;
        RiskVerdict {
            score: 0.0,
            decision: RiskDecision::Allow,
            signals: LoginSignals::default(),
            country: None,
            fidelity: Fidelity::shed(),
        }
    }

    /// Record the attempt in the fan-out cache and fold its final
    /// outcome back into account state: wrong passwords append to the
    /// failure window, successful logins (with a locatable country)
    /// extend the account's baseline.
    fn commit(&mut self, request: &LoginRequest, verdict: &RiskVerdict, outcome: LoginOutcome);

    /// Inject a `cache-wipe` fault at simulated time `at`: drop every
    /// derived-state cache (default: nothing to wipe).
    fn inject_cache_wipe(&mut self, at: SimTime) {
        let _ = at;
    }

    /// Accumulated resilience counters (breaker transitions, deadline
    /// downgrades). Default: all zero.
    fn resilience_snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot::default()
    }

    /// Current retained-state measurement (for capacity reporting).
    fn state_size(&self) -> StateSize;
}

/// The production [`RiskService`]: existing signal extractors and
/// [`RiskEngine`] over bounded [`HistoryStore`]/[`IpReputation`] state.
#[derive(Debug, Clone)]
pub struct StreamingRiskService {
    /// The scoring engine (weights + thresholds). Public so ablation
    /// experiments can swap weights mid-stream.
    pub engine: RiskEngine,
    history: HistoryStore,
    ip_reputation: IpReputation,
    resilience: DegradedScoring,
}

impl StreamingRiskService {
    /// A service with default state bounds.
    pub fn new(engine: RiskEngine) -> Self {
        Self::with_limits(engine, ServiceLimits::default())
    }

    /// A service with explicit state bounds.
    pub fn with_limits(engine: RiskEngine, limits: ServiceLimits) -> Self {
        Self::with_resilience(engine, limits, ResilienceConfig::default())
    }

    /// A service with explicit state bounds and overload tuning
    /// (deadline budget + breaker thresholds).
    pub fn with_resilience(
        engine: RiskEngine,
        limits: ServiceLimits,
        resilience: ResilienceConfig,
    ) -> Self {
        StreamingRiskService {
            engine,
            history: HistoryStore::new(),
            ip_reputation: IpReputation::with_limits(
                limits.ip_cache_capacity,
                limits.accounts_per_ip,
            ),
            resilience: DegradedScoring::new(resilience),
        }
    }

    /// The degradation ladder (read side, for tests/reports).
    pub fn resilience(&self) -> &DegradedScoring {
        &self.resilience
    }

    /// Pre-materialize an account's history (optional; the store is
    /// total either way).
    pub fn touch(&mut self, account: AccountId) {
        self.history.register(account);
    }

    /// Read an account's history (empty default for unseen accounts).
    pub fn history(&self, account: AccountId) -> &crate::signals::AccountHistory {
        self.history.get(account)
    }

    /// Seed one successful login into an account's baseline without
    /// scoring it (warm-up traffic predating the observed stream).
    pub fn warm_success(
        &mut self,
        account: AccountId,
        at: SimTime,
        country: CountryCode,
        device: DeviceId,
    ) {
        self.history.get_mut(account).record_success(at, country, device);
    }

    /// The standard ten-login warm-up the simulation seeds every user
    /// with (spread across hours and days so cold-start and odd-hour
    /// signals settle). Shared between `Ecosystem::build` and the
    /// serve-side replay so both sides start from the same baseline.
    pub fn warm_up_standard(&mut self, account: AccountId, country: CountryCode, device: DeviceId) {
        for d in 0..10u64 {
            let at = SimTime::from_secs(d * DAY / 10 + (9 + d % 10) * HOUR % DAY);
            self.warm_success(account, at, country, device);
        }
    }
}

impl RiskService for StreamingRiskService {
    fn assess(&mut self, request: &LoginRequest, geo: &GeoDb) -> RiskVerdict {
        self.assess_with(request, geo, &SignalConditions::healthy()).verdict
    }

    fn assess_with(
        &mut self,
        request: &LoginRequest,
        geo: &GeoDb,
        conditions: &SignalConditions,
    ) -> Assessment {
        let at = request.at;
        let mut spent = NOMINAL_OVERHEAD_NS;
        // Consult the ladder for all three sources first (it owns the
        // breakers and the deadline budget), then read the survivors.
        let use_history = self.resilience.consult(
            SignalSource::History,
            conditions.source(SignalSource::History),
            at,
            &mut spent,
        );
        let use_ip = self.resilience.consult(
            SignalSource::IpCache,
            conditions.source(SignalSource::IpCache),
            at,
            &mut spent,
        );
        let use_geo = self.resilience.consult(
            SignalSource::Geo,
            conditions.source(SignalSource::Geo),
            at,
            &mut spent,
        );
        let mut fidelity = Fidelity::FULL;
        // Fallback: missing history scores as a brand-new account
        // (cold-start posture suppresses the novelty signals).
        let history = if use_history {
            self.history.get(request.account)
        } else {
            fidelity.degrade(SignalSource::History);
            self.history.fallback()
        };
        // Fallback: a cold or unavailable fan-out cache reports the
        // saturation-free floor of 1 (this attempt alone). A freshly
        // wiped cache still answers, but undercounts — flag it.
        let fanout = if use_ip {
            if self.resilience.is_cold(at) {
                fidelity.degrade(SignalSource::IpCache);
            }
            self.ip_reputation.projected_fanout(request.ip, request.account, at)
        } else {
            fidelity.degrade(SignalSource::IpCache);
            1
        };
        // Fallback: unlocatable geo is a first-class extractor input
        // already — `None` scores as the 0.5 country-novelty prior.
        let country = if use_geo {
            geo.locate(request.ip)
        } else {
            fidelity.degrade(SignalSource::Geo);
            None
        };
        let signals = extract_signals(history, at, country, request.device, fanout);
        let (score, decision) = self.engine.evaluate(&signals);
        Assessment {
            verdict: RiskVerdict { score, decision, signals, country, fidelity },
            virtual_ns: spent,
        }
    }

    fn cheap_prior(&self, request: &LoginRequest) -> f64 {
        let history = self.history.get(request.account);
        if history.total_logins() < 3 {
            // Unknown account: mildly risky, but below any real signal.
            return 0.15;
        }
        let mut prior = 0.02;
        if !history.has_device(request.device) {
            prior += 0.55;
        }
        let failures = history.failures_in_last_day(request.at).min(5) as f64;
        prior += 0.04 * failures;
        prior.clamp(0.0, 1.0)
    }

    fn shed_verdict(&self, request: &LoginRequest) -> RiskVerdict {
        let score = self.cheap_prior(request);
        RiskVerdict {
            score,
            decision: self.engine.decide(score),
            signals: LoginSignals::default(),
            country: None,
            fidelity: Fidelity::shed(),
        }
    }

    fn commit(&mut self, request: &LoginRequest, verdict: &RiskVerdict, outcome: LoginOutcome) {
        // Fan-out observation is commit-side so assess stays pure: a
        // request that is shed (never committed) leaves no IP-cache
        // trace. Assess scores against `projected_fanout`, which is
        // exactly what this observation makes real.
        self.ip_reputation.observe(request.ip, request.account, request.at);
        if outcome == LoginOutcome::WrongPassword {
            self.history.get_mut(request.account).record_failure(request.at);
        } else if outcome.is_success() {
            if let Some(c) = verdict.country {
                self.history
                    .get_mut(request.account)
                    .record_success(request.at, c, request.device);
            }
        }
    }

    fn inject_cache_wipe(&mut self, at: SimTime) {
        self.ip_reputation.wipe();
        self.resilience.note_wipe(at);
    }

    fn resilience_snapshot(&self) -> ResilienceSnapshot {
        self.resilience.snapshot()
    }

    fn state_size(&self) -> StateSize {
        StateSize {
            accounts: self.history.len(),
            ip_entries: self.ip_reputation.len(),
            tracked_devices: self.history.tracked_devices(),
            approx_bytes: self.history.approx_bytes() + self.ip_reputation.approx_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::AnswererCapabilities;
    use mhw_types::Actor;

    fn request(at: SimTime, account: AccountId, ip: mhw_types::IpAddr) -> LoginRequest {
        LoginRequest {
            at,
            account,
            ip,
            device: DeviceId(1),
            password: "pw".into(),
            actor: Actor::Owner,
            capabilities: AnswererCapabilities::owner(true, 0.9),
        }
    }

    #[test]
    fn assess_never_seen_account_is_safe_and_mild() {
        let geo = GeoDb::new();
        let mut svc = StreamingRiskService::new(RiskEngine::default());
        let ip = geo.stable_ip(CountryCode::US, 3);
        let v = svc.assess(&request(SimTime::from_secs(10), AccountId(424_242), ip), &geo);
        // Cold-start: novelty signals suppressed, decision is Allow.
        assert_eq!(v.decision, RiskDecision::Allow);
        assert_eq!(v.signals.new_country, 0.0);
        assert_eq!(v.country, Some(CountryCode::US));
    }

    #[test]
    fn warm_up_then_foreign_login_flags() {
        let geo = GeoDb::new();
        let mut svc = StreamingRiskService::new(RiskEngine::default());
        let account = AccountId(5);
        svc.warm_up_standard(account, CountryCode::US, DeviceId(1));
        assert_eq!(svc.history(account).total_logins(), 10);
        let foreign = geo.stable_ip(CountryCode::NG, 9);
        let req = LoginRequest {
            device: DeviceId(777),
            ..request(SimTime::from_secs(2 * DAY), account, foreign)
        };
        let v = svc.assess(&req, &geo);
        assert_eq!(v.signals.new_country, 1.0);
        assert_eq!(v.signals.new_device, 1.0);
        assert!(v.score > 0.4, "score {}", v.score);
    }

    #[test]
    fn commit_routes_outcomes_into_history() {
        let geo = GeoDb::new();
        let mut svc = StreamingRiskService::new(RiskEngine::default());
        let account = AccountId(1);
        let ip = geo.stable_ip(CountryCode::FR, 0);
        let req = request(SimTime::from_secs(100), account, ip);
        let v = svc.assess(&req, &geo);
        svc.commit(&req, &v, LoginOutcome::WrongPassword);
        svc.commit(&req, &v, LoginOutcome::Success);
        svc.commit(&req, &v, LoginOutcome::Blocked); // no-op
        let h = svc.history(account);
        assert_eq!(h.total_logins(), 1, "one success recorded");
        let v2 = svc.assess(&req, &geo);
        assert!(v2.signals.failure_burst > 0.0, "failure recorded");
    }

    #[test]
    fn state_size_tracks_both_stores() {
        let geo = GeoDb::new();
        let mut svc = StreamingRiskService::with_limits(
            RiskEngine::default(),
            ServiceLimits { ip_cache_capacity: 8, accounts_per_ip: 4 },
        );
        for i in 0..100u32 {
            let req = request(SimTime::from_secs(10), AccountId(i), mhw_types::IpAddr(i));
            let v = svc.assess(&req, &geo);
            svc.commit(&req, &v, LoginOutcome::WrongPassword);
        }
        let size = svc.state_size();
        assert_eq!(size.accounts, 100);
        assert_eq!(size.ip_entries, 8, "IP cache stays at its LRU bound");
        assert!(size.approx_bytes > 0);
    }
}
