//! The complete login pipeline — a thin batch adapter over
//! [`RiskService`].
//!
//! Password verification → risk scoring (via the shared
//! [`StreamingRiskService`]) → challenge or block → session issuance,
//! with every attempt appended to the [`LoginLog`]. This is the §8.2
//! "login time risk analysis … stops the hijacker before getting into
//! the account" flow, assembled from the mechanism crates. The
//! pipeline owns none of the scoring logic: it routes each attempt
//! through [`RiskService::assess`], adjudicates the outcome (password,
//! 2FA, challenge — the parts that need provider policy and RNG), and
//! folds the result back with [`RiskService::commit`]. Serve mode
//! drives the same trait directly, which is what makes batch/serve
//! verdict parity a testable property.

use crate::challenge::{AnswererCapabilities, ChallengePolicy};
use crate::risk::{RiskDecision, RiskEngine};
use crate::service::{RiskService, StreamingRiskService};
use mhw_identity::{
    CredentialStore, LoginLog, LoginOutcome, LoginRecord, RecoveryOptions, TwoFactorState,
};
use mhw_netmodel::GeoDb;
use mhw_obs::{MetricId, Registry};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, Actor, CountryCode, DeviceId, IpAddr, SimTime};

/// Correct-password attempts the risk engine let straight through.
pub const M_RISK_ALLOW: MetricId = MetricId("defense.risk_allow");
/// Correct-password attempts redirected to a login challenge.
pub const M_RISK_CHALLENGE: MetricId = MetricId("defense.risk_challenge");
/// Correct-password attempts the risk engine blocked outright.
pub const M_RISK_BLOCK: MetricId = MetricId("defense.risk_block");

/// One login request as the provider sees it, plus the simulation-side
/// answerer capabilities used to adjudicate a challenge if one is
/// served.
#[derive(Debug, Clone)]
pub struct LoginRequest {
    pub at: SimTime,
    pub account: AccountId,
    pub ip: IpAddr,
    pub device: DeviceId,
    /// The literal password string presented.
    pub password: String,
    /// Ground truth for the log record (never used for the decision).
    pub actor: Actor,
    /// How the answerer would fare on a challenge.
    pub capabilities: AnswererCapabilities,
}

/// The provider-side stores a login attempt is adjudicated against.
///
/// Groups the read-only context that used to travel as four separate
/// arguments to [`LoginPipeline::attempt`]; call sites build one per
/// attempt (cheap — four references).
#[derive(Clone, Copy)]
pub struct LoginContext<'a> {
    /// Password store used to verify the presented credential.
    pub credentials: &'a CredentialStore,
    /// Recovery options (phone on file) driving challenge selection.
    pub options: &'a RecoveryOptions,
    /// Per-account 2FA enrollment state.
    pub twofactor: &'a TwoFactorState,
    /// IP geolocation database.
    pub geo: &'a GeoDb,
}

/// The assembled login defense.
#[derive(Clone)]
pub struct LoginPipeline {
    /// The shared scoring path (also driven directly by serve mode).
    pub service: StreamingRiskService,
    pub challenge: ChallengePolicy,
    metrics: Registry,
}

impl LoginPipeline {
    pub fn new(engine: RiskEngine) -> Self {
        LoginPipeline {
            service: StreamingRiskService::new(engine),
            challenge: ChallengePolicy::default(),
            metrics: Registry::new()
                .with_counter(M_RISK_ALLOW)
                .with_counter(M_RISK_CHALLENGE)
                .with_counter(M_RISK_BLOCK),
        }
    }

    /// The pipeline's metrics registry (risk-verdict counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The risk engine's tuning knobs (read side).
    pub fn engine(&self) -> &RiskEngine {
        &self.service.engine
    }

    /// Mutable access for threshold/weight ablation experiments.
    pub fn engine_mut(&mut self) -> &mut RiskEngine {
        &mut self.service.engine
    }

    /// Pre-materialize an account's history (optional; the underlying
    /// store is total and handles never-seen accounts).
    pub fn register(&mut self, account: AccountId) {
        self.service.touch(account);
    }

    /// Seed the standard ten-login warm-up baseline for an account
    /// (see [`StreamingRiskService::warm_up_standard`]).
    pub fn warm_up_standard(&mut self, account: AccountId, country: CountryCode, device: DeviceId) {
        self.service.warm_up_standard(account, country, device);
    }

    /// Process one login attempt end to end. Appends to `log` and
    /// returns the outcome.
    pub fn attempt(
        &mut self,
        request: &LoginRequest,
        ctx: &LoginContext<'_>,
        log: &mut LoginLog,
        rng: &mut SimRng,
    ) -> LoginOutcome {
        let password_correct = ctx.credentials.verify(request.account, &request.password);
        let verdict = {
            let service: &mut dyn RiskService = &mut self.service;
            service.assess(request, ctx.geo)
        };

        let mut challenge = None;
        let outcome = if !password_correct {
            LoginOutcome::WrongPassword
        } else if ctx.twofactor.enabled(request.account) {
            // §8.2: a second factor is the best client-side defense —
            // possession of the enrolled phone settles the login
            // regardless of the risk score. (It also means a crew that
            // swapped the enrolled phone locks the owner out.)
            if request.capabilities.controls_second_factor && rng.chance(0.97) {
                LoginOutcome::Success
            } else {
                LoginOutcome::SecondFactorFailed
            }
        } else {
            match verdict.decision {
                RiskDecision::Allow => {
                    self.metrics.inc(M_RISK_ALLOW);
                    LoginOutcome::Success
                }
                RiskDecision::Block => {
                    self.metrics.inc(M_RISK_BLOCK);
                    LoginOutcome::Blocked
                }
                RiskDecision::Challenge => {
                    self.metrics.inc(M_RISK_CHALLENGE);
                    let kind = self.challenge.select(ctx.options, request.account);
                    let result = self.challenge.serve(kind, request.capabilities, rng);
                    challenge = Some(result);
                    if result.passed {
                        LoginOutcome::Success
                    } else {
                        LoginOutcome::ChallengeFailed
                    }
                }
            }
        };

        {
            let service: &mut dyn RiskService = &mut self.service;
            service.commit(request, &verdict, outcome);
        }

        let session = if outcome.is_success() {
            Some(log.allocate_session())
        } else {
            None
        };

        log.append(LoginRecord {
            at: request.at,
            account: request.account,
            ip: request.ip,
            device: request.device,
            actor: request.actor,
            password_correct,
            risk_score: verdict.score,
            challenge,
            outcome,
            session,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::{CountryCode, CrewId, SimDuration, DAY, HOUR};

    struct Fixture {
        pipeline: LoginPipeline,
        credentials: CredentialStore,
        options: RecoveryOptions,
        twofactor: TwoFactorState,
        geo: GeoDb,
        log: LoginLog,
        rng: SimRng,
        home_ip: IpAddr,
    }

    impl Fixture {
        fn new() -> Self {
            let geo = GeoDb::new();
            let mut credentials = CredentialStore::new();
            credentials.register(AccountId(0), "secret-pw");
            let mut options = RecoveryOptions::new();
            options.register(AccountId(0));
            let mut pipeline = LoginPipeline::new(RiskEngine::default());
            pipeline.register(AccountId(0));
            let mut twofactor = TwoFactorState::new();
            twofactor.register(AccountId(0));
            let home_ip = geo.stable_ip(CountryCode::US, 7);
            Fixture {
                pipeline,
                credentials,
                options,
                twofactor,
                geo,
                log: LoginLog::new(),
                rng: SimRng::from_seed(55),
                home_ip,
            }
        }

        fn attempt(&mut self, req: &LoginRequest) -> LoginOutcome {
            let ctx = LoginContext {
                credentials: &self.credentials,
                options: &self.options,
                twofactor: &self.twofactor,
                geo: &self.geo,
            };
            self.pipeline.attempt(req, &ctx, &mut self.log, &mut self.rng)
        }

        fn owner_request(&self, at: SimTime) -> LoginRequest {
            LoginRequest {
                at,
                account: AccountId(0),
                ip: self.home_ip,
                device: DeviceId(1),
                password: "secret-pw".into(),
                actor: Actor::Owner,
                capabilities: AnswererCapabilities::owner(true, 0.9),
            }
        }

        /// Build 30 days of owner baseline.
        fn season(&mut self) {
            for d in 0..30u64 {
                let req = self.owner_request(SimTime::from_secs(d * DAY + 9 * HOUR));
                let out = self.attempt(&req);
                assert!(out.is_success(), "day {d} owner login failed: {out:?}");
            }
        }
    }

    #[test]
    fn owner_routine_logins_succeed_unchallenged() {
        let mut f = Fixture::new();
        f.season();
        let challenged = f
            .log
            .records()
            .filter(|r| r.challenge.is_some())
            .count();
        assert_eq!(challenged, 0);
        assert_eq!(f.log.len(), 30);
    }

    #[test]
    fn wrong_password_fails_and_is_recorded() {
        let mut f = Fixture::new();
        f.season();
        let mut req = f.owner_request(SimTime::from_secs(31 * DAY));
        req.password = "wrong".into();
        let out = f.attempt(&req);
        assert_eq!(out, LoginOutcome::WrongPassword);
        let last = f.log.records().last().unwrap();
        assert!(!last.password_correct);
        assert!(last.session.is_none());
    }

    #[test]
    fn crew_login_without_phone_on_file_faces_knowledge_challenge() {
        let mut f = Fixture::new();
        f.season();
        // Crew races the owner from Nigeria one hour after an owner login.
        let crew_ip = f.geo.stable_ip(CountryCode::NG, 3);
        let req = LoginRequest {
            at: SimTime::from_secs(29 * DAY + 10 * HOUR),
            account: AccountId(0),
            ip: crew_ip,
            device: DeviceId(999),
            password: "secret-pw".into(),
            actor: Actor::Hijacker(CrewId(0)),
            capabilities: AnswererCapabilities::hijacker(0.0),
        };
        let out = f.attempt(&req);
        assert_eq!(out, LoginOutcome::ChallengeFailed);
        let last = f.log.records().last().unwrap();
        assert!(last.risk_score > 0.4, "risk {}", last.risk_score);
        assert!(last.challenge.is_some());
    }

    #[test]
    fn crew_with_disabled_engine_walks_in() {
        let mut f = Fixture::new();
        *f.pipeline.engine_mut() = RiskEngine::disabled();
        f.season();
        let crew_ip = f.geo.stable_ip(CountryCode::NG, 3);
        let req = LoginRequest {
            at: SimTime::from_secs(29 * DAY + 10 * HOUR),
            account: AccountId(0),
            ip: crew_ip,
            device: DeviceId(999),
            password: "secret-pw".into(),
            actor: Actor::Hijacker(CrewId(0)),
            capabilities: AnswererCapabilities::hijacker(0.0),
        };
        let out = f.attempt(&req);
        assert_eq!(out, LoginOutcome::Success);
    }

    #[test]
    fn travelling_owner_passes_via_sms() {
        let mut f = Fixture::new();
        // Put a phone on file.
        f.options.set_phone(
            AccountId(0),
            Actor::Owner,
            Some(mhw_identity::RecoveryPhone {
                number: mhw_types::PhoneNumber::new(CountryCode::US, 55599999),
                up_to_date: true,
                gateway_reliability: 0.97,
            }),
            SimTime::from_secs(0),
        );
        f.season();
        // Owner appears in France 12 hours later (plausible flight).
        let abroad_ip = f.geo.stable_ip(CountryCode::FR, 11);
        let mut successes = 0;
        let mut challenged = 0;
        for i in 0..50u64 {
            let req = LoginRequest {
                at: SimTime::from_secs(30 * DAY + 9 * HOUR + i * 60),
                account: AccountId(0),
                ip: abroad_ip,
                device: DeviceId(1),
                password: "secret-pw".into(),
                actor: Actor::Owner,
                capabilities: AnswererCapabilities::owner(true, 0.9),
            };
            let out = f.attempt(&req);
            if f.log.records().last().unwrap().challenge.is_some() {
                challenged += 1;
            }
            if out.is_success() {
                successes += 1;
                break; // history now includes FR; later logins are clean
            }
        }
        assert!(successes >= 1, "owner should eventually pass the SMS challenge");
        assert!(challenged >= 1, "first foreign login should be challenged");
    }

    #[test]
    fn failure_burst_raises_risk() {
        let mut f = Fixture::new();
        f.season();
        let t0 = SimTime::from_secs(31 * DAY + 9 * HOUR);
        for i in 0..5u64 {
            let mut req = f.owner_request(t0.plus(SimDuration::from_mins(i)));
            req.password = "guess".into();
            f.attempt(&req);
        }
        // Now a correct login carries failure-burst risk.
        let req = f.owner_request(t0.plus(SimDuration::from_mins(10)));
        f.attempt(&req);
        let last = f.log.records().last().unwrap();
        assert!(last.risk_score > 0.2, "risk {}", last.risk_score);
    }

    #[test]
    fn second_factor_blocks_hijackers_even_with_correct_password() {
        let mut f = Fixture::new();
        f.season();
        f.twofactor.enable(
            AccountId(0),
            Actor::Owner,
            mhw_types::PhoneNumber::new(CountryCode::US, 55512345),
            SimTime::from_secs(30 * DAY),
        );
        let crew_ip = f.geo.stable_ip(CountryCode::NG, 3);
        let req = LoginRequest {
            at: SimTime::from_secs(29 * DAY + 10 * HOUR),
            account: AccountId(0),
            ip: crew_ip,
            device: DeviceId(999),
            password: "secret-pw".into(),
            actor: Actor::Hijacker(CrewId(0)),
            capabilities: AnswererCapabilities::hijacker(1.0), // perfect research
        };
        let out = f.attempt(&req);
        assert_eq!(out, LoginOutcome::SecondFactorFailed);
    }

    #[test]
    fn crew_enrolled_second_factor_locks_the_owner_out() {
        let mut f = Fixture::new();
        f.season();
        // The 2FA-lockout tactic: crew enrols its own burner phone.
        f.twofactor.enable(
            AccountId(0),
            Actor::Hijacker(CrewId(0)),
            mhw_types::PhoneNumber::new(CountryCode::NG, 80011111),
            SimTime::from_secs(30 * DAY),
        );
        let mut req = f.owner_request(SimTime::from_secs(30 * DAY + HOUR));
        req.capabilities = AnswererCapabilities::owner(true, 0.9).with_second_factor(false);
        let out = f.attempt(&req);
        assert_eq!(out, LoginOutcome::SecondFactorFailed);
    }
}
