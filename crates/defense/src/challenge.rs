//! The login challenge (§8.2).
//!
//! "If the login attempt is deemed suspicious the user is redirected to
//! an additional verification step … Our login challenge asks the user
//! to answer knowledge test questions or to verify their identity by
//! proving he has access to the phone that was registered with the
//! account earlier." Phone possession is preferred because it is "a
//! safer challenge than knowledge question answers that the hijacker may
//! just guess by researching the user's background."
//!
//! The challenge *outcome* depends on who is answering — that is
//! simulation mechanics, not detection: the policy itself never sees
//! actor ground truth, only whether the SMS round-trip or the knowledge
//! answers check out.

use mhw_identity::{ChallengeKind, ChallengeResult, RecoveryOptions};
use mhw_simclock::SimRng;
use mhw_types::AccountId;

/// What the entity answering the challenge is capable of — derived by
/// the orchestrator from ground truth (owners have their own phone;
/// crews do not, but may research the victim for knowledge answers).
#[derive(Debug, Clone, Copy)]
pub struct AnswererCapabilities {
    /// Can receive SMS at the account's registered recovery phone.
    pub has_registered_phone: bool,
    /// Probability of producing correct knowledge answers.
    pub knowledge_success: f64,
    /// Controls the phone enrolled for 2-step verification on this
    /// account (owners normally do; a crew does after its 2FA-lockout
    /// tactic, which is precisely what locks the owner out).
    pub controls_second_factor: bool,
}

impl AnswererCapabilities {
    /// A legitimate owner: has their (up-to-date) phone; recalls their
    /// own facts with high probability.
    pub fn owner(phone_up_to_date: bool, recall: f64) -> Self {
        AnswererCapabilities {
            has_registered_phone: phone_up_to_date,
            knowledge_success: recall,
            controls_second_factor: true,
        }
    }

    /// A hijacker: no access to the victim's phone; may guess knowledge
    /// answers after researching the victim's mailbox.
    pub fn hijacker(research_quality: f64) -> Self {
        AnswererCapabilities {
            has_registered_phone: false,
            knowledge_success: research_quality,
            controls_second_factor: false,
        }
    }

    /// Override who controls the enrolled second factor (used after the
    /// crews' 2FA-lockout tactic swaps the enrolled phone).
    pub fn with_second_factor(mut self, controls: bool) -> Self {
        self.controls_second_factor = controls;
        self
    }
}

/// Challenge selection and adjudication policy.
#[derive(Debug, Clone)]
pub struct ChallengePolicy {
    /// SMS delivery success for an up-to-date phone (gateway effects are
    /// account-specific and layered on top by the caller when needed).
    pub sms_delivery: f64,
}

impl Default for ChallengePolicy {
    fn default() -> Self {
        ChallengePolicy { sms_delivery: 0.96 }
    }
}

impl ChallengePolicy {
    /// Choose the challenge kind for an account: SMS if a recovery phone
    /// is on file, knowledge otherwise.
    pub fn select(&self, options: &RecoveryOptions, account: AccountId) -> ChallengeKind {
        if options.get(account).phone.is_some() {
            ChallengeKind::SmsCode
        } else {
            ChallengeKind::Knowledge
        }
    }

    /// Serve the challenge and adjudicate it.
    pub fn serve(
        &self,
        kind: ChallengeKind,
        answerer: AnswererCapabilities,
        rng: &mut SimRng,
    ) -> ChallengeResult {
        let passed = match kind {
            ChallengeKind::SmsCode => {
                answerer.has_registered_phone && rng.chance(self.sms_delivery)
            }
            ChallengeKind::Knowledge => rng.chance(answerer.knowledge_success),
        };
        ChallengeResult { kind, passed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::RecoveryPhone;
    use mhw_types::{Actor, CountryCode, PhoneNumber, SimTime};

    fn options_with_phone(has_phone: bool) -> RecoveryOptions {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        if has_phone {
            o.set_phone(
                AccountId(0),
                Actor::Owner,
                Some(RecoveryPhone {
                    number: PhoneNumber::new(CountryCode::US, 55500001),
                    up_to_date: true,
                    gateway_reliability: 0.97,
                }),
                SimTime::from_secs(0),
            );
        }
        o
    }

    #[test]
    fn sms_preferred_when_phone_on_file() {
        let p = ChallengePolicy::default();
        assert_eq!(
            p.select(&options_with_phone(true), AccountId(0)),
            ChallengeKind::SmsCode
        );
        assert_eq!(
            p.select(&options_with_phone(false), AccountId(0)),
            ChallengeKind::Knowledge
        );
    }

    #[test]
    fn owners_pass_sms_hijackers_fail() {
        let p = ChallengePolicy::default();
        let mut rng = SimRng::from_seed(1);
        let mut owner_pass = 0;
        let mut crew_pass = 0;
        let n = 5000;
        for _ in 0..n {
            if p.serve(ChallengeKind::SmsCode, AnswererCapabilities::owner(true, 0.9), &mut rng).passed {
                owner_pass += 1;
            }
            if p.serve(ChallengeKind::SmsCode, AnswererCapabilities::hijacker(0.9), &mut rng).passed {
                crew_pass += 1;
            }
        }
        let owner_rate = owner_pass as f64 / n as f64;
        assert!((owner_rate - 0.96).abs() < 0.02, "owner SMS pass {owner_rate}");
        assert_eq!(crew_pass, 0, "hijackers can never pass SMS possession");
    }

    #[test]
    fn knowledge_is_guessable() {
        let p = ChallengePolicy::default();
        let mut rng = SimRng::from_seed(2);
        let n = 5000;
        let crew_pass = (0..n)
            .filter(|_| {
                p.serve(ChallengeKind::Knowledge, AnswererCapabilities::hijacker(0.25), &mut rng)
                    .passed
            })
            .count();
        let rate = crew_pass as f64 / n as f64;
        // §8.2: hijackers "may just guess" — knowledge is a weaker gate.
        assert!((rate - 0.25).abs() < 0.03, "crew knowledge pass {rate}");
    }

    #[test]
    fn stale_phone_owner_cannot_receive_sms() {
        let p = ChallengePolicy::default();
        let mut rng = SimRng::from_seed(3);
        let r = p.serve(
            ChallengeKind::SmsCode,
            AnswererCapabilities::owner(false, 0.9),
            &mut rng,
        );
        assert!(!r.passed);
        assert_eq!(r.kind, ChallengeKind::SmsCode);
    }
}
