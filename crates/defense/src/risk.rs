//! The login risk engine.
//!
//! Combines the [`LoginSignals`] noisy-OR
//! style into a risk score in `[0, 1)` and maps it to a decision. §8.1's
//! "striking the right balance" is the threshold choice: lower challenge
//! thresholds stop more hijacks but challenge more legitimate users —
//! the trade-off the ROC experiment (`exp_defense_roc`) sweeps.

use crate::signals::LoginSignals;
use serde::{Deserialize, Serialize};

/// Per-signal weights. Each weight is the maximum probability mass the
/// signal can contribute; `0` disables a signal (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskWeights {
    pub new_country: f64,
    pub impossible_travel: f64,
    pub new_device: f64,
    pub ip_fanout: f64,
    pub odd_hour: f64,
    pub failure_burst: f64,
}

impl Default for RiskWeights {
    fn default() -> Self {
        // Calibrated so that: home logins score ~0; crew logins (new
        // country + new device, impossible travel when racing the owner)
        // score well above the challenge threshold; travelling owners
        // usually land in the challenge band, not the block band.
        RiskWeights {
            new_country: 0.30,
            impossible_travel: 0.65,
            new_device: 0.25,
            ip_fanout: 0.50,
            odd_hour: 0.10,
            failure_burst: 0.25,
        }
    }
}

impl RiskWeights {
    /// Disable one signal by name (ablation benches). Unknown names are
    /// rejected loudly so bench configs cannot silently no-op.
    pub fn without(mut self, signal: &str) -> Self {
        match signal {
            "new_country" => self.new_country = 0.0,
            "impossible_travel" => self.impossible_travel = 0.0,
            "new_device" => self.new_device = 0.0,
            "ip_fanout" => self.ip_fanout = 0.0,
            "odd_hour" => self.odd_hour = 0.0,
            "failure_burst" => self.failure_burst = 0.0,
            other => panic!("unknown signal {other:?}"),
        }
        self
    }

    fn as_array(&self) -> [f64; 6] {
        [
            self.new_country,
            self.impossible_travel,
            self.new_device,
            self.ip_fanout,
            self.odd_hour,
            self.failure_burst,
        ]
    }
}

/// The decision for one login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RiskDecision {
    /// Let the login proceed.
    Allow,
    /// Redirect to the login challenge (§8.2).
    Challenge,
    /// Refuse outright (reserved for extreme scores).
    Block,
}

/// The risk engine: weights + thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskEngine {
    pub weights: RiskWeights,
    /// Scores ≥ this are challenged.
    pub challenge_threshold: f64,
    /// Scores ≥ this are blocked outright.
    pub block_threshold: f64,
}

impl Default for RiskEngine {
    fn default() -> Self {
        RiskEngine {
            weights: RiskWeights::default(),
            challenge_threshold: 0.28,
            block_threshold: 0.93,
        }
    }
}

impl RiskEngine {
    /// Noisy-OR combination: `1 - Π(1 - wᵢ·sᵢ)`. Monotone in every
    /// signal, never reaches 1, and a single strong signal dominates —
    /// the behaviour we want from anomaly evidence.
    pub fn score(&self, signals: &LoginSignals) -> f64 {
        let mut keep = 1.0;
        for (w, s) in self.weights.as_array().iter().zip(signals.as_array()) {
            keep *= 1.0 - (w * s).clamp(0.0, 1.0);
        }
        1.0 - keep
    }

    /// Map a score to a decision.
    pub fn decide(&self, score: f64) -> RiskDecision {
        if score >= self.block_threshold {
            RiskDecision::Block
        } else if score >= self.challenge_threshold {
            RiskDecision::Challenge
        } else {
            RiskDecision::Allow
        }
    }

    /// Score-and-decide in one call.
    pub fn evaluate(&self, signals: &LoginSignals) -> (f64, RiskDecision) {
        let s = self.score(signals);
        (s, self.decide(s))
    }

    /// An engine with the challenge step disabled (everything allowed) —
    /// the "no login defense" ablation baseline.
    pub fn disabled() -> Self {
        RiskEngine {
            weights: RiskWeights::default(),
            challenge_threshold: 1.1,
            block_threshold: 1.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> LoginSignals {
        LoginSignals::default()
    }

    fn crew_typical() -> LoginSignals {
        LoginSignals {
            new_country: 1.0,
            impossible_travel: 0.0,
            new_device: 1.0,
            ip_fanout: 0.4,
            odd_hour: 0.0,
            failure_burst: 0.0,
        }
    }

    fn crew_racing_owner() -> LoginSignals {
        LoginSignals { impossible_travel: 1.0, ..crew_typical() }
    }

    fn travelling_owner() -> LoginSignals {
        // Known device, new country, plausible travel time.
        LoginSignals { new_country: 1.0, ..LoginSignals::default() }
    }

    #[test]
    fn clean_login_allowed() {
        let e = RiskEngine::default();
        let (score, d) = e.evaluate(&clean());
        assert_eq!(score, 0.0);
        assert_eq!(d, RiskDecision::Allow);
    }

    #[test]
    fn crew_login_is_challenged() {
        let e = RiskEngine::default();
        let (score, d) = e.evaluate(&crew_typical());
        assert!(score > e.challenge_threshold, "score {score}");
        assert_ne!(d, RiskDecision::Allow);
    }

    #[test]
    fn racing_crew_scores_higher() {
        let e = RiskEngine::default();
        assert!(e.score(&crew_racing_owner()) > e.score(&crew_typical()));
    }

    #[test]
    fn travelling_owner_in_challenge_band_not_block() {
        let e = RiskEngine::default();
        let (score, d) = e.evaluate(&travelling_owner());
        assert_eq!(d, RiskDecision::Challenge, "score {score}");
        assert!(score < e.block_threshold);
    }

    #[test]
    fn score_is_monotone_in_each_signal() {
        let e = RiskEngine::default();
        let base = crew_typical();
        let mut arr = base.as_array();
        for i in 0..6 {
            let orig = arr[i];
            arr[i] = (orig - 0.3).max(0.0);
            let lower = LoginSignals {
                new_country: arr[0],
                impossible_travel: arr[1],
                new_device: arr[2],
                ip_fanout: arr[3],
                odd_hour: arr[4],
                failure_burst: arr[5],
            };
            let hi = e.score(&base);
            let lo = e.score(&lower);
            assert!(hi >= lo, "signal {i} not monotone: {lo} > {hi}");
            arr[i] = orig;
        }
    }

    #[test]
    fn score_stays_below_one() {
        let e = RiskEngine::default();
        let maxed = LoginSignals {
            new_country: 1.0,
            impossible_travel: 1.0,
            new_device: 1.0,
            ip_fanout: 1.0,
            odd_hour: 1.0,
            failure_burst: 1.0,
        };
        let s = e.score(&maxed);
        assert!(s < 1.0 && s > 0.9, "score {s}");
    }

    #[test]
    fn ablation_removes_signal_influence() {
        let e = RiskEngine {
            weights: RiskWeights::default().without("new_country"),
            ..RiskEngine::default()
        };
        let with = LoginSignals { new_country: 1.0, ..LoginSignals::default() };
        assert_eq!(e.score(&with), 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown signal")]
    fn unknown_ablation_name_panics() {
        let _ = RiskWeights::default().without("nonexistent");
    }

    #[test]
    fn disabled_engine_allows_everything() {
        let e = RiskEngine::disabled();
        assert_eq!(e.decide(e.score(&crew_racing_owner())), RiskDecision::Allow);
    }
}
