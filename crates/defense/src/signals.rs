//! Login risk signals.
//!
//! §8.2: "Our system uses many signals (that we can't disclose for
//! obvious reasons) to evaluate how anomalous a login attempt is." This
//! module reconstructs a defensible signal set from what the paper's
//! observations imply matters:
//!
//! * **country novelty** — hijack logins overwhelmingly come from
//!   countries the victim never logs in from (Figure 11);
//! * **geo-velocity** — a login from a different country minutes after
//!   the owner's home login is physically impossible;
//! * **device novelty** — crews use their own browsers/tools;
//! * **IP fan-out** — how many distinct accounts one IP touches in a
//!   day. §5.1 shows crews deliberately keep this under ~10, which makes
//!   the signal *weak against manual hijacking* — reproducing that
//!   tension is the point of the ablation benches;
//! * **odd hours** — logins far outside the account's usual hours;
//! * **failure bursts** — recent wrong-password attempts.
//!
//! Each signal is normalized to `[0, 1]`. Signals only ever read
//! provider-visible state — never ground-truth actor labels.

use mhw_types::{AccountId, CountryCode, DeviceId, IpAddr, SimDuration, SimTime, DAY, HOUR};
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-account login history, updated on successful logins.
#[derive(Debug, Default, Clone)]
pub struct AccountHistory {
    /// Successful-login counts by country.
    countries: HashMap<CountryCode, u32>,
    /// Devices previously seen on successful logins.
    devices: HashSet<DeviceId>,
    /// Most recent successful login (time, country).
    last_success: Option<(SimTime, CountryCode)>,
    /// Hour-of-day histogram of successful logins.
    hours: [u32; 24],
    /// Recent failed attempts (time-pruned).
    recent_failures: VecDeque<SimTime>,
}

impl AccountHistory {
    pub fn total_logins(&self) -> u32 {
        self.countries.values().sum()
    }

    /// Record a successful login.
    pub fn record_success(&mut self, at: SimTime, country: CountryCode, device: DeviceId) {
        *self.countries.entry(country).or_insert(0) += 1;
        self.devices.insert(device);
        self.last_success = Some((at, country));
        self.hours[at.hour_of_day() as usize] += 1;
    }

    /// Record a failed attempt.
    pub fn record_failure(&mut self, at: SimTime) {
        self.recent_failures.push_back(at);
        while let Some(front) = self.recent_failures.front() {
            if at.since(*front) > SimDuration::from_hours(24) {
                self.recent_failures.pop_front();
            } else {
                break;
            }
        }
    }

    fn failures_in_last_day(&self, at: SimTime) -> usize {
        self.recent_failures
            .iter()
            .filter(|t| at.since(**t) <= SimDuration::from_hours(24))
            .count()
    }
}

/// Provider-wide per-IP activity tracker (the fan-out signal).
#[derive(Debug, Default)]
pub struct IpReputation {
    /// (day_index, distinct accounts seen that day) per IP.
    today: HashMap<IpAddr, (u64, HashSet<AccountId>)>,
}

impl IpReputation {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an attempt and return how many distinct accounts this IP
    /// has touched today (including this one).
    pub fn observe(&mut self, ip: IpAddr, account: AccountId, at: SimTime) -> usize {
        let day = at.day_index();
        let entry = self.today.entry(ip).or_insert_with(|| (day, HashSet::new()));
        if entry.0 != day {
            entry.0 = day;
            entry.1.clear();
        }
        entry.1.insert(account);
        entry.1.len()
    }

    /// Current distinct-account count for an IP (0 if unseen today).
    pub fn fanout(&self, ip: IpAddr, at: SimTime) -> usize {
        self.today
            .get(&ip)
            .filter(|(day, _)| *day == at.day_index())
            .map(|(_, s)| s.len())
            .unwrap_or(0)
    }
}

/// The history store for all accounts.
#[derive(Debug, Default)]
pub struct HistoryStore {
    accounts: Vec<AccountHistory>,
}

impl HistoryStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, account: AccountId) {
        assert_eq!(account.index(), self.accounts.len(), "register accounts densely in order");
        self.accounts.push(AccountHistory::default());
    }

    pub fn get(&self, account: AccountId) -> &AccountHistory {
        &self.accounts[account.index()]
    }

    pub fn get_mut(&mut self, account: AccountId) -> &mut AccountHistory {
        &mut self.accounts[account.index()]
    }
}

/// Normalized signal vector for one login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoginSignals {
    /// 1.0 if the country was never seen on this account.
    pub new_country: f64,
    /// Geo-velocity: country change faster than plausible travel.
    pub impossible_travel: f64,
    /// 1.0 if the device was never seen.
    pub new_device: f64,
    /// IP fan-out, saturating at ~20 accounts/day.
    pub ip_fanout: f64,
    /// Login at an hour this account never uses.
    pub odd_hour: f64,
    /// Recent failed attempts, saturating at 5/day.
    pub failure_burst: f64,
}

impl LoginSignals {
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.new_country,
            self.impossible_travel,
            self.new_device,
            self.ip_fanout,
            self.odd_hour,
            self.failure_burst,
        ]
    }
}

/// Minimum plausible hours to appear in a different country (commercial
/// flight + airport overhead).
const MIN_TRAVEL_HOURS: u64 = 6;

/// Extract signals for a login attempt.
///
/// `fanout_today` is the distinct-account count from [`IpReputation`]
/// *including* this attempt.
pub fn extract_signals(
    history: &AccountHistory,
    at: SimTime,
    country: Option<CountryCode>,
    device: DeviceId,
    fanout_today: usize,
) -> LoginSignals {
    let mut s = LoginSignals::default();

    // Brand-new accounts have no baseline; signals stay low so we do not
    // hard-lock fresh users (cold-start policy).
    let cold_start = history.total_logins() < 3;

    if let Some(c) = country {
        if !cold_start && !history.countries.contains_key(&c) {
            s.new_country = 1.0;
        }
        if let Some((last_at, last_country)) = history.last_success {
            if last_country != c && at.since(last_at) < SimDuration::from_hours(MIN_TRAVEL_HOURS)
            {
                s.impossible_travel = 1.0;
            }
        }
    } else {
        // Unlocatable IP: mildly suspicious in itself.
        s.new_country = 0.5;
    }

    if !cold_start && !history.devices.contains(&device) {
        s.new_device = 1.0;
    }

    s.ip_fanout = ((fanout_today.saturating_sub(1)) as f64 / 19.0).clamp(0.0, 1.0);

    if !cold_start {
        let h = at.hour_of_day() as usize;
        // Hour never used, nor its neighbours.
        let near: u32 = (0..24)
            .filter(|i| {
                let d = (*i as i32 - h as i32).rem_euclid(24).min((h as i32 - *i as i32).rem_euclid(24));
                d <= 2
            })
            .map(|i| history.hours[i])
            .sum();
        if near == 0 && history.total_logins() >= 10 {
            s.odd_hour = 1.0;
        }
    }

    s.failure_burst = (history.failures_in_last_day(at) as f64 / 5.0).clamp(0.0, 1.0);

    s
}

/// Convenience consts used by calibration tests.
pub const SATURATING_FANOUT: usize = 20;
pub const _DOC_ANCHORS: (u64, u64) = (DAY, HOUR);

#[cfg(test)]
mod tests {
    use super::*;

    fn seasoned_history() -> AccountHistory {
        let mut h = AccountHistory::default();
        // 30 days of daily logins from the US at 9:00 and 20:00, one device.
        for d in 0..30u64 {
            h.record_success(
                SimTime::from_secs(d * DAY + 9 * HOUR),
                CountryCode::US,
                DeviceId(1),
            );
            h.record_success(
                SimTime::from_secs(d * DAY + 20 * HOUR),
                CountryCode::US,
                DeviceId(1),
            );
        }
        h
    }

    #[test]
    fn home_login_is_clean() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 9 * HOUR),
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s.as_array(), [0.0; 6]);
    }

    #[test]
    fn foreign_login_from_new_device_flags() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(29 * DAY + 21 * HOUR), // 1h after last success
            Some(CountryCode::NG),
            DeviceId(99),
            1,
        );
        assert_eq!(s.new_country, 1.0);
        assert_eq!(s.impossible_travel, 1.0); // 1h country flip
        assert_eq!(s.new_device, 1.0);
    }

    #[test]
    fn slow_country_change_is_not_impossible_travel() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(30 * DAY + 20 * HOUR + 10 * HOUR), // 10h later
            Some(CountryCode::GB),
            DeviceId(1),
            1,
        );
        assert_eq!(s.impossible_travel, 0.0);
        assert_eq!(s.new_country, 1.0); // still a new country
    }

    #[test]
    fn cold_start_accounts_are_not_flagged() {
        let mut h = AccountHistory::default();
        h.record_success(SimTime::from_secs(0), CountryCode::US, DeviceId(1));
        let s = extract_signals(
            &h,
            SimTime::from_secs(2 * HOUR),
            Some(CountryCode::FR),
            DeviceId(2),
            1,
        );
        assert_eq!(s.new_country, 0.0);
        assert_eq!(s.new_device, 0.0);
        // Impossible travel still fires — it needs no baseline depth.
        assert_eq!(s.impossible_travel, 1.0);
    }

    #[test]
    fn fanout_saturates() {
        let h = seasoned_history();
        let t = SimTime::from_secs(31 * DAY + 9 * HOUR);
        let low = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(low.ip_fanout, 0.0);
        let crew_like = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 10);
        assert!((0.4..0.6).contains(&crew_like.ip_fanout), "{}", crew_like.ip_fanout);
        let bot = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 200);
        assert_eq!(bot.ip_fanout, 1.0);
    }

    #[test]
    fn odd_hour_only_with_depth() {
        let h = seasoned_history(); // logs in 9:00 / 20:00
        let s = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 3 * HOUR), // 03:00 never used
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s.odd_hour, 1.0);
        // Neighbouring hour of a used slot is fine.
        let s2 = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 10 * HOUR),
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s2.odd_hour, 0.0);
    }

    #[test]
    fn failure_burst_scales_and_prunes() {
        let mut h = seasoned_history();
        let base = SimTime::from_secs(31 * DAY);
        for i in 0..5 {
            h.record_failure(base.plus(SimDuration::from_mins(i)));
        }
        let s = extract_signals(&h, base.plus(SimDuration::from_mins(10)), Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(s.failure_burst, 1.0);
        // Two days later the failures age out.
        let s2 = extract_signals(&h, base.plus(SimDuration::from_days(2)), Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(s2.failure_burst, 0.0);
    }

    #[test]
    fn unlocatable_ip_is_mildly_suspicious() {
        let h = seasoned_history();
        let s = extract_signals(&h, SimTime::from_secs(31 * DAY + 9 * HOUR), None, DeviceId(1), 1);
        assert_eq!(s.new_country, 0.5);
    }

    #[test]
    fn ip_reputation_tracks_days() {
        let mut rep = IpReputation::new();
        let ip = IpAddr::new(41, 0, 0, 1);
        let day0 = SimTime::from_secs(10);
        assert_eq!(rep.observe(ip, AccountId(1), day0), 1);
        assert_eq!(rep.observe(ip, AccountId(2), day0), 2);
        assert_eq!(rep.observe(ip, AccountId(2), day0), 2); // same account
        assert_eq!(rep.fanout(ip, day0), 2);
        // Next day resets.
        let day1 = SimTime::from_secs(DAY + 10);
        assert_eq!(rep.fanout(ip, day1), 0);
        assert_eq!(rep.observe(ip, AccountId(3), day1), 1);
    }
}
