//! Login risk signals.
//!
//! §8.2: "Our system uses many signals (that we can't disclose for
//! obvious reasons) to evaluate how anomalous a login attempt is." This
//! module reconstructs a defensible signal set from what the paper's
//! observations imply matters:
//!
//! * **country novelty** — hijack logins overwhelmingly come from
//!   countries the victim never logs in from (Figure 11);
//! * **geo-velocity** — a login from a different country minutes after
//!   the owner's home login is physically impossible;
//! * **device novelty** — crews use their own browsers/tools;
//! * **IP fan-out** — how many distinct accounts one IP touches in a
//!   day. §5.1 shows crews deliberately keep this under ~10, which makes
//!   the signal *weak against manual hijacking* — reproducing that
//!   tension is the point of the ablation benches;
//! * **odd hours** — logins far outside the account's usual hours;
//! * **failure bursts** — recent wrong-password attempts.
//!
//! Each signal is normalized to `[0, 1]`. Signals only ever read
//! provider-visible state — never ground-truth actor labels.
//!
//! ## Bounded state
//!
//! All tracker state is bounded so a [`RiskService`] instance can score
//! an unbounded login stream in fixed memory: per-account device
//! tracking is a sliding window of the [`MAX_TRACKED_DEVICES`] most
//! recently seen devices, failure history keeps at most
//! [`MAX_RECENT_FAILURES`] timestamps, and [`IpReputation`] caps both
//! the number of tracked IPs (LRU eviction via [`LruCache`]) and the
//! distinct accounts counted per IP per day. The caps are sized so
//! eviction never triggers at simulation scale — batch runs stay
//! byte-identical — while serve mode stays O(capacity) under millions
//! of distinct IPs.
//!
//! [`RiskService`]: crate::service::RiskService
//! [`LruCache`]: crate::lru::LruCache

use crate::lru::LruCache;
use mhw_types::{AccountId, CountryCode, DenseMap, DeviceId, IpAddr, SimDuration, SimTime, DAY, HOUR};
use std::collections::VecDeque;

/// Sliding-window cap on devices remembered per account.
///
/// Real users cycle through a handful of browsers/cookies; 32 covers
/// every simulated profile (owners hold one stable device, crews mint
/// fresh ones) so the window never evicts a device the batch pipeline
/// would have remembered.
pub const MAX_TRACKED_DEVICES: usize = 32;

/// Cap on remembered failed-attempt timestamps per account.
///
/// The failure-burst signal saturates at 5 failures/day, so anything
/// beyond 16 retained timestamps cannot change a score.
pub const MAX_RECENT_FAILURES: usize = 16;

/// Default LRU capacity for the per-IP fan-out cache.
pub const DEFAULT_IP_CACHE_CAPACITY: usize = 65_536;

/// Cap on distinct accounts counted per IP per day.
///
/// The fan-out signal clamps at [`SATURATING_FANOUT`] accounts, so the
/// count saturating at 64 is semantically invisible.
pub const MAX_ACCOUNTS_PER_IP: usize = 64;

/// Per-account login history, updated on successful logins.
#[derive(Debug, Default, Clone)]
pub struct AccountHistory {
    /// Successful-login counts by country, sorted by country code.
    /// Users see one or two countries in their lifetime, so a sorted
    /// pair-vec beats a per-account hash map by an order of magnitude
    /// in memory and loses nothing in lookup time.
    countries: Vec<(CountryCode, u32)>,
    /// Sliding window of recently seen devices, oldest first. A device
    /// seen again moves to the back (most recent), so the window evicts
    /// by recency, not insertion order.
    devices: VecDeque<DeviceId>,
    /// Most recent successful login (time, country).
    last_success: Option<(SimTime, CountryCode)>,
    /// Hour-of-day histogram of successful logins.
    hours: [u32; 24],
    /// Recent failed attempts (time-pruned, bounded).
    recent_failures: VecDeque<SimTime>,
}

impl AccountHistory {
    /// Total successful logins recorded on this account.
    pub fn total_logins(&self) -> u32 {
        self.countries.iter().map(|(_, n)| n).sum()
    }

    /// Whether a successful login was ever recorded from `country`.
    pub fn has_country(&self, country: CountryCode) -> bool {
        self.countries.binary_search_by_key(&country, |(c, _)| *c).is_ok()
    }

    /// Whether `device` is inside the tracked-device window.
    pub fn has_device(&self, device: DeviceId) -> bool {
        self.devices.contains(&device)
    }

    /// Number of devices currently inside the window.
    pub fn tracked_devices(&self) -> usize {
        self.devices.len()
    }

    /// Record a successful login.
    pub fn record_success(&mut self, at: SimTime, country: CountryCode, device: DeviceId) {
        match self.countries.binary_search_by_key(&country, |(c, _)| *c) {
            Ok(i) => self.countries[i].1 += 1,
            Err(i) => self.countries.insert(i, (country, 1)),
        }
        if let Some(pos) = self.devices.iter().position(|d| *d == device) {
            self.devices.remove(pos);
        } else if self.devices.len() >= MAX_TRACKED_DEVICES {
            self.devices.pop_front();
        }
        self.devices.push_back(device);
        self.last_success = Some((at, country));
        self.hours[at.hour_of_day() as usize] += 1;
    }

    /// Record a failed attempt.
    pub fn record_failure(&mut self, at: SimTime) {
        self.recent_failures.push_back(at);
        while let Some(front) = self.recent_failures.front() {
            if at.since(*front) > SimDuration::from_hours(24) {
                self.recent_failures.pop_front();
            } else {
                break;
            }
        }
        while self.recent_failures.len() > MAX_RECENT_FAILURES {
            self.recent_failures.pop_front();
        }
    }

    /// Rough retained-memory estimate in bytes (used only for capacity
    /// reporting, never scoring).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.countries.len() * std::mem::size_of::<(CountryCode, u32)>()
            + self.devices.len() * std::mem::size_of::<DeviceId>()
            + self.recent_failures.len() * std::mem::size_of::<SimTime>()
    }

    /// Failed attempts recorded within 24 h of `at` — the raw count
    /// behind the failure-burst signal, also used by the serve tier's
    /// cheap load-shedding prior.
    pub fn failures_in_last_day(&self, at: SimTime) -> usize {
        self.recent_failures
            .iter()
            .filter(|t| at.since(**t) <= SimDuration::from_hours(24))
            .count()
    }
}

/// One IP's activity for the day it was last seen.
#[derive(Debug, Clone)]
struct IpDayActivity {
    /// Day index the counts below belong to.
    day: u64,
    /// Distinct accounts seen from this IP that day (saturating at
    /// [`MAX_ACCOUNTS_PER_IP`]).
    accounts: Vec<AccountId>,
}

/// Provider-wide per-IP activity tracker (the fan-out signal).
///
/// Backed by a fixed-capacity [`LruCache`]: under serve-mode traffic
/// touching millions of distinct addresses, memory stays
/// O(`capacity`). Entries are day-scoped, so LRU eviction only becomes
/// observable if more than `capacity` distinct IPs log in within one
/// simulated day — far above simulation scale.
#[derive(Debug, Clone)]
pub struct IpReputation {
    today: LruCache<IpAddr, IpDayActivity>,
    accounts_per_ip: usize,
}

impl Default for IpReputation {
    fn default() -> Self {
        Self::new()
    }
}

impl IpReputation {
    /// Tracker with the default bounds ([`DEFAULT_IP_CACHE_CAPACITY`],
    /// [`MAX_ACCOUNTS_PER_IP`]).
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_IP_CACHE_CAPACITY, MAX_ACCOUNTS_PER_IP)
    }

    /// Tracker with explicit bounds (for tests and tuned deployments).
    pub fn with_limits(ip_cache_capacity: usize, accounts_per_ip: usize) -> Self {
        IpReputation {
            today: LruCache::new(ip_cache_capacity),
            accounts_per_ip: accounts_per_ip.max(1),
        }
    }

    /// Record an attempt and return how many distinct accounts this IP
    /// has touched today (including this one).
    pub fn observe(&mut self, ip: IpAddr, account: AccountId, at: SimTime) -> usize {
        let day = at.day_index();
        let cap = self.accounts_per_ip;
        let entry = self
            .today
            .get_or_insert_with(ip, || IpDayActivity { day, accounts: Vec::new() });
        if entry.day != day {
            entry.day = day;
            entry.accounts.clear();
        }
        if !entry.accounts.contains(&account) && entry.accounts.len() < cap {
            entry.accounts.push(account);
        }
        entry.accounts.len()
    }

    /// What [`IpReputation::observe`] *would* return for this attempt,
    /// without recording it: the distinct-account count including this
    /// attempt, from a pure read (no recency touch, no mutation).
    ///
    /// This is the assess-side view — scoring reads the projection, and
    /// only a later commit makes it real. A request that is shed or
    /// never committed therefore leaves no trace in the cache.
    pub fn projected_fanout(&self, ip: IpAddr, account: AccountId, at: SimTime) -> usize {
        match self.today.peek(&ip).filter(|a| a.day == at.day_index()) {
            Some(a) if a.accounts.contains(&account) || a.accounts.len() >= self.accounts_per_ip => {
                a.accounts.len()
            }
            Some(a) => a.accounts.len() + 1,
            None => 1,
        }
    }

    /// Drop every cached entry — the serve tier's `cache-wipe` fault.
    /// The next observation of any IP starts from a cold, empty cache.
    pub fn wipe(&mut self) {
        self.today.clear();
    }

    /// Current distinct-account count for an IP (0 if unseen today).
    /// Reads without touching LRU recency.
    pub fn fanout(&self, ip: IpAddr, at: SimTime) -> usize {
        self.today
            .peek(&ip)
            .filter(|a| a.day == at.day_index())
            .map(|a| a.accounts.len())
            .unwrap_or(0)
    }

    /// Number of IPs currently cached.
    pub fn len(&self) -> usize {
        self.today.len()
    }

    /// True when no IP has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.today.is_empty()
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.today.capacity()
    }

    /// Rough retained-memory estimate in bytes.
    pub fn approx_bytes(&self) -> usize {
        // key + slot links + day + saturating account vec, per entry.
        self.today.len()
            * (std::mem::size_of::<IpAddr>()
                + 4 * std::mem::size_of::<usize>()
                + self.accounts_per_ip * std::mem::size_of::<AccountId>())
    }
}

/// The history store for all accounts.
///
/// Total: any [`AccountId`] can be read or written, registered or not.
/// Unknown accounts read as an empty history and are materialized on
/// first write — serve mode sees never-before-seen accounts safely,
/// and the batch pipeline no longer needs dense pre-registration.
///
/// Backed by a [`DenseMap`]: account ids are allocated densely from 0,
/// so a batch world's histories live in one `Vec` indexed by account
/// — no hashing on the per-login hot path. Serve-mode traffic with
/// sparse or namespaced ids falls back to the map's overflow region.
#[derive(Debug, Clone, Default)]
pub struct HistoryStore {
    accounts: DenseMap<AccountHistory>,
    /// Shared read-only default for accounts with no history yet.
    empty: AccountHistory,
}

impl HistoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store pre-sized for accounts `0..n` (admits the whole
    /// population to the dense region up front).
    pub fn with_capacity(n: usize) -> Self {
        HistoryStore {
            accounts: DenseMap::with_dense_capacity(n),
            empty: AccountHistory::default(),
        }
    }

    /// Pre-materialize an account's (empty) history. Optional — the
    /// store is total either way — but keeps batch setup explicit.
    pub fn register(&mut self, account: AccountId) {
        let key = account.index() as u32;
        if self.accounts.get(key).is_none() {
            self.accounts.insert(key, AccountHistory::default());
        }
    }

    /// This account's history; an empty default if never seen.
    pub fn get(&self, account: AccountId) -> &AccountHistory {
        self.accounts.get(account.index() as u32).unwrap_or(&self.empty)
    }

    /// The shared empty history — the degraded-scoring fallback when
    /// the history source is down ("treat as a new account").
    pub fn fallback(&self) -> &AccountHistory {
        &self.empty
    }

    /// Mutable history, materializing an empty one for new accounts.
    pub fn get_mut(&mut self, account: AccountId) -> &mut AccountHistory {
        let key = account.index() as u32;
        if self.accounts.get(key).is_none() {
            self.accounts.insert(key, AccountHistory::default());
        }
        self.accounts.get_mut(key).expect("just materialized")
    }

    /// Number of accounts with materialized history.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when no account has history yet.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Devices tracked across all accounts (each bounded by
    /// [`MAX_TRACKED_DEVICES`]).
    pub fn tracked_devices(&self) -> usize {
        self.accounts.values().map(|h| h.tracked_devices()).sum()
    }

    /// Rough retained-memory estimate in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.accounts.values().map(|h| h.approx_bytes() + 16).sum()
    }
}

/// Normalized signal vector for one login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoginSignals {
    /// 1.0 if the country was never seen on this account.
    pub new_country: f64,
    /// Geo-velocity: country change faster than plausible travel.
    pub impossible_travel: f64,
    /// 1.0 if the device was never seen.
    pub new_device: f64,
    /// IP fan-out, saturating at ~20 accounts/day.
    pub ip_fanout: f64,
    /// Login at an hour this account never uses.
    pub odd_hour: f64,
    /// Recent failed attempts, saturating at 5/day.
    pub failure_burst: f64,
}

impl LoginSignals {
    /// The six signals as a fixed array (engine weight order).
    pub fn as_array(&self) -> [f64; 6] {
        [
            self.new_country,
            self.impossible_travel,
            self.new_device,
            self.ip_fanout,
            self.odd_hour,
            self.failure_burst,
        ]
    }
}

/// Minimum plausible hours to appear in a different country (commercial
/// flight + airport overhead).
const MIN_TRAVEL_HOURS: u64 = 6;

/// Extract signals for a login attempt.
///
/// `fanout_today` is the distinct-account count from [`IpReputation`]
/// *including* this attempt.
pub fn extract_signals(
    history: &AccountHistory,
    at: SimTime,
    country: Option<CountryCode>,
    device: DeviceId,
    fanout_today: usize,
) -> LoginSignals {
    let mut s = LoginSignals::default();

    // Brand-new accounts have no baseline; signals stay low so we do not
    // hard-lock fresh users (cold-start policy).
    let cold_start = history.total_logins() < 3;

    if let Some(c) = country {
        if !cold_start && !history.has_country(c) {
            s.new_country = 1.0;
        }
        if let Some((last_at, last_country)) = history.last_success {
            if last_country != c && at.since(last_at) < SimDuration::from_hours(MIN_TRAVEL_HOURS)
            {
                s.impossible_travel = 1.0;
            }
        }
    } else {
        // Unlocatable IP: mildly suspicious in itself.
        s.new_country = 0.5;
    }

    if !cold_start && !history.has_device(device) {
        s.new_device = 1.0;
    }

    s.ip_fanout = ((fanout_today.saturating_sub(1)) as f64 / 19.0).clamp(0.0, 1.0);

    if !cold_start {
        let h = at.hour_of_day() as usize;
        // Hour never used, nor its neighbours.
        let near: u32 = (0..24)
            .filter(|i| {
                let d = (*i as i32 - h as i32).rem_euclid(24).min((h as i32 - *i as i32).rem_euclid(24));
                d <= 2
            })
            .map(|i| history.hours[i])
            .sum();
        if near == 0 && history.total_logins() >= 10 {
            s.odd_hour = 1.0;
        }
    }

    s.failure_burst = (history.failures_in_last_day(at) as f64 / 5.0).clamp(0.0, 1.0);

    s
}

/// Convenience consts used by calibration tests.
pub const SATURATING_FANOUT: usize = 20;
/// Documentation anchors keeping the day/hour constants referenced.
pub const _DOC_ANCHORS: (u64, u64) = (DAY, HOUR);

#[cfg(test)]
mod tests {
    use super::*;

    fn seasoned_history() -> AccountHistory {
        let mut h = AccountHistory::default();
        // 30 days of daily logins from the US at 9:00 and 20:00, one device.
        for d in 0..30u64 {
            h.record_success(
                SimTime::from_secs(d * DAY + 9 * HOUR),
                CountryCode::US,
                DeviceId(1),
            );
            h.record_success(
                SimTime::from_secs(d * DAY + 20 * HOUR),
                CountryCode::US,
                DeviceId(1),
            );
        }
        h
    }

    #[test]
    fn home_login_is_clean() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 9 * HOUR),
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s.as_array(), [0.0; 6]);
    }

    #[test]
    fn foreign_login_from_new_device_flags() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(29 * DAY + 21 * HOUR), // 1h after last success
            Some(CountryCode::NG),
            DeviceId(99),
            1,
        );
        assert_eq!(s.new_country, 1.0);
        assert_eq!(s.impossible_travel, 1.0); // 1h country flip
        assert_eq!(s.new_device, 1.0);
    }

    #[test]
    fn slow_country_change_is_not_impossible_travel() {
        let h = seasoned_history();
        let s = extract_signals(
            &h,
            SimTime::from_secs(30 * DAY + 20 * HOUR + 10 * HOUR), // 10h later
            Some(CountryCode::GB),
            DeviceId(1),
            1,
        );
        assert_eq!(s.impossible_travel, 0.0);
        assert_eq!(s.new_country, 1.0); // still a new country
    }

    #[test]
    fn cold_start_accounts_are_not_flagged() {
        let mut h = AccountHistory::default();
        h.record_success(SimTime::from_secs(0), CountryCode::US, DeviceId(1));
        let s = extract_signals(
            &h,
            SimTime::from_secs(2 * HOUR),
            Some(CountryCode::FR),
            DeviceId(2),
            1,
        );
        assert_eq!(s.new_country, 0.0);
        assert_eq!(s.new_device, 0.0);
        // Impossible travel still fires — it needs no baseline depth.
        assert_eq!(s.impossible_travel, 1.0);
    }

    #[test]
    fn fanout_saturates() {
        let h = seasoned_history();
        let t = SimTime::from_secs(31 * DAY + 9 * HOUR);
        let low = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(low.ip_fanout, 0.0);
        let crew_like = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 10);
        assert!((0.4..0.6).contains(&crew_like.ip_fanout), "{}", crew_like.ip_fanout);
        let bot = extract_signals(&h, t, Some(CountryCode::US), DeviceId(1), 200);
        assert_eq!(bot.ip_fanout, 1.0);
    }

    #[test]
    fn odd_hour_only_with_depth() {
        let h = seasoned_history(); // logs in 9:00 / 20:00
        let s = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 3 * HOUR), // 03:00 never used
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s.odd_hour, 1.0);
        // Neighbouring hour of a used slot is fine.
        let s2 = extract_signals(
            &h,
            SimTime::from_secs(31 * DAY + 10 * HOUR),
            Some(CountryCode::US),
            DeviceId(1),
            1,
        );
        assert_eq!(s2.odd_hour, 0.0);
    }

    #[test]
    fn failure_burst_scales_and_prunes() {
        let mut h = seasoned_history();
        let base = SimTime::from_secs(31 * DAY);
        for i in 0..5 {
            h.record_failure(base.plus(SimDuration::from_mins(i)));
        }
        let s = extract_signals(&h, base.plus(SimDuration::from_mins(10)), Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(s.failure_burst, 1.0);
        // Two days later the failures age out.
        let s2 = extract_signals(&h, base.plus(SimDuration::from_days(2)), Some(CountryCode::US), DeviceId(1), 1);
        assert_eq!(s2.failure_burst, 0.0);
    }

    #[test]
    fn unlocatable_ip_is_mildly_suspicious() {
        let h = seasoned_history();
        let s = extract_signals(&h, SimTime::from_secs(31 * DAY + 9 * HOUR), None, DeviceId(1), 1);
        assert_eq!(s.new_country, 0.5);
    }

    #[test]
    fn ip_reputation_tracks_days() {
        let mut rep = IpReputation::new();
        let ip = IpAddr::new(41, 0, 0, 1);
        let day0 = SimTime::from_secs(10);
        assert_eq!(rep.observe(ip, AccountId(1), day0), 1);
        assert_eq!(rep.observe(ip, AccountId(2), day0), 2);
        assert_eq!(rep.observe(ip, AccountId(2), day0), 2); // same account
        assert_eq!(rep.fanout(ip, day0), 2);
        // Next day resets.
        let day1 = SimTime::from_secs(DAY + 10);
        assert_eq!(rep.fanout(ip, day1), 0);
        assert_eq!(rep.observe(ip, AccountId(3), day1), 1);
    }

    #[test]
    fn device_window_is_bounded_and_recency_ordered() {
        let mut h = AccountHistory::default();
        let t = SimTime::from_secs(0);
        for i in 0..100u32 {
            h.record_success(t, CountryCode::US, DeviceId(i));
        }
        assert_eq!(h.tracked_devices(), MAX_TRACKED_DEVICES);
        assert!(h.has_device(DeviceId(99)), "most recent device retained");
        assert!(!h.has_device(DeviceId(0)), "oldest device evicted");
        // Re-seeing an old-but-retained device refreshes it.
        h.record_success(t, CountryCode::US, DeviceId(68));
        h.record_success(t, CountryCode::US, DeviceId(200));
        assert!(h.has_device(DeviceId(68)), "touched device survives");
        assert!(!h.has_device(DeviceId(69)), "untouched oldest evicted");
    }

    #[test]
    fn failure_log_is_bounded() {
        let mut h = AccountHistory::default();
        let base = SimTime::from_secs(0);
        for i in 0..1000 {
            h.record_failure(base.plus(SimDuration::from_mins(i)));
        }
        assert!(h.recent_failures.len() <= MAX_RECENT_FAILURES);
        // The burst signal still saturates.
        let last = base.plus(SimDuration::from_mins(999));
        assert_eq!(h.failures_in_last_day(last).min(5), 5);
    }

    #[test]
    fn history_store_is_total() {
        let mut store = HistoryStore::new();
        // Reads of never-seen accounts return an empty default.
        assert_eq!(store.get(AccountId(12345)).total_logins(), 0);
        assert_eq!(store.len(), 0);
        // Writes materialize history without registration.
        store.get_mut(AccountId(7)).record_success(
            SimTime::from_secs(10),
            CountryCode::BR,
            DeviceId(3),
        );
        assert_eq!(store.get(AccountId(7)).total_logins(), 1);
        assert_eq!(store.len(), 1);
        // Sparse registration is fine (no dense-order assert).
        store.register(AccountId(4_000_000));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn ip_cache_stays_bounded() {
        let mut rep = IpReputation::with_limits(128, 4);
        let t = SimTime::from_secs(10);
        for i in 0..10_000u32 {
            rep.observe(IpAddr(i), AccountId(i % 7), t);
        }
        assert_eq!(rep.len(), 128);
        assert!(rep.approx_bytes() < 128 * 128, "bytes bounded by capacity");
        // Per-IP account counts saturate at the configured cap.
        let ip = IpAddr::new(9, 9, 9, 9);
        for a in 0..100u32 {
            rep.observe(ip, AccountId(a), t);
        }
        assert_eq!(rep.fanout(ip, t), 4);
    }
}
