//! Doppelganger-redirect detection.
//!
//! §5.4: hijackers divert a victim's future mail to a "doppelganger"
//! account — "victim@yahoo is a doppelganger account for
//! victim@gmail" — via a Reply-To or a forward-all filter, and
//! "to efficiently counter those doppelganger tactics it is essential
//! during the account recovery process to have these settings reviewed
//! by the legitimate account owner or automatically cleared."
//!
//! This module is that review: given the owner's address and a redirect
//! target (filter forward destination or Reply-To), classify how
//! suspicious the redirect is. It is used by the recovery review
//! surface and exercised by the defense evaluation; the redirect
//! heuristics deliberately mirror what the crews' doppelganger
//! generator produces, the same adversarial pairing as the scam
//! generator/classifier.

use mhw_mailsys::{FilterAction, MailFilter};
use mhw_types::EmailAddress;
use serde::{Deserialize, Serialize};

/// Verdict for one redirect target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedirectVerdict {
    /// Looks like an ordinary secondary address.
    Benign,
    /// Same local part at a different provider, or a near-typo local at
    /// the same provider — the §5.4 doppelganger patterns.
    Doppelganger,
    /// Lookalike domain (small edit distance to the owner's provider).
    LookalikeDomain,
}

impl RedirectVerdict {
    /// Whether the recovery flow should surface this redirect for
    /// review / auto-clearing.
    pub fn needs_review(self) -> bool {
        self != RedirectVerdict::Benign
    }
}

/// Levenshtein distance capped at `cap` (small strings only).
fn edit_distance_capped(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > cap {
        return cap + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        let mut row_min = cur[0];
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            row_min = row_min.min(cur[j]);
        }
        if row_min > cap {
            return cap + 1;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Classify a redirect target against the owner's address.
pub fn classify_redirect(owner: &EmailAddress, target: &EmailAddress) -> RedirectVerdict {
    if owner == target {
        return RedirectVerdict::Benign; // self-redirects are no-ops
    }
    // Same or near-same local part at a *different* provider.
    if owner.domain() != target.domain() {
        let local_distance = edit_distance_capped(owner.local(), target.local(), 1);
        // Crews also append a character ("pat.doe" → "pat.doe1").
        let is_prefix_pad = target.local().starts_with(owner.local())
            && target.local().len() <= owner.local().len() + 2;
        if local_distance <= 1 || is_prefix_pad {
            return RedirectVerdict::Doppelganger;
        }
        // Lookalike provider domain (e.g. hornemail.com vs homemail.com).
        if edit_distance_capped(owner.domain(), target.domain(), 2) <= 2 {
            return RedirectVerdict::LookalikeDomain;
        }
        return RedirectVerdict::Benign;
    }
    // Same provider: a near-typo of the owner's local part.
    if edit_distance_capped(owner.local(), target.local(), 1) <= 1 {
        RedirectVerdict::Doppelganger
    } else {
        RedirectVerdict::Benign
    }
}

/// Review an account's filters: the external-forward targets that need
/// owner review, with verdicts. This is the §5.4 recovery checklist.
pub fn review_filters<'a>(
    owner: &EmailAddress,
    filters: impl IntoIterator<Item = &'a MailFilter>,
) -> Vec<(mhw_types::FilterId, RedirectVerdict)> {
    filters
        .into_iter()
        .filter_map(|f| {
            let target = match &f.action {
                FilterAction::ForwardTo(t) | FilterAction::ForwardAndTrash(t) => t,
                FilterAction::MoveTo(_) => return None,
            };
            Some((f.id, classify_redirect(owner, target)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::FilterId;

    fn addr(local: &str, domain: &str) -> EmailAddress {
        EmailAddress::new(local, domain)
    }

    #[test]
    fn paper_example_is_a_doppelganger() {
        // The paper's own example: same username, different provider.
        let owner = addr("victim.name", "gmail.example");
        let dopp = addr("victim.name", "yahoo.example");
        assert_eq!(classify_redirect(&owner, &dopp), RedirectVerdict::Doppelganger);
        assert!(classify_redirect(&owner, &dopp).needs_review());
    }

    #[test]
    fn crew_generated_doppelgangers_are_caught() {
        use mhw_adversary_doppelganger::doppelganger_for;
        use mhw_simclock::SimRng;
        let mut rng = SimRng::from_seed(7);
        let owner = addr("pat.doe", "homemail.com");
        for _ in 0..100 {
            let d = doppelganger_for(&owner, &mut rng);
            let verdict = classify_redirect(&owner, &d);
            assert!(
                verdict.needs_review(),
                "crew doppelganger {d} slipped review ({verdict:?})"
            );
        }
    }

    // Adversarial pairing: pull the crews' actual generator.
    mod mhw_adversary_doppelganger {
        pub use mhw_adversary::playbook::doppelganger_for;
    }

    #[test]
    fn typo_local_same_provider() {
        let owner = addr("patdoe", "homemail.com");
        assert_eq!(
            classify_redirect(&owner, &addr("patd0e", "homemail.com")),
            RedirectVerdict::Doppelganger
        );
    }

    #[test]
    fn lookalike_domain_detected() {
        let owner = addr("pat.doe", "homemail.com");
        assert_eq!(
            classify_redirect(&owner, &addr("totally.other", "hornemail.com")),
            RedirectVerdict::LookalikeDomain
        );
    }

    #[test]
    fn ordinary_secondary_addresses_are_benign() {
        let owner = addr("pat.doe", "homemail.com");
        for (l, d) in [
            ("pat.doe.backup2", "backup-mail.net"), // too different
            ("completely.different", "elsewhere.org"),
            ("workaccount", "corp.example.com"),
        ] {
            assert_eq!(
                classify_redirect(&owner, &addr(l, d)),
                RedirectVerdict::Benign,
                "{l}@{d}"
            );
        }
    }

    #[test]
    fn self_redirect_is_benign() {
        let owner = addr("pat", "homemail.com");
        assert_eq!(classify_redirect(&owner, &owner.clone()), RedirectVerdict::Benign);
    }

    #[test]
    fn filter_review_surfaces_forwards_only() {
        use mhw_mailsys::Folder;
        let owner = addr("pat.doe", "homemail.com");
        let filters = vec![
            MailFilter {
                id: FilterId(1),
                match_from: None,
                match_subject_contains: Some("news".into()),
                match_all: false,
                action: FilterAction::MoveTo(Folder::Trash),
            },
            MailFilter {
                id: FilterId(2),
                match_from: None,
                match_subject_contains: None,
                match_all: true,
                action: FilterAction::ForwardTo(addr("pat.doe", "freemail-intl.net")),
            },
        ];
        let review = review_filters(&owner, &filters);
        assert_eq!(review.len(), 1);
        assert_eq!(review[0].0, FilterId(2));
        assert!(review[0].1.needs_review());
    }

    #[test]
    fn edit_distance_cap_behaviour() {
        assert_eq!(edit_distance_capped("abc", "abc", 1), 0);
        assert_eq!(edit_distance_capped("abc", "abd", 1), 1);
        assert!(edit_distance_capped("abc", "xyz", 1) > 1);
        assert!(edit_distance_capped("short", "muchlongerstring", 2) > 2);
    }
}
