//! Scam & phishing mail classification.
//!
//! §5.3 formalizes the core principles shared by hijacker scam mail:
//! a credible distress story, sympathy-evoking language, an appearance
//! of limited financial risk (loan + speedy repayment), language that
//! discourages out-of-band verification ("my phone was stolen"), and an
//! untraceable-but-safe-looking transfer mechanism (Western Union /
//! MoneyGram by name). "Detecting and filtering out such emails is a
//! high priority for us" — this module is that filter, implemented as an
//! interpretable feature scorer over exactly those principles, plus a
//! lure detector for credential-phishing mail (§4.1's two structures:
//! link-to-page and reply-with-credentials).

use mhw_mailsys::Message;
use serde::{Deserialize, Serialize};

/// Classifier output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MailClass {
    Clean,
    Scam,
    Phishing,
}

/// Feature hits for one message (exposed for explainability tests and
/// the classifier-quality experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScamFeatures {
    /// Untraceable transfer mechanism named (Western Union, MoneyGram,
    /// wire…).
    pub transfer_mechanism: bool,
    /// Distress story vocabulary (mugged, robbed, hospital, stranded…).
    pub distress_story: bool,
    /// Sympathy/urgency pleading.
    pub plea: bool,
    /// Loan framing with repayment promise ("limited financial risk").
    pub repayment_promise: bool,
    /// Anti-verification language ("phone was stolen", "can only be
    /// reached by email").
    pub anti_verification: bool,
    /// Credential request (password/username + reply/verify).
    pub credential_request: bool,
    /// Carries a URL plus account-pretext vocabulary.
    pub account_pretext_url: bool,
}

fn contains_any(haystack: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| haystack.contains(n))
}

/// Extract interpretable features from a message.
pub fn extract_features(m: &Message) -> ScamFeatures {
    let text = format!("{} {}", m.subject, m.body).to_ascii_lowercase();
    ScamFeatures {
        transfer_mechanism: contains_any(
            &text,
            &["western union", "moneygram", "wire me", "wire the money", "send money", "money transfer"],
        ),
        distress_story: contains_any(
            &text,
            &["mugged", "robbed", "stolen", "stranded", "hospital", "kidney", "accident", "knife", "at gunpoint"],
        ),
        plea: contains_any(
            &text,
            &["urgent", "urgently", "please help", "need your help", "sorry to bother", "desperate"],
        ),
        repayment_promise: contains_any(
            &text,
            &["pay you back", "payback", "repay", "refund you", "as soon as i get back", "temporary loan", "emergency loan"],
        ),
        anti_verification: contains_any(
            &text,
            &["phone was stolen", "cell phone were stolen", "can't call", "cannot call", "only reach me by email", "email is the only way"],
        ),
        credential_request: (text.contains("password") || text.contains("username"))
            && contains_any(&text, &["reply", "confirm", "verify", "send us", "provide"]),
        account_pretext_url: text.contains("http")
            && contains_any(
                &text,
                &["verify", "deactivat", "suspend", "quota", "confirm your account", "unusual activity"],
            ),
    }
}

/// The classifier: weighted noisy-OR per class with thresholds.
#[derive(Debug, Clone)]
pub struct MailClassifier {
    /// Threshold above which mail is labelled scam.
    pub scam_threshold: f64,
    /// Threshold above which mail is labelled phishing.
    pub phishing_threshold: f64,
}

impl Default for MailClassifier {
    fn default() -> Self {
        MailClassifier { scam_threshold: 0.5, phishing_threshold: 0.5 }
    }
}

impl MailClassifier {
    /// Scam score: how many of the §5.3 principles co-occur.
    pub fn scam_score(&self, f: &ScamFeatures) -> f64 {
        let subs = [
            if f.transfer_mechanism { 0.45 } else { 0.0 },
            if f.distress_story { 0.35 } else { 0.0 },
            if f.plea { 0.20 } else { 0.0 },
            if f.repayment_promise { 0.30 } else { 0.0 },
            if f.anti_verification { 0.35 } else { 0.0 },
        ];
        1.0 - subs.iter().fold(1.0, |acc, s| acc * (1.0 - s))
    }

    /// Phishing score: credential request or account-pretext URL.
    pub fn phishing_score(&self, f: &ScamFeatures) -> f64 {
        let subs = [
            if f.credential_request { 0.60 } else { 0.0 },
            if f.account_pretext_url { 0.60 } else { 0.0 },
        ];
        1.0 - subs.iter().fold(1.0, |acc, s| acc * (1.0 - s))
    }

    /// Classify one message.
    pub fn classify(&self, m: &Message) -> MailClass {
        let f = extract_features(m);
        let phish = self.phishing_score(&f);
        let scam = self.scam_score(&f);
        if phish >= self.phishing_threshold && phish >= scam {
            MailClass::Phishing
        } else if scam >= self.scam_threshold {
            MailClass::Scam
        } else {
            MailClass::Clean
        }
    }

    /// Whether delivery should route this message to Spam.
    pub fn should_spam_folder(&self, m: &Message) -> bool {
        self.classify(m) != MailClass::Clean
    }
}

/// Convenience free function with the default classifier.
pub fn classify_mail(m: &Message) -> MailClass {
    MailClassifier::default().classify(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_mailsys::MessageKind;
    use mhw_types::{AccountId, EmailAddress, MessageId, SimTime};

    fn msg(subject: &str, body: &str) -> Message {
        Message {
            id: MessageId(0),
            owner: AccountId(0),
            from: EmailAddress::new("x", "y.com"),
            to: vec![],
            subject: subject.into(),
            body: body.into(),
            attachments: vec![],
            kind: MessageKind::Personal,
            reply_to: None,
            at: SimTime::EPOCH,
            read: false,
            starred: false,
        }
    }

    /// The paper's own Mugged-In-City excerpt must classify as scam.
    #[test]
    fn mugged_in_city_is_scam() {
        let m = msg(
            "Terrible situation, please help",
            "My family and I came down here to West Midlands, UK for a short \
             vacation and we were mugged last night in an alley by a gang of \
             thugs, one of them had a knife poking my neck for almost two \
             minutes and everything we had on us including my cell phone, \
             credit cards were all stolen. I'm urgently in need of some money \
             to pay for my hotel bills and my flight ticket home, will payback \
             as soon as i get back home. Please wire the money by western union.",
        );
        assert_eq!(classify_mail(&m), MailClass::Scam);
        let f = extract_features(&m);
        assert!(f.transfer_mechanism && f.distress_story && f.plea && f.repayment_promise);
    }

    /// The paper's sick-relative excerpt.
    #[test]
    fn sick_relative_is_scam() {
        let m = msg(
            "Sorry to bother you with this",
            "I am presently in Spain with my ill Cousin. She's suffering from \
             a kidney disease and must undergo Kidney Transplant to save her \
             life. I urgently need an emergency loan, will repay you next week. \
             My phone was stolen so email is the only way to reach me. Please \
             send money via moneygram.",
        );
        assert_eq!(classify_mail(&m), MailClass::Scam);
        let f = extract_features(&m);
        assert!(f.anti_verification, "anti-verification language must register");
    }

    #[test]
    fn credential_reply_lure_is_phishing() {
        let m = msg(
            "Action required: account verification",
            "your mailbox exceeded its quota. reply to this message with your \
             username and password so our team can verify your account.",
        );
        assert_eq!(classify_mail(&m), MailClass::Phishing);
    }

    #[test]
    fn url_pretext_lure_is_phishing() {
        let m = msg(
            "Unusual activity on your account",
            "we detected unusual activity. verify your account within 24 hours \
             at http://secure-verify.example/login or it will be deactivated.",
        );
        assert_eq!(classify_mail(&m), MailClass::Phishing);
    }

    #[test]
    fn ordinary_mail_is_clean() {
        for (s, b) in [
            ("lunch?", "want to grab food at noon"),
            ("meeting notes", "attached are the Q3 planning notes"),
            ("wire transfer confirmation", "your wire transfer of $2,400 was completed"),
            ("vacation photos", "here are the beach pictures"),
        ] {
            assert_eq!(classify_mail(&msg(s, b)), MailClass::Clean, "{s}");
        }
    }

    #[test]
    fn single_principle_does_not_convict() {
        // A real traveller asking for help but with verifiable channels
        // and no money mechanics stays clean.
        let m = msg(
            "need a favor",
            "i'm stranded at the airport, can you check if the meeting moved? \
             call me anytime.",
        );
        assert_eq!(classify_mail(&m), MailClass::Clean);
    }

    #[test]
    fn spam_folder_decision_matches_class() {
        let c = MailClassifier::default();
        let scam = msg("help", "i was mugged, please wire me money via western union, urgent, will repay");
        assert!(c.should_spam_folder(&scam));
        let clean = msg("hi", "see you tomorrow");
        assert!(!c.should_spam_folder(&clean));
    }

    #[test]
    fn banking_vocabulary_alone_is_not_phishing() {
        // The victim's own bank mail must not be eaten by the filter.
        let m = msg(
            "Monthly bank statement",
            "your bank statement is attached; log in at http://bank.example to view",
        );
        // Contains a URL but no pretext vocabulary.
        assert_eq!(classify_mail(&m), MailClass::Clean);
    }
}
