//! Graceful degradation for the serve tier.
//!
//! The paper's risk engine ran *online*, where the binding constraint
//! is availability: a scorer that stalls when a dependency degrades
//! fails open for every login behind it. This module gives the
//! streaming service a production failure model while keeping the
//! workspace's determinism contract — nothing here reads a wall clock;
//! breakers and deadlines are keyed to event [`SimTime`] and to a
//! *virtual* nanosecond cost model, so the same fault plan degrades the
//! same events on every run.
//!
//! Three pieces:
//!
//! * [`Fidelity`] — a per-verdict bitset naming which signal sources
//!   were served from fallbacks instead of live state. Full-fidelity
//!   verdicts are byte-identical to batch scoring; degraded ones are
//!   honest about what they did not know.
//! * [`CircuitBreaker`] — one per [`SignalSource`], classic
//!   closed/open/half-open on consecutive faults. An open breaker skips
//!   the source entirely (fallback at zero cost) until a cooldown of
//!   simulated time passes, then probes it half-open.
//! * [`DegradedScoring`] — the per-request ladder: each source is
//!   consulted under its breaker and the request's remaining deadline
//!   budget; a source that is down, too slow, or breaker-open falls
//!   back instead of blocking. Fallbacks are the *conservative prior*
//!   for each signal: missing history scores as a new account, a cold
//!   IP cache as fan-out 1, unlocatable geo as the 0.5 country-novelty
//!   prior the extractor already applies.

#![deny(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use mhw_types::{SimDuration, SimTime};
use std::fmt;

/// The three external state sources a scoring pass consults, in the
/// order the ladder consults them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalSource {
    /// Per-account login history (the [`HistoryStore`]).
    ///
    /// [`HistoryStore`]: crate::signals::HistoryStore
    History,
    /// The per-IP fan-out cache (the [`IpReputation`] LRU).
    ///
    /// [`IpReputation`]: crate::signals::IpReputation
    IpCache,
    /// IP geolocation (the `GeoDb`).
    Geo,
}

impl SignalSource {
    /// All sources, in ladder order.
    pub const ALL: [SignalSource; 3] = [SignalSource::History, SignalSource::IpCache, SignalSource::Geo];

    /// Stable index into per-source arrays.
    pub fn index(self) -> usize {
        match self {
            SignalSource::History => 0,
            SignalSource::IpCache => 1,
            SignalSource::Geo => 2,
        }
    }

    /// The spec / report name for this source.
    pub fn name(self) -> &'static str {
        match self {
            SignalSource::History => "history",
            SignalSource::IpCache => "ip-cache",
            SignalSource::Geo => "geo",
        }
    }

    /// Parse a spec name (`history`, `ip-cache`/`ip`, `geo`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "history" => Some(SignalSource::History),
            "ip-cache" | "ip" => Some(SignalSource::IpCache),
            "geo" => Some(SignalSource::Geo),
            _ => None,
        }
    }
}

/// Which parts of a verdict came from fallbacks — a bitset carried on
/// every [`RiskVerdict`](crate::service::RiskVerdict) and mixed into
/// the replay digest, so degraded scoring is visible (and pinned) in
/// byte-identity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fidelity(u8);

impl Fidelity {
    const HISTORY: u8 = 1 << 0;
    const IP_CACHE: u8 = 1 << 1;
    const GEO: u8 = 1 << 2;
    const SHED: u8 = 1 << 3;

    /// Every signal served from live state.
    pub const FULL: Fidelity = Fidelity(0);

    /// The verdict a shed request gets: never scored, every source
    /// degraded, shed bit set.
    pub fn shed() -> Fidelity {
        Fidelity(Self::HISTORY | Self::IP_CACHE | Self::GEO | Self::SHED)
    }

    /// Mark one source as served from its fallback.
    pub fn degrade(&mut self, source: SignalSource) {
        self.0 |= match source {
            SignalSource::History => Self::HISTORY,
            SignalSource::IpCache => Self::IP_CACHE,
            SignalSource::Geo => Self::GEO,
        };
    }

    /// True when every signal came from live state.
    pub fn is_full(self) -> bool {
        self.0 == 0
    }

    /// True when the request was shed before scoring.
    pub fn is_shed(self) -> bool {
        self.0 & Self::SHED != 0
    }

    /// Was this source served from its fallback?
    pub fn is_degraded(self, source: SignalSource) -> bool {
        self.0
            & match source {
                SignalSource::History => Self::HISTORY,
                SignalSource::IpCache => Self::IP_CACHE,
                SignalSource::Geo => Self::GEO,
            }
            != 0
    }

    /// The raw bitset byte (mixed into replay digests).
    pub fn byte(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Fidelity {
    /// `full`, `shed`, or `degraded:geo+history` style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return f.write_str("full");
        }
        if self.is_shed() {
            return f.write_str("shed");
        }
        f.write_str("degraded:")?;
        let mut first = true;
        for source in SignalSource::ALL {
            if self.is_degraded(source) {
                if !first {
                    f.write_str("+")?;
                }
                first = false;
                f.write_str(source.name())?;
            }
        }
        Ok(())
    }
}

/// One source's injected condition for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceCondition {
    /// The source fails fast (outage): consulting it costs its nominal
    /// latency, returns nothing, and counts as a breaker fault.
    pub down: bool,
    /// Injected response latency in virtual nanoseconds (0 = nominal).
    pub latency_ns: u64,
}

/// The injected conditions for all sources at one event — what a
/// `ServeFaultPlan` resolves to per event index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignalConditions {
    /// Per-source conditions, indexed by [`SignalSource::index`].
    pub sources: [SourceCondition; 3],
}

impl SignalConditions {
    /// Every source healthy at nominal latency.
    pub const fn healthy() -> Self {
        SignalConditions {
            sources: [
                SourceCondition { down: false, latency_ns: 0 },
                SourceCondition { down: false, latency_ns: 0 },
                SourceCondition { down: false, latency_ns: 0 },
            ],
        }
    }

    /// The condition for one source.
    pub fn source(&self, source: SignalSource) -> &SourceCondition {
        &self.sources[source.index()]
    }

    /// Mutable condition for one source (plan builders).
    pub fn source_mut(&mut self, source: SignalSource) -> &mut SourceCondition {
        &mut self.sources[source.index()]
    }
}

/// Breaker tuning. Defaults open after 8 consecutive faults, stay open
/// for 2 simulated hours, and close again after 1 successful probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults that trip a closed breaker open.
    pub fault_threshold: u32,
    /// Simulated time an open breaker waits before probing half-open.
    pub cooldown: SimDuration,
    /// Successful half-open probes required to close.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            fault_threshold: 8,
            cooldown: SimDuration::from_hours(2),
            probes_to_close: 1,
        }
    }
}

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request consults the source.
    Closed,
    /// Tripped: the source is skipped (fallback at zero cost) until
    /// the cooldown elapses in simulated time.
    Open,
    /// Probing: requests consult the source again; one more fault
    /// re-opens, enough successes close.
    HalfOpen,
}

/// Lifetime transition counts for one or more breakers — the
/// availability report's breaker section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerTransitions {
    /// Closed/half-open → open trips.
    pub opened: u64,
    /// Open → half-open probe windows.
    pub half_opened: u64,
    /// Half-open → closed recoveries.
    pub closed: u64,
}

impl BreakerTransitions {
    /// Fold another counter set into this one (cross-shard merge).
    pub fn merge(&mut self, other: &BreakerTransitions) {
        self.opened += other.opened;
        self.half_opened += other.half_opened;
        self.closed += other.closed;
    }
}

/// A deterministic circuit breaker for one signal source, keyed to
/// event [`SimTime`] — no wall clock anywhere, so the same event stream
/// trips and recovers the breaker identically on every run.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_faults: u32,
    opened_at: SimTime,
    probe_successes: u32,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_faults: 0,
            opened_at: SimTime::from_secs(0),
            probe_successes: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state (after any cooldown-driven transition at `at`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counts so far.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// May a request at `at` consult the source? An open breaker whose
    /// cooldown has elapsed moves to half-open here (and permits the
    /// probe); otherwise open means "use the fallback, free".
    pub fn permits(&mut self, at: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if at.since(self.opened_at) >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    self.transitions.half_opened += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The source answered healthily at `at`.
    pub fn record_success(&mut self, _at: SimTime) {
        match self.state {
            BreakerState::Closed => self.consecutive_faults = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.probes_to_close.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_faults = 0;
                    self.transitions.closed += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// The source faulted (outage or deadline overrun) at `at`.
    pub fn record_fault(&mut self, at: SimTime) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_faults += 1;
                if self.consecutive_faults >= self.config.fault_threshold.max(1) {
                    self.trip(at);
                }
            }
            BreakerState::HalfOpen => self.trip(at),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, at: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = at;
        self.consecutive_faults = 0;
        self.probe_successes = 0;
        self.transitions.opened += 1;
    }
}

/// "No deadline": the batch pipeline's budget, under which a healthy
/// service never degrades anything.
pub const DEADLINE_UNLIMITED: u64 = u64::MAX;

/// Fixed per-request bookkeeping cost in virtual nanoseconds.
pub const NOMINAL_OVERHEAD_NS: u64 = 100;
/// Nominal virtual cost of a history lookup.
pub const NOMINAL_HISTORY_NS: u64 = 200;
/// Nominal virtual cost of an IP-cache read.
pub const NOMINAL_IP_NS: u64 = 150;
/// Nominal virtual cost of a geo lookup.
pub const NOMINAL_GEO_NS: u64 = 250;
/// A fully healthy assess: overhead + all three sources.
pub const NOMINAL_ASSESS_NS: u64 =
    NOMINAL_OVERHEAD_NS + NOMINAL_HISTORY_NS + NOMINAL_IP_NS + NOMINAL_GEO_NS;

/// Nominal virtual cost of one source.
pub fn nominal_cost(source: SignalSource) -> u64 {
    match source {
        SignalSource::History => NOMINAL_HISTORY_NS,
        SignalSource::IpCache => NOMINAL_IP_NS,
        SignalSource::Geo => NOMINAL_GEO_NS,
    }
}

/// How long after a cache wipe the fan-out signal is reported as
/// degraded ("saturation-free"): the cache undercounts until a day of
/// traffic has refilled it, but one simulated hour covers the window
/// where verdicts visibly diverge.
pub const COLD_CACHE_WINDOW: SimDuration = SimDuration::from_hours(1);

/// Per-service resilience tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Virtual nanoseconds one assess may spend before remaining
    /// sources downgrade to fallbacks instead of blocking.
    pub deadline_ns: u64,
    /// Breaker tuning shared by all three per-source breakers.
    pub breaker: BreakerConfig,
}

impl Default for ResilienceConfig {
    /// Unlimited deadline (batch posture): degradation only ever comes
    /// from injected outages, never from the cost model.
    fn default() -> Self {
        ResilienceConfig { deadline_ns: DEADLINE_UNLIMITED, breaker: BreakerConfig::default() }
    }
}

impl ResilienceConfig {
    /// Serve posture: the given per-request deadline budget.
    pub fn with_deadline(deadline_ns: u64) -> Self {
        ResilienceConfig { deadline_ns, ..ResilienceConfig::default() }
    }
}

/// Resilience counters a service accumulated — summed across shards
/// into the availability report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// Breaker transitions summed over all three sources.
    pub breakers: BreakerTransitions,
    /// Source consultations abandoned because the per-request deadline
    /// budget ran out (each one downgraded to a fallback).
    pub deadline_downgrades: u64,
}

/// The per-request degradation ladder: breakers + deadline budget.
///
/// [`DegradedScoring::consult`] is called once per source per assess,
/// in ladder order; it answers "query the live source?" and accounts
/// the virtual cost either way. The service maps a `false` to that
/// source's fallback value and marks the verdict's [`Fidelity`].
#[derive(Debug, Clone)]
pub struct DegradedScoring {
    config: ResilienceConfig,
    breakers: [CircuitBreaker; 3],
    /// Until when the IP cache reports as cold after a wipe.
    cold_until: Option<SimTime>,
    deadline_downgrades: u64,
}

impl DegradedScoring {
    /// A healthy ladder with the given tuning.
    pub fn new(config: ResilienceConfig) -> Self {
        DegradedScoring {
            config,
            breakers: [
                CircuitBreaker::new(config.breaker),
                CircuitBreaker::new(config.breaker),
                CircuitBreaker::new(config.breaker),
            ],
            cold_until: None,
            deadline_downgrades: 0,
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// One source's breaker (read side, for tests/reports).
    pub fn breaker(&self, source: SignalSource) -> &CircuitBreaker {
        &self.breakers[source.index()]
    }

    /// Decide whether to query a live source, charging `spent` with the
    /// virtual cost of whatever happens:
    ///
    /// * breaker open (cooldown not elapsed) → fallback, **free** —
    ///   that is the point of a breaker;
    /// * source down → pay its nominal cost (fast error), breaker
    ///   fault, fallback;
    /// * response latency exceeds the remaining deadline budget → wait
    ///   out the budget, breaker fault, fallback — the deadline
    ///   *downgrades* instead of blocking;
    /// * budget already exhausted → fallback without blaming the
    ///   source (an earlier source spent the budget);
    /// * otherwise → pay the (nominal or injected) latency, breaker
    ///   success, query the live source.
    pub fn consult(
        &mut self,
        source: SignalSource,
        cond: &SourceCondition,
        at: SimTime,
        spent: &mut u64,
    ) -> bool {
        let breaker = &mut self.breakers[source.index()];
        if !breaker.permits(at) {
            return false;
        }
        if cond.down {
            *spent = spent.saturating_add(nominal_cost(source));
            breaker.record_fault(at);
            return false;
        }
        let cost = if cond.latency_ns > 0 { cond.latency_ns } else { nominal_cost(source) };
        let remaining = self.config.deadline_ns.saturating_sub(*spent);
        if remaining == 0 {
            self.deadline_downgrades += 1;
            return false;
        }
        if cost > remaining {
            *spent = self.config.deadline_ns;
            self.deadline_downgrades += 1;
            breaker.record_fault(at);
            return false;
        }
        *spent += cost;
        breaker.record_success(at);
        true
    }

    /// Note a cache wipe at `at`: the fan-out signal reports degraded
    /// until [`COLD_CACHE_WINDOW`] of simulated time has passed.
    pub fn note_wipe(&mut self, at: SimTime) {
        self.cold_until = Some(at + COLD_CACHE_WINDOW);
    }

    /// Is the IP cache still inside its post-wipe cold window?
    pub fn is_cold(&self, at: SimTime) -> bool {
        self.cold_until.is_some_and(|until| at < until)
    }

    /// Accumulated counters (summed across the three breakers).
    pub fn snapshot(&self) -> ResilienceSnapshot {
        let mut breakers = BreakerTransitions::default();
        for b in &self.breakers {
            breakers.merge(&b.transitions());
        }
        ResilienceSnapshot { breakers, deadline_downgrades: self.deadline_downgrades }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::HOUR;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fidelity_tracks_and_displays_degraded_sources() {
        let mut f = Fidelity::FULL;
        assert!(f.is_full());
        assert_eq!(f.to_string(), "full");
        f.degrade(SignalSource::Geo);
        f.degrade(SignalSource::History);
        assert!(!f.is_full());
        assert!(f.is_degraded(SignalSource::Geo));
        assert!(!f.is_degraded(SignalSource::IpCache));
        assert_eq!(f.to_string(), "degraded:history+geo");
        assert_eq!(Fidelity::shed().to_string(), "shed");
        assert!(Fidelity::shed().is_degraded(SignalSource::IpCache));
    }

    #[test]
    fn breaker_trips_after_consecutive_faults_and_recovers() {
        let config = BreakerConfig { fault_threshold: 3, ..BreakerConfig::default() };
        let mut b = CircuitBreaker::new(config);
        for i in 0..2 {
            assert!(b.permits(at(i)));
            b.record_fault(at(i));
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_fault(at(2));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.permits(at(3)), "open: fallback without consulting");
        // Cooldown (2 h) elapses in simulated time → half-open probe.
        assert!(b.permits(at(2 + 2 * HOUR)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(at(2 + 2 * HOUR));
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.transitions();
        assert_eq!((t.opened, t.half_opened, t.closed), (1, 1, 1));
    }

    #[test]
    fn half_open_fault_reopens_immediately() {
        let config = BreakerConfig { fault_threshold: 1, ..BreakerConfig::default() };
        let mut b = CircuitBreaker::new(config);
        b.record_fault(at(0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.permits(at(2 * HOUR)));
        b.record_fault(at(2 * HOUR));
        assert_eq!(b.state(), BreakerState::Open, "one probe fault re-opens");
        assert!(!b.permits(at(2 * HOUR + 1)));
        assert_eq!(b.transitions().opened, 2);
    }

    #[test]
    fn consecutive_fault_count_resets_on_success() {
        let config = BreakerConfig { fault_threshold: 2, ..BreakerConfig::default() };
        let mut b = CircuitBreaker::new(config);
        b.record_fault(at(0));
        b.record_success(at(1));
        b.record_fault(at(2));
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive faults do not trip");
    }

    #[test]
    fn consult_charges_nominal_costs_when_healthy() {
        let mut ladder = DegradedScoring::new(ResilienceConfig::default());
        let healthy = SourceCondition::default();
        let mut spent = NOMINAL_OVERHEAD_NS;
        for source in SignalSource::ALL {
            assert!(ladder.consult(source, &healthy, at(0), &mut spent));
        }
        assert_eq!(spent, NOMINAL_ASSESS_NS);
        assert_eq!(ladder.snapshot(), ResilienceSnapshot::default());
    }

    #[test]
    fn outage_falls_back_and_eventually_opens_the_breaker() {
        let mut ladder = DegradedScoring::new(ResilienceConfig::default());
        let down = SourceCondition { down: true, latency_ns: 0 };
        let threshold = ladder.config().breaker.fault_threshold as u64;
        // Until the breaker trips, each consult pays the fast-error cost.
        for i in 0..threshold {
            let mut spent = 0;
            assert!(!ladder.consult(SignalSource::Geo, &down, at(i), &mut spent));
            assert_eq!(spent, NOMINAL_GEO_NS);
        }
        assert_eq!(ladder.breaker(SignalSource::Geo).state(), BreakerState::Open);
        // Open breaker: fallback is free.
        let mut spent = 0;
        assert!(!ladder.consult(SignalSource::Geo, &down, at(threshold), &mut spent));
        assert_eq!(spent, 0, "open breaker skips the source at zero cost");
        assert_eq!(ladder.snapshot().breakers.opened, 1);
    }

    #[test]
    fn slow_source_downgrades_at_the_deadline_instead_of_blocking() {
        let mut ladder = DegradedScoring::new(ResilienceConfig::with_deadline(5_000));
        let slow = SourceCondition { down: false, latency_ns: 25_000 };
        let mut spent = NOMINAL_OVERHEAD_NS;
        assert!(!ladder.consult(SignalSource::Geo, &slow, at(0), &mut spent));
        assert_eq!(spent, 5_000, "waited out the budget, not the injected 25µs");
        assert_eq!(ladder.snapshot().deadline_downgrades, 1);
        // The budget is gone: a later healthy source falls back without
        // being blamed for it.
        let before = ladder.breaker(SignalSource::History).transitions();
        assert!(!ladder.consult(SignalSource::History, &SourceCondition::default(), at(0), &mut spent));
        assert_eq!(ladder.breaker(SignalSource::History).transitions(), before);
        assert_eq!(ladder.snapshot().deadline_downgrades, 2);
    }

    #[test]
    fn wipe_marks_a_cold_window_in_simulated_time() {
        let mut ladder = DegradedScoring::new(ResilienceConfig::default());
        assert!(!ladder.is_cold(at(0)));
        ladder.note_wipe(at(100));
        assert!(ladder.is_cold(at(100)));
        assert!(ladder.is_cold(at(100 + HOUR - 1)));
        assert!(!ladder.is_cold(at(100 + HOUR)));
    }
}
