//! Post-login behavioral detection.
//!
//! §5.2 suggests "an approach that models manual hijacker initial
//! activity on hijacked accounts and compares a logged-in user's
//! activity to this model in order to flag those that exhibit excessive
//! similarity to hijacker activity". §8.2 cautions that behavioral
//! detection is a *last resort* — by the time it fires, the hijacker has
//! already seen the mailbox — but it still interrupts exploitation and
//! triggers proactive account protection.
//!
//! The detector consumes the provider activity log ([`MailEvent`]s) and
//! scores sliding per-account windows on the hijacker-playbook features:
//! finance-hunting searches, special-folder sweeps, contact-list reads,
//! settings changes (filters / Reply-To), outbound fan-out spikes and
//! mass deletion. §8.1's caveat is preserved: every one of these
//! features also occurs in legitimate traffic, so thresholds trade
//! false positives against detection.

use mhw_mailsys::{Folder, MailEvent, MailEventKind};
use mhw_obs::{MetricId, Registry};
use mhw_types::{AccountId, SimDuration, SimTime};
use std::collections::HashMap;

/// Provider-log events the monitor has scored.
pub const M_MONITOR_EVENTS: MetricId = MetricId("defense.monitor_events");
/// Verdicts at/above the flag threshold.
pub const M_MONITOR_FLAGS: MetricId = MetricId("defense.monitor_flags");

/// Features accumulated over one account's recent activity window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityFeatures {
    /// Searches whose query matches finance/credential hunting terms.
    pub hunting_searches: u32,
    /// Other searches.
    pub other_searches: u32,
    /// Distinct special folders opened (Starred/Drafts/Sent/Trash).
    pub special_folders_opened: u32,
    /// Contact-list views.
    pub contact_views: u32,
    /// Filters created or Reply-To changes.
    pub settings_changes: u32,
    /// Messages sent and the max recipient count among them.
    pub messages_sent: u32,
    pub max_recipients: u32,
    /// Messages purged.
    pub purges: u32,
}

/// Terms whose presence in a search marks it as "hunting" — the Table 3
/// vocabulary (finance, linked credentials, blackmail material).
const HUNTING_TERMS: [&str; 16] = [
    "wire transfer",
    "bank transfer",
    "transfer",
    "wire",
    "bank",
    "transferencia",
    "banco",
    "investment",
    "账单",
    "password",
    "username",
    "paypal",
    "passport",
    "sex",
    "is:starred",
    "filename:",
];

/// Whether a raw search query looks like hijacker hunting.
pub fn is_hunting_query(query: &str) -> bool {
    let q = query.to_ascii_lowercase();
    HUNTING_TERMS.iter().any(|t| q.contains(t))
}

/// Verdict for one account window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityVerdict {
    pub score: f64,
    pub flagged: bool,
}

/// Sliding-window behavioral monitor.
#[derive(Debug, Clone)]
pub struct ActivityMonitor {
    /// Window length.
    pub window: SimDuration,
    /// Flag threshold on the combined score.
    pub threshold: f64,
    windows: HashMap<AccountId, (SimTime, ActivityFeatures)>,
    metrics: Registry,
}

impl Default for ActivityMonitor {
    fn default() -> Self {
        // High bar: §8.1 stresses that hijacker actions look like
        // normal-user actions, so only strong combinations flag.
        Self::new(SimDuration::from_hours(1), 0.75)
    }
}

impl ActivityMonitor {
    pub fn new(window: SimDuration, threshold: f64) -> Self {
        ActivityMonitor {
            window,
            threshold,
            windows: HashMap::new(),
            metrics: Registry::new()
                .with_counter(M_MONITOR_EVENTS)
                .with_counter(M_MONITOR_FLAGS),
        }
    }

    /// The monitor's metrics registry (event and flag counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Feed one provider log event; returns the verdict for the
    /// account's current window.
    pub fn observe(&mut self, event: &MailEvent) -> ActivityVerdict {
        let entry = self
            .windows
            .entry(event.account)
            .or_insert_with(|| (event.at, ActivityFeatures::default()));
        // Window expiry: start fresh.
        if event.at.since(entry.0) > self.window {
            *entry = (event.at, ActivityFeatures::default());
        }
        let f = &mut entry.1;
        match &event.kind {
            MailEventKind::Searched { query } => {
                if is_hunting_query(query) {
                    f.hunting_searches += 1;
                } else {
                    f.other_searches += 1;
                }
            }
            MailEventKind::FolderOpened { folder } => {
                if matches!(folder, Folder::Starred | Folder::Drafts | Folder::Sent | Folder::Trash)
                {
                    f.special_folders_opened += 1;
                }
            }
            MailEventKind::ContactsViewed { .. } => f.contact_views += 1,
            MailEventKind::FilterCreated { .. } | MailEventKind::ReplyToChanged { .. } => {
                f.settings_changes += 1
            }
            MailEventKind::Sent { recipients, .. } => {
                f.messages_sent += 1;
                f.max_recipients = f.max_recipients.max(*recipients as u32);
            }
            MailEventKind::Purged { .. } => f.purges += 1,
            _ => {}
        }
        let score = Self::score(f);
        let flagged = score >= self.threshold;
        self.metrics.inc(M_MONITOR_EVENTS);
        if flagged {
            self.metrics.inc(M_MONITOR_FLAGS);
        }
        ActivityVerdict { score, flagged }
    }

    /// Current features for an account (None if never seen).
    pub fn features(&self, account: AccountId) -> Option<&ActivityFeatures> {
        self.windows.get(&account).map(|(_, f)| f)
    }

    /// Score a feature window with a noisy-OR over sub-scores.
    ///
    /// Sub-scores are shaped so that *combinations* matter: a lone
    /// finance search (owners do that) contributes little; finance
    /// search + folder sweep + contacts view + high fan-out — the §5.2
    /// playbook — crosses the threshold.
    pub fn score(f: &ActivityFeatures) -> f64 {
        let hunt = (f.hunting_searches as f64 / 3.0).clamp(0.0, 1.0) * 0.40;
        let sweep = (f.special_folders_opened as f64 / 3.0).clamp(0.0, 1.0) * 0.25;
        let contacts = (f.contact_views as f64).clamp(0.0, 1.0) * 0.15;
        let settings = (f.settings_changes as f64 / 2.0).clamp(0.0, 1.0) * 0.35;
        let fanout = if f.max_recipients >= 10 { 0.25 } else { 0.0 };
        let purge = (f.purges as f64 / 20.0).clamp(0.0, 1.0) * 0.45;
        let subs = [hunt, sweep, contacts, settings, fanout, purge];
        1.0 - subs.iter().fold(1.0, |acc, s| acc * (1.0 - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::Actor;

    fn ev(at: u64, kind: MailEventKind) -> MailEvent {
        MailEvent {
            at: SimTime::from_secs(at),
            account: AccountId(0),
            actor: Actor::Owner, // the monitor never reads this
            kind,
        }
    }

    #[test]
    fn hunting_query_detection() {
        assert!(is_hunting_query("wire transfer"));
        assert!(is_hunting_query("Bank statement 2012"));
        assert!(is_hunting_query("账单"));
        assert!(is_hunting_query("filename:(jpg or png)"));
        assert!(!is_hunting_query("lunch plans"));
        assert!(!is_hunting_query("meeting notes q3"));
    }

    #[test]
    fn lone_owner_search_is_not_flagged() {
        let mut m = ActivityMonitor::default();
        let v = m.observe(&ev(10, MailEventKind::Searched { query: "wire transfer".into() }));
        assert!(!v.flagged, "score {}", v.score);
    }

    #[test]
    fn full_playbook_is_flagged() {
        let mut m = ActivityMonitor::default();
        // The §5.2 profiling sequence compressed into minutes.
        m.observe(&ev(0, MailEventKind::Searched { query: "wire transfer".into() }));
        m.observe(&ev(30, MailEventKind::Searched { query: "bank".into() }));
        m.observe(&ev(60, MailEventKind::Searched { query: "password".into() }));
        m.observe(&ev(90, MailEventKind::FolderOpened { folder: Folder::Starred }));
        m.observe(&ev(120, MailEventKind::FolderOpened { folder: Folder::Drafts }));
        let v = m.observe(&ev(150, MailEventKind::ContactsViewed { count: 80 }));
        assert!(v.score > 0.5, "profiling alone score {}", v.score);
        // Exploitation alone stays under the bar (§8.2: last resort)…
        m.observe(&ev(400, MailEventKind::Sent { message: mhw_types::MessageId(1), recipients: 40 }));
        let v1 = m.observe(&ev(420, MailEventKind::FilterCreated { filter: mhw_types::FilterId(0) }));
        assert!(!v1.flagged, "mid-exploitation score {}", v1.score);
        // …but the full retention combination crosses it.
        let v2 = m.observe(&ev(440, MailEventKind::ReplyToChanged { to: None }));
        assert!(v2.flagged, "playbook score {}", v2.score);
    }

    #[test]
    fn window_expiry_resets_features() {
        let mut m = ActivityMonitor::default();
        m.observe(&ev(0, MailEventKind::Searched { query: "wire transfer".into() }));
        m.observe(&ev(10, MailEventKind::Searched { query: "bank".into() }));
        // Two hours later (window is 1h) the slate is clean.
        let v = m.observe(&ev(2 * 3600 + 11, MailEventKind::Searched { query: "paypal".into() }));
        assert_eq!(m.features(AccountId(0)).unwrap().hunting_searches, 1);
        assert!(!v.flagged);
    }

    #[test]
    fn mass_deletion_dominates() {
        let mut m = ActivityMonitor::default();
        let mut last = ActivityVerdict { score: 0.0, flagged: false };
        for i in 0..25 {
            last = m.observe(&ev(i, MailEventKind::Purged { message: mhw_types::MessageId(i as u32) }));
        }
        // Mass deletion alone: strong but sub-threshold; §8.2 notes the
        // lockout *signals* but the combination seals it.
        assert!(last.score >= 0.44, "purge score {}", last.score);
        let v = m.observe(&ev(30, MailEventKind::ReplyToChanged { to: None }));
        assert!(v.score > last.score);
    }

    #[test]
    fn organic_mail_reading_scores_zero() {
        let mut m = ActivityMonitor::default();
        let v1 = m.observe(&ev(0, MailEventKind::Read { message: mhw_types::MessageId(0) }));
        let v2 = m.observe(&ev(
            5,
            MailEventKind::Delivered { message: mhw_types::MessageId(1), spam_foldered: false },
        ));
        assert_eq!(v1.score, 0.0);
        assert_eq!(v2.score, 0.0);
    }

    #[test]
    fn score_monotone_in_hunting_searches() {
        let mut f = ActivityFeatures::default();
        let mut prev = ActivityMonitor::score(&f);
        for _ in 0..5 {
            f.hunting_searches += 1;
            let s = ActivityMonitor::score(&f);
            assert!(s >= prev);
            prev = s;
        }
    }
}
