//! User notifications.
//!
//! §8.2: "Triggering notifications on critical events is very effective
//! to thwart hijacking attempts and speed up the recovery process …
//! We notify our users upon account settings changes, blocked suspicious
//! logins, and unusual in-product activity for which we have high
//! confidence." Notifications go out over *independent* channels (SMS or
//! the secondary email) so a hijacker in control of the mailbox cannot
//! intercept them; their delivery success therefore depends on the
//! victim's recovery-option hygiene, which is what couples notification
//! quality to the Figure 9 recovery-latency distribution.

use mhw_identity::RecoveryOptions;
use mhw_obs::{MetricId, Registry};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, Entry, EventSink, LogStore, ShardId, SimTime};
use serde::{Deserialize, Serialize};

/// Notification attempts fired (any channel, including none-on-file).
pub const M_NOTIFICATIONS_SENT: MetricId = MetricId("defense.notifications_sent");
/// Notifications that actually reached the user.
pub const M_NOTIFICATIONS_DELIVERED: MetricId = MetricId("defense.notifications_delivered");

/// The critical events that trigger a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotificationEvent {
    PasswordChanged,
    RecoveryOptionsChanged,
    SuspiciousLoginBlocked,
    UnusualActivity,
}

/// The independent channel used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotificationChannel {
    Sms,
    SecondaryEmail,
    /// No independent channel on file — the user will only find out by
    /// noticing the account broke.
    None,
}

/// One notification attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NotificationRecord {
    pub at: SimTime,
    pub account: AccountId,
    pub event: NotificationEvent,
    pub channel: NotificationChannel,
    /// Whether it actually reached the user.
    pub delivered: bool,
}

/// The notification engine.
#[derive(Debug, Clone)]
pub struct NotificationEngine {
    log: LogStore<NotificationRecord>,
    metrics: Registry,
}

impl Default for NotificationEngine {
    fn default() -> Self {
        NotificationEngine {
            log: LogStore::default(),
            metrics: Registry::new()
                .with_counter(M_NOTIFICATIONS_SENT)
                .with_counter(M_NOTIFICATIONS_DELIVERED),
        }
    }
}

impl NotificationEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine owned by logical shard `shard`; its activity log
    /// entries carry the shard id for cross-shard merging.
    pub fn for_shard(shard: ShardId) -> Self {
        NotificationEngine {
            log: LogStore::for_shard(shard),
            ..Self::default()
        }
    }

    /// The engine's metrics registry (sent/delivered counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Fire a notification for `event`, choosing the best independent
    /// channel the account has. Returns the record (also appended to the
    /// engine's log).
    pub fn notify(
        &mut self,
        account: AccountId,
        event: NotificationEvent,
        options: &RecoveryOptions,
        at: SimTime,
        rng: &mut SimRng,
    ) -> NotificationRecord {
        let opts = options.get(account);
        let (channel, delivered) = if let Some(phone) = &opts.phone {
            (
                NotificationChannel::Sms,
                phone.up_to_date && rng.chance(phone.gateway_reliability),
            )
        } else if let Some(email) = &opts.email {
            // Mistyped or recycled secondary addresses never reach the
            // real user.
            (
                NotificationChannel::SecondaryEmail,
                !email.mistyped && !email.recycled && rng.chance(0.9),
            )
        } else {
            (NotificationChannel::None, false)
        };
        let record = NotificationRecord { at, account, event, channel, delivered };
        self.metrics.inc(M_NOTIFICATIONS_SENT);
        if delivered {
            self.metrics.inc(M_NOTIFICATIONS_DELIVERED);
        }
        self.log.emit(at, record);
        record
    }

    /// The engine's notification log.
    pub fn log(&self) -> &LogStore<NotificationRecord> {
        &self.log
    }

    /// The underlying segment (for cross-shard merging).
    pub fn log_store(&self) -> &LogStore<NotificationRecord> {
        &self.log
    }

    /// First delivered notification for an account at/after `since`
    /// (drives how fast the victim notices a hijack).
    pub fn first_delivered_after(
        &self,
        account: AccountId,
        since: SimTime,
    ) -> Option<Entry<'_, NotificationRecord>> {
        self.log
            .entries()
            .find(|r| r.account == account && r.at >= since && r.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::{RecoveryEmail, RecoveryPhone};
    use mhw_types::{Actor, CountryCode, EmailAddress, PhoneNumber};

    fn options(phone: bool, up_to_date: bool, email: bool, broken_email: bool) -> RecoveryOptions {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.init(
            AccountId(0),
            phone.then(|| RecoveryPhone {
                number: PhoneNumber::new(CountryCode::US, 55500077),
                up_to_date,
                gateway_reliability: 1.0,
            }),
            email.then(|| RecoveryEmail {
                address: EmailAddress::new("me", "backup.net"),
                verified: true,
                mistyped: broken_email,
                recycled: false,
            }),
            None,
        );
        let _ = Actor::Owner;
        o
    }

    #[test]
    fn sms_preferred_and_delivered() {
        let o = options(true, true, true, false);
        let mut e = NotificationEngine::new();
        let mut rng = SimRng::from_seed(1);
        let r = e.notify(AccountId(0), NotificationEvent::PasswordChanged, &o, SimTime::from_secs(5), &mut rng);
        assert_eq!(r.channel, NotificationChannel::Sms);
        assert!(r.delivered);
    }

    #[test]
    fn stale_phone_fails_delivery() {
        let o = options(true, false, false, false);
        let mut e = NotificationEngine::new();
        let mut rng = SimRng::from_seed(2);
        let r = e.notify(AccountId(0), NotificationEvent::UnusualActivity, &o, SimTime::from_secs(5), &mut rng);
        assert_eq!(r.channel, NotificationChannel::Sms);
        assert!(!r.delivered);
    }

    #[test]
    fn email_fallback_respects_hygiene() {
        let good = options(false, false, true, false);
        let bad = options(false, false, true, true);
        let mut e = NotificationEngine::new();
        let mut rng = SimRng::from_seed(3);
        let mut good_delivered = 0;
        for _ in 0..200 {
            if e.notify(AccountId(0), NotificationEvent::RecoveryOptionsChanged, &good, SimTime::from_secs(1), &mut rng).delivered {
                good_delivered += 1;
            }
            let r = e.notify(AccountId(0), NotificationEvent::RecoveryOptionsChanged, &bad, SimTime::from_secs(1), &mut rng);
            assert!(!r.delivered, "mistyped email must never deliver");
        }
        assert!(good_delivered > 150, "good email should mostly deliver: {good_delivered}");
    }

    #[test]
    fn no_channel_no_delivery() {
        let o = options(false, false, false, false);
        let mut e = NotificationEngine::new();
        let mut rng = SimRng::from_seed(4);
        let r = e.notify(AccountId(0), NotificationEvent::SuspiciousLoginBlocked, &o, SimTime::from_secs(1), &mut rng);
        assert_eq!(r.channel, NotificationChannel::None);
        assert!(!r.delivered);
    }

    #[test]
    fn first_delivered_lookup() {
        let o = options(true, true, false, false);
        let mut e = NotificationEngine::new();
        let mut rng = SimRng::from_seed(5);
        e.notify(AccountId(0), NotificationEvent::PasswordChanged, &o, SimTime::from_secs(10), &mut rng);
        e.notify(AccountId(0), NotificationEvent::UnusualActivity, &o, SimTime::from_secs(20), &mut rng);
        let hit = e.first_delivered_after(AccountId(0), SimTime::from_secs(15)).unwrap();
        assert_eq!(hit.at, SimTime::from_secs(20));
        assert!(e.first_delivered_after(AccountId(1), SimTime::from_secs(0)).is_none());
    }
}
