//! # mhw-defense
//!
//! The defender — a reconstruction of the defense systems §8 of the
//! paper describes, built as real algorithms over the substrates:
//!
//! * [`signals`] / [`risk`] — **login-time risk analysis**, "the best
//!   defense strategy that an identity provider can implement
//!   server-side since it stops the hijacker before getting into the
//!   account". The paper cannot disclose Google's signals; ours are a
//!   principled reconstruction (country novelty, geo-velocity, device
//!   novelty, IP fan-out, odd hours, failure bursts) combined noisy-OR
//!   style into a risk score with challenge/block thresholds.
//! * [`challenge`] — the **login challenge** (§8.2): SMS possession
//!   proof preferred, knowledge questions as fallback, "easy to pass for
//!   our users, but hard for hijackers".
//! * [`service`] — the **streaming risk service**: the [`RiskService`]
//!   trait scores one login at a time against bounded state (sliding
//!   per-account windows, LRU-bounded IP cache via [`lru`]), the way
//!   the paper's engine ran online at the provider.
//! * [`degrade`] — the serve tier's **overload model**: per-source
//!   circuit breakers, deadline budgets, and degraded-scoring fallbacks
//!   with a per-verdict [`Fidelity`] record, all deterministic (keyed
//!   to event `SimTime` and a virtual cost model, never wall clock).
//! * [`pipeline`] — the full login flow: password check → risk score →
//!   challenge/block → session, appending every attempt to the
//!   [`LoginLog`](mhw_identity::LoginLog). A thin batch adapter over
//!   the same [`RiskService`] scoring path serve mode uses.
//! * [`activity`] — **account behavioral risk analysis** (§8.2's "last
//!   resort"): a model of manual-hijacker profiling behaviour (finance
//!   searches, special-folder sweeps, contacts view, settings changes,
//!   outbound fan-out) scored against each account's post-login
//!   activity.
//! * [`classifier`] — the **scam/phishing mail classifier** built from
//!   the five scam principles the paper formalizes in §5.3.
//! * [`notify`] — **user notifications** over independent channels on
//!   critical events (§8.2), which accelerate victim reaction and drive
//!   the Figure 9 recovery-latency distribution.

pub mod activity;
pub mod challenge;
pub mod classifier;
pub mod degrade;
pub mod lru;
pub mod notify;
pub mod pipeline;
pub mod redirects;
pub mod risk;
pub mod service;
pub mod signals;

pub use activity::{ActivityFeatures, ActivityMonitor, ActivityVerdict};
pub use challenge::{AnswererCapabilities, ChallengePolicy};
pub use classifier::{classify_mail, MailClass, MailClassifier};
pub use degrade::{
    BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker, DegradedScoring, Fidelity,
    ResilienceConfig, ResilienceSnapshot, SignalConditions, SignalSource, SourceCondition,
    DEADLINE_UNLIMITED, NOMINAL_ASSESS_NS,
};
pub use notify::{NotificationChannel, NotificationEngine, NotificationEvent, NotificationRecord};
pub use lru::LruCache;
pub use pipeline::{LoginContext, LoginPipeline, LoginRequest};
pub use redirects::{classify_redirect, review_filters, RedirectVerdict};
pub use risk::{RiskDecision, RiskEngine, RiskWeights};
pub use service::{
    Assessment, RiskService, RiskVerdict, ServiceLimits, StateSize, StreamingRiskService,
};
pub use signals::{
    AccountHistory, HistoryStore, IpReputation, LoginSignals, DEFAULT_IP_CACHE_CAPACITY,
};
