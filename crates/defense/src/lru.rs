//! A fixed-capacity LRU cache.
//!
//! The serve-mode bound on provider-wide state: [`IpReputation`] keys
//! its per-IP activity by this cache so memory stays O(capacity) no
//! matter how many distinct addresses a login stream touches. The
//! implementation is the classic intrusive doubly-linked recency list
//! over a slot arena plus a `HashMap` index — `get`/insert/evict are
//! all O(1) (amortized), with no per-operation allocation once the
//! arena is full.
//!
//! [`IpReputation`]: crate::signals::IpReputation

#![deny(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Towards the most-recently-used end.
    prev: usize,
    /// Towards the least-recently-used end.
    next: usize,
}

/// A bounded map that evicts the least-recently-used entry on overflow.
///
/// Recency is updated by [`get_mut`](LruCache::get_mut) and
/// [`get_or_insert_with`](LruCache::get_or_insert_with);
/// [`peek`](LruCache::peek) reads without touching the recency order.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty).
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Copy, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlink slot `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Link slot `i` in at the most-recently-used end.
    fn attach_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Mutable access, marking the entry most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.detach(i);
            self.attach_front(i);
        }
        Some(&mut self.slots[i].value)
    }

    /// Read-only access that does NOT touch the recency order.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Drop every entry, keeping the configured capacity. The slot
    /// arena is released too (a wiped cache rebuilds it on demand) —
    /// this is the serve tier's `cache-wipe` fault, so it must model a
    /// genuinely cold cache, not a warm arena with empty entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Fetch `key` (touching it) or insert `default()`, evicting the
    /// least-recently-used entry if the cache is at capacity. Returns
    /// the entry's value.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if let Some(&i) = self.map.get(&key) {
            if self.head != i {
                self.detach(i);
                self.attach_front(i);
            }
            return &mut self.slots[i].value;
        }
        let i = if self.slots.len() < self.capacity {
            // Arena not yet full: allocate a fresh slot.
            self.slots.push(Slot { key, value: default(), prev: NIL, next: NIL });
            self.slots.len() - 1
        } else {
            // Reuse the least-recently-used slot in place.
            let i = self.tail;
            self.detach(i);
            self.map.remove(&self.slots[i].key);
            self.slots[i].key = key;
            self.slots[i].value = default();
            i
        };
        self.map.insert(key, i);
        self.attach_front(i);
        &mut self.slots[i].value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_reads_back() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        *c.get_or_insert_with(1, || "a") = "a";
        c.get_or_insert_with(2, || "b");
        assert_eq!(c.peek(&1), Some(&"a"));
        assert_eq!(c.peek(&2), Some(&"b"));
        assert_eq!(c.peek(&3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 0..3 {
            c.get_or_insert_with(k, || k * 10);
        }
        // Touch 0 so 1 becomes the LRU entry.
        c.get_mut(&0);
        c.get_or_insert_with(3, || 30);
        assert_eq!(c.peek(&1), None, "untouched entry evicted");
        assert_eq!(c.peek(&0), Some(&0));
        assert_eq!(c.peek(&2), Some(&20));
        assert_eq!(c.peek(&3), Some(&30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        let mut c: LruCache<u64, u64> = LruCache::new(64);
        for k in 0..100_000u64 {
            *c.get_or_insert_with(k, || 0) = k;
        }
        assert_eq!(c.len(), 64);
        // The survivors are exactly the most recent 64 keys.
        for k in 100_000 - 64..100_000 {
            assert_eq!(c.peek(&k), Some(&k));
        }
        assert_eq!(c.peek(&0), None);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.get_or_insert_with(1, || 1);
        c.get_or_insert_with(2, || 2);
        c.peek(&1); // no touch: 1 is still the LRU entry
        c.get_or_insert_with(3, || 3);
        assert_eq!(c.peek(&1), None);
        assert_eq!(c.peek(&2), Some(&2));
    }

    #[test]
    fn reinserting_existing_key_touches_instead_of_growing() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.get_or_insert_with(1, || 1);
        c.get_or_insert_with(2, || 2);
        c.get_or_insert_with(1, || 99); // existing: value kept, touched
        assert_eq!(c.peek(&1), Some(&1));
        c.get_or_insert_with(3, || 3); // evicts 2, not 1
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&1));
    }

    #[test]
    fn single_slot_cache_works() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.get_or_insert_with(1, || 1);
        c.get_or_insert_with(2, || 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), None);
        assert_eq!(c.peek(&2), Some(&2));
    }
}
