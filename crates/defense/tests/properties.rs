//! Property tests for the bounded-state primitives under the
//! streaming service: `LruCache` edge cases (degenerate capacities,
//! `peek` recency-neutrality under eviction pressure) and
//! `HistoryStore` total-get semantics for never-seen accounts.

use mhw_defense::lru::LruCache;
use mhw_defense::signals::HistoryStore;
use mhw_types::AccountId;
use proptest::prelude::*;

#[test]
fn lru_capacity_zero_clamps_to_one() {
    let mut c: LruCache<u32, u32> = LruCache::new(0);
    assert_eq!(c.capacity(), 1, "capacity 0 is clamped to 1");
    c.get_or_insert_with(1, || 10);
    c.get_or_insert_with(2, || 20);
    assert_eq!(c.len(), 1);
    assert_eq!(c.peek(&1), None);
    assert_eq!(c.peek(&2), Some(&20), "the newest insert survives");
}

#[test]
fn lru_clear_empties_but_keeps_capacity() {
    let mut c: LruCache<u32, u32> = LruCache::new(4);
    for k in 0..10 {
        c.get_or_insert_with(k, || k);
    }
    assert_eq!(c.len(), 4);
    c.clear();
    assert!(c.is_empty());
    assert_eq!(c.capacity(), 4);
    assert_eq!(c.peek(&9), None, "a wiped cache is genuinely cold");
    c.get_or_insert_with(7, || 70);
    assert_eq!(c.peek(&7), Some(&70), "a wiped cache accepts new entries");
}

proptest! {
    /// A capacity-1 cache always holds exactly the last-inserted key,
    /// whatever the access sequence.
    #[test]
    fn lru_capacity_one_holds_only_the_last_insert(
        keys in proptest::collection::vec(0u32..8, 1..40),
    ) {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for &k in &keys {
            *c.get_or_insert_with(k, || 0) = k * 10;
        }
        prop_assert_eq!(c.len(), 1);
        let last = *keys.last().unwrap();
        let expected = last * 10;
        for k in 0..8 {
            prop_assert_eq!(c.peek(&k), if k == last { Some(&expected) } else { None });
        }
    }

    /// `peek` never perturbs eviction: a cache that additionally peeks
    /// between every operation evicts exactly the same keys as one
    /// that never peeks. Ops are encoded as op*16+key over a 16-key
    /// domain against a capacity-4 cache, so eviction pressure is
    /// constant.
    #[test]
    fn lru_peek_is_recency_neutral_under_eviction_pressure(
        ops in proptest::collection::vec(0u32..32, 1..120),
    ) {
        let mut with_peeks: LruCache<u32, u32> = LruCache::new(4);
        let mut without: LruCache<u32, u32> = LruCache::new(4);
        for &op in &ops {
            let key = op % 16;
            match op / 16 {
                0 => {
                    *with_peeks.get_or_insert_with(key, || 0) = key;
                    *without.get_or_insert_with(key, || 0) = key;
                }
                _ => {
                    with_peeks.get_mut(&key);
                    without.get_mut(&key);
                }
            }
            // The probe sequence only the first cache sees.
            for k in 0..16 {
                with_peeks.peek(&k);
            }
        }
        prop_assert_eq!(with_peeks.len(), without.len());
        for k in 0..16 {
            prop_assert_eq!(
                with_peeks.peek(&k),
                without.peek(&k),
                "peeks changed the survivor set at key {}",
                k
            );
        }
    }

    /// The history store is total: reading any never-seen account
    /// yields the empty history and materializes nothing, however many
    /// reads happen and wherever the ids land.
    #[test]
    fn history_store_total_get_never_materializes(
        probes in proptest::collection::vec(0u32..1_000_000, 1..50),
    ) {
        let mut store = HistoryStore::new();
        store.register(AccountId(3));
        let len_before = store.len();
        for &id in &probes {
            let h = store.get(AccountId(id + 10)); // ids disjoint from the registered one
            prop_assert_eq!(h.total_logins(), 0);
            prop_assert_eq!(h.failures_in_last_day(mhw_types::SimTime::from_secs(0)), 0);
        }
        prop_assert_eq!(store.len(), len_before, "total get must not materialize");
        // get_mut is the materializing path.
        store.get_mut(AccountId(probes[0] + 10));
        prop_assert_eq!(store.len(), len_before + 1);
    }
}
