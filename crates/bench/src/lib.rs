//! # mhw-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Each bench
//! target regenerates one of the paper's tables/figures (or one of the
//! design-choice ablations DESIGN.md calls out); building the simulated
//! worlds is expensive, so fixtures are constructed once per process
//! and reused across benchmark iterations.

use mhw_core::{run_form_campaigns, Ecosystem, FormCampaignOutput, ScenarioBuilder};
use std::sync::OnceLock;

pub mod sweep;

/// A small finished ecosystem run shared by the extraction benches.
pub fn bench_world() -> &'static Ecosystem {
    static WORLD: OnceLock<Ecosystem> = OnceLock::new();
    WORLD.get_or_init(|| ScenarioBuilder::small_test(0xBE7C).days(10).run())
}

/// A finished form-campaign batch shared by the Figures 3–6 benches.
pub fn bench_forms() -> &'static FormCampaignOutput {
    static FORMS: OnceLock<FormCampaignOutput> = OnceLock::new();
    FORMS.get_or_init(|| run_form_campaigns(25, true, 0xBE7C))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(bench_world().stats.organic_logins > 0);
        assert!(!bench_forms().pages.is_empty());
    }
}
