//! Fork-sweep driver: fan a grid of divergent continuations from one
//! frozen [`WorldSnapshot`] across a [`WorkerPool`].
//!
//! A parameter sweep (4 seeds x 4 defense postures, say) repeats the
//! same expensive prefix — build the population, warm up user state,
//! simulate the undiverged days — once per cell. The fork driver pays
//! for that prefix once: [`fork_sweep`] forks one copy-on-write
//! continuation per cell from a shared snapshot, so each cell costs
//! O(clone + tail days) instead of O(build + all days). The
//! from-scratch control arm ([`scratch_sweep`]) runs the identical
//! grid as full builds over the same pool shape, which is what
//! `benches/fork_sweep.rs` measures `BENCH_fork.json`'s speedup
//! against.
//!
//! Cells are fanned over the pool while each cell's engine runs
//! single-worker — the sweep is embarrassingly parallel at cell
//! granularity, and nesting a pool per cell would oversubscribe the
//! host. Outcomes come back in cell order regardless of scheduling,
//! and a cell's digest never depends on the pool width.
//!
//! Each cell reports two separate timings: `run_s` (forking/building
//! and simulating — the cost the fork optimization attacks) and
//! `digest_s` (digesting the finished dataset and extracting stats —
//! identical work in both arms, kept out of the speedup ratio so it
//! cannot dilute what is being measured). The finished run is dropped
//! inside the cell, so a 16-cell sweep never holds 16 worlds at once.

use mhw_core::{
    DefenseConfig, EngineResult, RecoveryConfig, ShardedEngine, WorkerPool, WorldSnapshot,
};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One cell of a sweep grid: a label plus the divergence applied to
/// its continuation. A `None` field keeps the snapshot's own value, so
/// `SweepCell::baseline` reproduces the uninterrupted run byte for
/// byte — the digest cross-check `benches/fork_sweep.rs` pins.
///
/// ```
/// use mhw_bench::sweep::SweepCell;
/// use mhw_core::{DefenseConfig, RecoveryConfig};
///
/// // A defense × recovery grid is cells with each axis set (or left
/// // as the snapshot's own value for the baseline):
/// let cells = vec![
///     SweepCell::baseline("full/legacy"),
///     SweepCell::baseline("full/strict").recovery(RecoveryConfig::strict()),
///     SweepCell::baseline("none/strict")
///         .defense(DefenseConfig::none())
///         .recovery(RecoveryConfig::strict()),
/// ];
/// assert_eq!(cells[0].defense, None); // baseline keeps the snapshot's
/// assert!(cells[2].defense.is_some() && cells[2].recovery.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Human-readable cell name carried into the outcome row.
    pub label: String,
    /// Divergent RNG seed, or `None` to keep the snapshot's seed.
    pub seed: Option<u64>,
    /// Divergent defense posture, or `None` to keep the snapshot's.
    pub defense: Option<DefenseConfig>,
    /// Divergent recovery risk policy, or `None` to keep the
    /// snapshot's.
    pub recovery: Option<RecoveryConfig>,
}

impl SweepCell {
    /// A cell that reproduces the snapshot's own run unchanged.
    pub fn baseline(label: impl Into<String>) -> Self {
        SweepCell { label: label.into(), seed: None, defense: None, recovery: None }
    }

    /// Diverge this cell's RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Diverge this cell's defense posture.
    pub fn defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Diverge this cell's recovery risk policy (claim-scoring posture
    /// + adversary pivot).
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }
}

/// The measured outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's label, copied from its [`SweepCell`].
    pub label: String,
    /// The seed the cell actually ran with.
    pub seed: u64,
    /// Order-independent dataset digest of the finished run.
    pub digest: u64,
    /// Total hijacking incidents across shards.
    pub incidents: u64,
    /// Incidents the hijacker exploited before losing access.
    pub exploited: u64,
    /// Owner recovery claims denied by claim risk scoring (the
    /// frontier's legitimate-lockout cost; 0 with scoring off).
    pub recovery_lockouts: u64,
    /// Owner claims that hit a step-up challenge.
    pub recovery_step_ups: u64,
    /// Hijacker recovery-pivot claims filed (0 with the pivot off).
    pub pivot_attempts: u64,
    /// Pivot claims that took the account over.
    pub pivot_takeovers: u64,
    /// Wall-clock seconds producing the finished run (fork + tail days
    /// in the fork arm; build + all days in the scratch arm).
    pub run_s: f64,
    /// Wall-clock seconds digesting the dataset and extracting stats —
    /// the same work in both arms, reported separately so the fork
    /// speedup compares production cost, not consumption cost.
    pub digest_s: f64,
}

/// Fork one continuation per cell from `snapshot` and fan the cells
/// across a pool of `pool_workers` threads. Every fork is
/// digest-verified at the fork point before diverging (see
/// [`WorldSnapshot::fork`]), so a corrupted clone surfaces as
/// `EngineError::CheckpointMismatch` rather than silently wrong data.
pub fn fork_sweep(
    snapshot: &WorldSnapshot,
    cells: &[SweepCell],
    pool_workers: usize,
) -> EngineResult<Vec<CellOutcome>> {
    run_cells(cells, pool_workers, snapshot.seed(), |cell| {
        let mut fork = snapshot.fork().workers(1);
        if let Some(seed) = cell.seed {
            fork = fork.seed(seed);
        }
        if let Some(defense) = cell.defense {
            fork = fork.defense(defense);
        }
        if let Some(recovery) = cell.recovery {
            fork = fork.recovery(recovery);
        }
        fork.run()
    })
}

/// The from-scratch control arm: run every cell as a full build + run
/// over the same pool shape. `engine_for` must assemble the engine
/// exactly as the snapshot's prefix was (shards, decoy schedule,
/// spillover) with the cell's divergence applied to the base config,
/// so the baseline cell stays digest-comparable to its forked twin;
/// `base_seed` labels cells that did not diverge their seed.
pub fn scratch_sweep(
    engine_for: &(dyn Fn(&SweepCell) -> ShardedEngine + Sync),
    base_seed: u64,
    cells: &[SweepCell],
    pool_workers: usize,
) -> EngineResult<Vec<CellOutcome>> {
    run_cells(cells, pool_workers, base_seed, |cell| engine_for(cell).run())
}

/// Fan `run_one` over the cells on a [`WorkerPool`], timing each cell's
/// run and digest separately and collecting outcomes back into cell
/// order. The first engine error (by cell index) is propagated; a
/// panicking cell re-panics on the caller.
fn run_cells(
    cells: &[SweepCell],
    pool_workers: usize,
    base_seed: u64,
    run_one: impl Fn(&SweepCell) -> EngineResult<mhw_core::ShardedRun> + Sync,
) -> EngineResult<Vec<CellOutcome>> {
    let slots: Vec<Mutex<Option<EngineResult<CellOutcome>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    WorkerPool::scoped(pool_workers, |pool| {
        pool.run(cells.len(), &|_worker, i| {
            let cell = &cells[i];
            let t0 = Instant::now();
            let result = run_one(cell).map(|run| {
                let run_s = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let digest = run.dataset_digest();
                let stats = run.total_stats();
                CellOutcome {
                    label: cell.label.clone(),
                    seed: cell.seed.unwrap_or(base_seed),
                    digest,
                    incidents: stats.incidents,
                    exploited: stats.exploited,
                    recovery_lockouts: stats.recovery_lockouts,
                    recovery_step_ups: stats.recovery_step_ups,
                    pivot_attempts: stats.pivot_attempts,
                    pivot_takeovers: stats.pivot_takeovers,
                    run_s,
                    digest_s: t1.elapsed().as_secs_f64(),
                }
            });
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        })
    })
    .unwrap_or_else(|job| panic!("sweep cell {} panicked: {}", job.index, job.payload));
    let mut outcomes = Vec::with_capacity(cells.len());
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(cell_outcome)) => outcomes.push(cell_outcome),
            Some(Err(err)) => return Err(err),
            None => unreachable!("worker pool finished without filling every cell"),
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_core::ScenarioConfig;

    fn config(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig::small_test(seed);
        config.days = 6;
        config.population.n_users = 120;
        config.market_share = 0.3;
        config
    }

    fn engine(seed: u64) -> ShardedEngine {
        ShardedEngine::new(config(seed), 2).workers(1).decoys(4, 6)
    }

    #[test]
    fn fork_sweep_baseline_matches_scratch_and_orders_outcomes() {
        let snap = engine(7).snapshot_after(4).expect("snapshot");
        let cells = vec![
            SweepCell::baseline("baseline"),
            SweepCell::baseline("reseeded").seed(0xFEED),
            SweepCell::baseline("undefended").defense(DefenseConfig::none()),
            SweepCell::baseline("strict-recovery").recovery(RecoveryConfig::strict()),
        ];
        let forked = fork_sweep(&snap, &cells, 2).expect("fork sweep");
        let scratch = scratch_sweep(
            &|cell| {
                let mut config = config(7);
                if let Some(seed) = cell.seed {
                    config.seed = seed;
                }
                if let Some(defense) = cell.defense {
                    config.defense = defense;
                }
                if let Some(recovery) = cell.recovery {
                    config.recovery = recovery;
                }
                ShardedEngine::new(config, 2).workers(1).decoys(4, 6)
            },
            7,
            &cells,
            2,
        )
        .expect("scratch sweep");
        assert_eq!(forked.len(), 4);
        for (cell, row) in cells.iter().zip(&forked) {
            assert_eq!(row.label, cell.label, "outcomes came back out of cell order");
        }
        // The baseline fork reproduces the from-scratch world exactly.
        assert_eq!(forked[0].digest, scratch[0].digest);
        assert_eq!(forked[0].seed, 7);
        // Divergent cells actually diverged.
        assert_ne!(forked[1].digest, forked[0].digest);
        assert_ne!(forked[2].digest, forked[0].digest);
        assert_ne!(forked[3].digest, forked[0].digest, "recovery divergence must bite");
        // Pool width is mechanics: same outcomes single-threaded.
        let single = fork_sweep(&snap, &cells, 1).expect("single-worker sweep");
        for (a, b) in forked.iter().zip(&single) {
            assert_eq!(a.digest, b.digest);
        }
    }
}
