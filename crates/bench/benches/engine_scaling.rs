//! `bench_engine_scaling`: the sharded engine at increasing worker
//! counts over a fixed scenario (same seed, same shard count — worker
//! count is pure mechanics, so every configuration produces the same
//! dataset digest; only the wall clock should move).
//!
//! On a multi-core host the 4-worker point should approach a 4x
//! speedup over 1 worker; on a single hardware thread the points
//! collapse onto each other and the bench instead measures the
//! engine's coordination overhead. No ratio is asserted here — the
//! digest equality that matters is pinned by `tests/sharding.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use mhw_core::{ScenarioConfig, ShardedEngine};

fn scaling_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(0x5CA1);
    config.days = 4;
    config.population.n_users = 400;
    config.market_share = 0.25;
    config
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("4_shards_{workers}_workers"), |b| {
            b.iter(|| {
                ShardedEngine::new(scaling_config(), 4)
                    .workers(workers)
                    .contact_spillover(0.25)
                    .run()
                    .dataset_digest()
            })
        });
    }
    // The unsharded baseline: what the same population costs without
    // the engine (one shard, no barriers, no exchange).
    group.bench_function("unsharded_baseline", |b| {
        b.iter(|| {
            let mut config = scaling_config();
            config.market_share = 0.0;
            ShardedEngine::new(config, 1).run().total_stats().incidents
        })
    });
    group.finish();
}

criterion_group!(engine, bench_engine_scaling);
criterion_main!(engine);
