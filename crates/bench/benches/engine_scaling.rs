//! `bench_engine_scaling`: the sharded engine at increasing worker
//! counts over a fixed scenario (same seed, same shard count — worker
//! count is pure mechanics, so every configuration produces the same
//! dataset digest; only the wall clock should move).
//!
//! On a multi-core host the 4-worker point should approach a 4x
//! speedup over 1 worker; on a single hardware thread the points
//! collapse onto each other and the bench instead measures the
//! engine's coordination overhead. No ratio is asserted here — the
//! digest equality that matters is pinned by `tests/sharding.rs`.

//! Besides the criterion timings, the bench writes `BENCH_obs.json`:
//! the engine's per-phase wall-clock profile ([`mhw_obs::EngineProfile`])
//! at 1/2/4/8 workers over the same scenario, plus the dataset digest of
//! each run (all identical — the digests double as a determinism check).

use criterion::{criterion_group, Criterion};
use mhw_core::{ScenarioConfig, ShardedEngine};
use mhw_obs::EngineProfile;
use serde::Serialize;

fn scaling_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(0x5CA1);
    config.days = 4;
    config.population.n_users = 400;
    config.market_share = 0.25;
    config
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("4_shards_{workers}_workers"), |b| {
            b.iter(|| {
                ShardedEngine::new(scaling_config(), 4)
                    .workers(workers)
                    .contact_spillover(0.25)
                    .run()
                    .dataset_digest()
            })
        });
    }
    // The unsharded baseline: what the same population costs without
    // the engine (one shard, no barriers, no exchange).
    group.bench_function("unsharded_baseline", |b| {
        b.iter(|| {
            let mut config = scaling_config();
            config.market_share = 0.0;
            ShardedEngine::new(config, 1).run().total_stats().incidents
        })
    });
    group.finish();
}

criterion_group!(engine, bench_engine_scaling);

/// One row of `BENCH_obs.json`: the per-phase profile of a single
/// engine run plus the digest it produced.
#[derive(Serialize)]
struct ObsRun {
    digest: String,
    profile: EngineProfile,
}

/// The whole `BENCH_obs.json` document.
#[derive(Serialize)]
struct ObsBench {
    scenario: String,
    runs: Vec<ObsRun>,
}

/// Profile the engine at increasing worker counts and write the
/// per-phase wall-clock breakdown to `BENCH_obs.json`.
fn write_obs_profile() {
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let run = ShardedEngine::new(scaling_config(), 8)
            .workers(workers)
            .contact_spillover(0.25)
            .run();
        let digest = run.dataset_digest();
        runs.push(ObsRun { digest: format!("{digest:016x}"), profile: run.profile() });
        let profile = &runs.last().unwrap().profile;
        let total: f64 = profile.phases.iter().map(|p| p.total_ms).sum();
        println!("obs profile: {workers} workers, total {total:.0} ms, digest {digest:016x}");
    }
    let doc = ObsBench {
        scenario: "8 shards, 400 users, 4 days, seed 0x5CA1".to_string(),
        runs,
    };
    let json = serde_json::to_string(&doc).expect("serialize BENCH_obs.json");
    // Cargo runs benches with the package dir as CWD; anchor the
    // artifact at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

fn main() {
    engine();
    write_obs_profile();
}
