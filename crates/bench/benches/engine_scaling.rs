//! `bench_engine_scaling`: the sharded engine at increasing worker
//! counts over a fixed scenario (same seed, same shard count — worker
//! count is pure mechanics, so every configuration produces the same
//! dataset digest; only the wall clock should move).
//!
//! On a multi-core host the 4-worker point should approach a 4x
//! speedup over 1 worker; on a single hardware thread the points
//! collapse onto each other and the bench instead measures the
//! engine's coordination overhead. No ratio is asserted here — the
//! digest equality that matters is pinned by `tests/sharding.rs`.

//! Besides the criterion timings, the bench writes `BENCH_obs.json`:
//! the engine's per-phase wall-clock profile ([`mhw_obs::EngineProfile`])
//! at 1/2/4/8 workers over the same scenario, plus the dataset digest of
//! each run (all identical — the digests double as a determinism check).
//! It also distils the same runs into `BENCH_scaling.json` — one row
//! per worker count with the `shard_day` wall-clock and its speedup
//! over the 1-worker baseline — so the scaling trajectory is tracked
//! PR over PR.
//!
//! Run with `-- --smoke` (what `scripts/check.sh bench-smoke` does) to
//! skip criterion and profile a smaller scenario: it writes only
//! `BENCH_scaling.json` and warns — non-fatally, CI timing is noisy —
//! if the 8-worker `shard_day` wall-clock exceeds the 1-worker one.

use criterion::{criterion_group, Criterion};
use mhw_core::{ScenarioConfig, ShardedEngine};
use mhw_obs::EngineProfile;
use serde::Serialize;

fn scaling_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(0x5CA1);
    config.days = 4;
    config.population.n_users = 400;
    config.market_share = 0.25;
    config
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("4_shards_{workers}_workers"), |b| {
            b.iter(|| {
                ShardedEngine::new(scaling_config(), 4)
                    .workers(workers)
                    .contact_spillover(0.25)
                    .run()
                    .expect("bench run")
                    .dataset_digest()
            })
        });
    }
    // The unsharded baseline: what the same population costs without
    // the engine (one shard, no barriers, no exchange).
    group.bench_function("unsharded_baseline", |b| {
        b.iter(|| {
            let mut config = scaling_config();
            config.market_share = 0.0;
            ShardedEngine::new(config, 1).run().expect("bench run").total_stats().incidents
        })
    });
    group.finish();
}

criterion_group!(engine, bench_engine_scaling);

/// One row of `BENCH_obs.json`: the per-phase profile of a single
/// engine run plus the digest it produced.
#[derive(Serialize)]
struct ObsRun {
    digest: String,
    profile: EngineProfile,
}

/// The whole `BENCH_obs.json` document.
#[derive(Serialize)]
struct ObsBench {
    scenario: String,
    runs: Vec<ObsRun>,
}

/// One row of `BENCH_scaling.json`: how one worker count fared on the
/// same scenario, against the 1-worker baseline.
#[derive(Serialize)]
struct ScalingRow {
    workers: usize,
    build_ms: f64,
    shard_day_ms: f64,
    total_ms: f64,
    /// `shard_day` wall-clock at 1 worker divided by this row's —
    /// above 1.0 means adding workers helped.
    speedup: f64,
    digest: String,
}

/// The whole `BENCH_scaling.json` document.
#[derive(Serialize)]
struct ScalingBench {
    scenario: String,
    rows: Vec<ScalingRow>,
}

/// Run the engine over `config` at 1/2/4/8 workers, collecting each
/// run's per-phase profile and digest.
fn profile_runs(config: &ScenarioConfig, n_shards: u16) -> Vec<ObsRun> {
    const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
    let one_run = |workers: usize| {
        // Idle briefly first: on cgroup-quota-limited hosts a
        // continuous run drains the CPU budget, and whichever
        // configuration happens to run early would look faster. The
        // pause lets the quota window refill so every run starts equal.
        std::thread::sleep(std::time::Duration::from_millis(250));
        let run = ShardedEngine::new(config.clone(), n_shards)
            .workers(workers)
            .contact_spillover(0.25)
            .run()
            .expect("bench run");
        (run.dataset_digest(), run.profile())
    };
    // Warm caches and the allocator before anything is measured.
    let _ = one_run(1);
    // Shared hosts drift — and quota-throttled ones systematically
    // favour whatever runs right after an idle gap — so reps are
    // interleaved over the worker counts with a rotating starting
    // offset (each count goes first equally often) and each count keeps
    // its fastest rep: the minimum is the standard low-variance
    // estimator of true cost.
    let mut best: Vec<Option<(u64, EngineProfile)>> = vec![None; WORKER_COUNTS.len()];
    for rep in 0..2 * WORKER_COUNTS.len() {
        for j in 0..WORKER_COUNTS.len() {
            let slot = (rep + j) % WORKER_COUNTS.len();
            let workers = WORKER_COUNTS[slot];
            let (digest, profile) = one_run(workers);
            let faster = best[slot].as_ref().is_none_or(|(_, prev)| {
                phase_ms(&profile, "shard_day") < phase_ms(prev, "shard_day")
            });
            if faster {
                best[slot] = Some((digest, profile));
            }
        }
    }
    let mut runs = Vec::new();
    for (slot, workers) in WORKER_COUNTS.into_iter().enumerate() {
        let (digest, profile) = best[slot].take().expect("profiled every count");
        let total: f64 = profile.phases.iter().map(|p| p.total_ms).sum();
        println!("obs profile: {workers} workers, total {total:.0} ms, digest {digest:016x}");
        runs.push(ObsRun { digest: format!("{digest:016x}"), profile });
    }
    runs
}

fn phase_ms(profile: &EngineProfile, phase: &str) -> f64 {
    profile.phases.iter().find(|p| p.phase == phase).map_or(0.0, |p| p.total_ms)
}

/// Distil profiled runs into the per-worker-count speedup table and
/// write it to `BENCH_scaling.json` at the workspace root.
fn write_scaling_bench(runs: &[ObsRun], scenario: &str) {
    let baseline = phase_ms(&runs[0].profile, "shard_day").max(f64::MIN_POSITIVE);
    let rows: Vec<ScalingRow> = runs
        .iter()
        .map(|run| {
            let shard_day_ms = phase_ms(&run.profile, "shard_day");
            ScalingRow {
                workers: run.profile.workers,
                build_ms: phase_ms(&run.profile, "build"),
                shard_day_ms,
                total_ms: run.profile.phases.iter().map(|p| p.total_ms).sum(),
                speedup: baseline / shard_day_ms.max(f64::MIN_POSITIVE),
                digest: run.digest.clone(),
            }
        })
        .collect();
    for row in &rows {
        println!(
            "scaling: {} workers, shard_day {:.1} ms, speedup {:.2}x",
            row.workers, row.shard_day_ms, row.speedup
        );
    }
    let doc = ScalingBench { scenario: scenario.to_string(), rows };
    let json = serde_json::to_string(&doc).expect("serialize BENCH_scaling.json");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(path, json).expect("write BENCH_scaling.json");
    println!("wrote {path}");
}

/// Non-fatal guard: shout if the worst worker count is slower than the
/// single-worker baseline (the inverse-scaling bug this bench exists to
/// keep dead). Timing on shared CI is noisy, so this warns, never fails.
fn warn_if_inverse_scaling(runs: &[ObsRun]) {
    let baseline = phase_ms(&runs[0].profile, "shard_day");
    for run in &runs[1..] {
        let ms = phase_ms(&run.profile, "shard_day");
        if ms > baseline {
            eprintln!(
                "warning: shard_day at {} workers ({ms:.1} ms) exceeds the \
                 1-worker baseline ({baseline:.1} ms) — inverse scaling",
                run.profile.workers
            );
        }
    }
}

/// Profile the full scenario at increasing worker counts and write the
/// per-phase wall-clock breakdown to `BENCH_obs.json`.
fn write_obs_profile() -> Vec<ObsRun> {
    let runs = profile_runs(&scaling_config(), 8);
    let doc = ObsBench {
        scenario: "8 shards, 400 users, 4 days, seed 0x5CA1".to_string(),
        runs,
    };
    let json = serde_json::to_string(&doc).expect("serialize BENCH_obs.json");
    // Cargo runs benches with the package dir as CWD; anchor the
    // artifact at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
    doc.runs
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // The check.sh bench-smoke step: a scenario small enough to run
        // on every push, feeding the same BENCH_scaling.json format.
        let mut config = ScenarioConfig::small_test(0x5CA1);
        config.days = 2;
        config.population.n_users = 160;
        config.market_share = 0.25;
        let runs = profile_runs(&config, 8);
        write_scaling_bench(&runs, "smoke: 8 shards, 160 users, 2 days, seed 0x5CA1");
        warn_if_inverse_scaling(&runs);
        return;
    }
    // Profile before the criterion group: on quota-throttled hosts the
    // criterion warm-up burns the CPU budget and would skew whatever
    // runs after it.
    let runs = write_obs_profile();
    write_scaling_bench(&runs, "8 shards, 400 users, 4 days, seed 0x5CA1");
    warn_if_inverse_scaling(&runs);
    engine();
}
